//! Mini-graph selection policies.

use crate::minigraph::MiniGraph;

/// Which kinds of mini-graphs selection may choose.
///
/// The defaults correspond to the paper's main configuration: unrestricted
/// integer-memory mini-graphs of up to 4 instructions in a 512-entry MGT
/// (§6.1: "All subsequent experiments use an MGT that holds 512
/// application-specific mini-graphs with a maximum size of 4 instructions").
///
/// The restriction flags implement the Figure 7 ablations: disallowing
/// externally serial graphs, internally parallel graphs, and
/// replay-vulnerable graphs (loads in non-terminal positions).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Maximum instructions per mini-graph (the paper studies 2, 3, 4, 8).
    pub max_size: usize,
    /// MGT capacity in templates (the paper studies 32, 128, 512, 2048).
    pub capacity: usize,
    /// Allow memory operations (integer-memory vs pure integer graphs).
    pub allow_memory: bool,
    /// Allow store operations (subset switch of `allow_memory`).
    pub allow_stores: bool,
    /// Allow terminal control transfers.
    pub allow_branches: bool,
    /// Allow externally serial graphs: graphs with interface inputs
    /// consumed by instructions other than the first.
    pub allow_external_serial: bool,
    /// Allow internally parallel graphs (graphs that are not pure serial
    /// dependence chains and therefore suffer internal serialization).
    pub allow_internal_parallel: bool,
    /// Allow loads in non-terminal positions (vulnerable to whole-graph
    /// cache-miss replay).
    pub allow_interior_loads: bool,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            max_size: 4,
            capacity: 512,
            allow_memory: true,
            allow_stores: true,
            allow_branches: true,
            allow_external_serial: true,
            allow_internal_parallel: true,
            allow_interior_loads: true,
        }
    }
}

impl Policy {
    /// The paper's integer mini-graph configuration (no memory ops).
    pub fn integer() -> Policy {
        Policy { allow_memory: false, allow_stores: false, ..Policy::default() }
    }

    /// The paper's integer-memory mini-graph configuration.
    pub fn integer_memory() -> Policy {
        Policy::default()
    }

    /// Returns this policy with a different MGT capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Policy {
        self.capacity = capacity;
        self
    }

    /// Returns this policy with a different maximum graph size.
    pub fn with_max_size(mut self, max_size: usize) -> Policy {
        self.max_size = max_size;
        self
    }

    /// Whether a candidate satisfies this policy.
    pub fn admits(&self, mg: &MiniGraph) -> bool {
        let t = &mg.template;
        if mg.size() > self.max_size {
            return false;
        }
        if !self.allow_memory && t.mem_op().is_some() {
            return false;
        }
        if !self.allow_stores && t.ops.iter().any(|o| o.op.is_store()) {
            return false;
        }
        if !self.allow_branches && t.terminal_branch().is_some() {
            return false;
        }
        if !self.allow_external_serial && t.is_externally_serial() {
            return false;
        }
        if !self.allow_internal_parallel && !t.is_serial_chain() {
            return false;
        }
        if !self.allow_interior_loads && t.has_interior_load() {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::BlockDataflow;
    use crate::minigraph::analyze;
    use mg_isa::{reg, Asm};
    use mg_profile::build_cfg;

    fn mg_with_interior_load() -> MiniGraph {
        let mut a = Asm::new();
        a.ldq(reg(2), 16, reg(4));
        a.srl(reg(2), 14, reg(17));
        a.and(reg(17), 1, reg(17));
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let b = cfg.blocks[0];
        let df = BlockDataflow::new(&p, &b);
        analyze(&p, &b, &df, &[0, 1, 2], 10, 0).unwrap()
    }

    #[test]
    fn integer_policy_rejects_memory() {
        let mg = mg_with_interior_load();
        assert!(!Policy::integer().admits(&mg));
        assert!(Policy::integer_memory().admits(&mg));
    }

    #[test]
    fn interior_load_filter() {
        let mg = mg_with_interior_load();
        let p = Policy { allow_interior_loads: false, ..Policy::default() };
        assert!(!p.admits(&mg));
    }

    #[test]
    fn size_filter() {
        let mg = mg_with_interior_load();
        assert!(!Policy::default().with_max_size(2).admits(&mg));
        assert!(Policy::default().with_max_size(3).admits(&mg));
    }

    #[test]
    fn builder_style() {
        let p = Policy::integer().with_capacity(128).with_max_size(8);
        assert_eq!(p.capacity, 128);
        assert_eq!(p.max_size, 8);
        assert!(!p.allow_memory);
    }
}
