//! Byte serialization of selection artifacts for the persistent cache.
//!
//! Implements [`Wire`] for [`Policy`], [`MiniGraph`], [`ChosenInstance`],
//! and [`Selection`] so the experiment harness can persist memoized
//! selections to disk (`mg-harness::prep_cache`) and key them by an exact
//! policy encoding. Encodings are deterministic field-order walks over the
//! public structs; compatibility across code changes is handled by the
//! cache's fingerprint, not here (see `mg-isa::wire` module docs).

use crate::minigraph::MiniGraph;
use crate::policy::Policy;
use crate::select::{ChosenInstance, Selection};
use mg_isa::wire::{Reader, Wire, WireError, Writer};

impl Wire for Policy {
    fn put(&self, w: &mut Writer) {
        self.max_size.put(w);
        self.capacity.put(w);
        self.allow_memory.put(w);
        self.allow_stores.put(w);
        self.allow_branches.put(w);
        self.allow_external_serial.put(w);
        self.allow_internal_parallel.put(w);
        self.allow_interior_loads.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Policy {
            max_size: usize::take(r)?,
            capacity: usize::take(r)?,
            allow_memory: bool::take(r)?,
            allow_stores: bool::take(r)?,
            allow_branches: bool::take(r)?,
            allow_external_serial: bool::take(r)?,
            allow_internal_parallel: bool::take(r)?,
            allow_interior_loads: bool::take(r)?,
        })
    }
}

impl Wire for MiniGraph {
    fn put(&self, w: &mut Writer) {
        self.members.put(w);
        self.anchor.put(w);
        self.inputs.put(w);
        self.output.put(w);
        self.template.put(w);
        w.u64(self.freq);
        self.branch_target.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MiniGraph {
            members: Vec::take(r)?,
            anchor: usize::take(r)?,
            inputs: Vec::take(r)?,
            output: Wire::take(r)?,
            template: Wire::take(r)?,
            freq: r.u64()?,
            branch_target: Wire::take(r)?,
        })
    }
}

impl Wire for ChosenInstance {
    fn put(&self, w: &mut Writer) {
        self.graph.put(w);
        w.u32(self.mgid);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ChosenInstance { graph: MiniGraph::take(r)?, mgid: r.u32()? })
    }
}

impl Wire for Selection {
    fn put(&self, w: &mut Writer) {
        self.chosen.put(w);
        self.catalog.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Selection { chosen: Vec::take(r)?, catalog: Wire::take(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use mg_isa::wire::{from_bytes, to_bytes};
    use mg_isa::{reg, Asm, Memory};

    #[test]
    fn policy_round_trips_and_distinguishes_ablations() {
        for p in [
            Policy::default(),
            Policy::integer(),
            Policy { allow_external_serial: false, ..Policy::integer() },
            Policy::integer_memory().with_capacity(32).with_max_size(8),
        ] {
            let bytes = to_bytes(&p);
            assert_eq!(from_bytes::<Policy>(&bytes).unwrap(), p);
        }
        assert_ne!(
            to_bytes(&Policy::integer()),
            to_bytes(&Policy::integer_memory()),
            "distinct policies must have distinct cache-key encodings"
        );
    }

    #[test]
    fn selection_round_trips_from_a_real_extraction() {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 20);
        a.label("top");
        a.addl(reg(18), 2, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        let prog = a.finish().unwrap();
        let ex = extract(&prog, &mut Memory::new(), &Policy::default(), 100_000).unwrap();
        assert!(!ex.selection.chosen.is_empty(), "extraction found a mini-graph");

        let bytes = to_bytes(&ex.selection);
        let back: Selection = from_bytes(&bytes).unwrap();
        assert_eq!(back.chosen.len(), ex.selection.chosen.len());
        assert_eq!(back.catalog.len(), ex.selection.catalog.len());
        for (orig, dec) in ex.selection.chosen.iter().zip(&back.chosen) {
            assert_eq!(orig.mgid, dec.mgid);
            assert_eq!(orig.graph.members, dec.graph.members);
            assert_eq!(orig.graph.anchor, dec.graph.anchor);
            assert_eq!(orig.graph.inputs, dec.graph.inputs);
            assert_eq!(orig.graph.output, dec.graph.output);
            assert_eq!(orig.graph.template, dec.graph.template);
            assert_eq!(orig.graph.freq, dec.graph.freq);
            assert_eq!(orig.graph.branch_target, dec.graph.branch_target);
        }
        // The decoded selection reports identical coverage.
        assert_eq!(back.saved_slots(), ex.selection.saved_slots());
        assert_eq!(back.covered_insts(), ex.selection.covered_insts());
    }
}
