//! The object-safe selection-algorithm extension point.
//!
//! The paper's greedy selector ([`select`]) was the
//! only selection family in the tree; the `mg-policy` crate adds
//! loop-weighted, tree-tiling, and exact-DP alternatives. [`Selector`] is
//! the seam they all plug into: the experiment harness prepares a
//! workload once (profile + candidate enumeration) and then asks any
//! number of selectors for a [`Selection`] over the same
//! [`SelectInputs`], memoizing and disk-caching each result under the
//! selector's [`id`](Selector::id).
//!
//! Every implementation must uphold the [`Selection`] output invariants
//! (admissibility, instance disjointness, catalog consistency) — see the
//! `Selection` docs; `tests/policy_properties.rs` checks them for every
//! in-tree selector.

use crate::minigraph::MiniGraph;
use crate::policy::Policy;
use crate::select::{select, Selection};
use mg_profile::{BlockProfile, Cfg};

/// Everything a selection algorithm may consult: the candidate pool plus
/// the program's control-flow and profile context (for analyses such as
/// loop nesting). Borrowed from the harness's prepared workload state.
#[derive(Clone, Copy, Debug)]
pub struct SelectInputs<'a> {
    /// All legal mini-graph candidates (pre policy filtering; selectors
    /// must apply [`Policy::admits`] themselves, exactly like
    /// [`select`]).
    pub candidates: &'a [MiniGraph],
    /// The program's basic blocks and static successor edges.
    pub cfg: &'a Cfg,
    /// Basic-block execution frequencies from the profiling run.
    pub prof: &'a BlockProfile,
}

/// An object-safe selection algorithm.
///
/// Implementations are registered through `mg_api::SelectionPolicy`
/// (whose defaulted `selector()` method returns the greedy default) and
/// keyed everywhere — in-process memos, the persistent artifact cache,
/// experiment rows — by [`id`](Selector::id).
pub trait Selector: Send + Sync {
    /// Stable identifier of the algorithm (e.g. `"greedy"`,
    /// `"weighted"`). Part of the artifact-cache key for every
    /// non-greedy selector, so changing an id orphans (never corrupts)
    /// cached artifacts. Must be non-empty; `"greedy"` is reserved for
    /// the paper's algorithm, whose cache keys predate this trait.
    fn id(&self) -> &str;

    /// Produces a selection over `inputs` under `policy`, upholding the
    /// [`Selection`] invariants.
    fn select(&self, inputs: &SelectInputs<'_>, policy: &Policy) -> Selection;
}

/// The paper's greedy selector (id `"greedy"`): coverage-ranked
/// incremental greedy, exactly [`select`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedySelector;

/// The reserved [`Selector::id`] of [`GreedySelector`]. Artifacts keyed
/// under this id use the legacy (pre-`Selector`) cache-key encoding, so
/// greedy artifacts cached by older builds stay valid.
pub const GREEDY_SELECTOR_ID: &str = "greedy";

impl Selector for GreedySelector {
    fn id(&self) -> &str {
        GREEDY_SELECTOR_ID
    }

    fn select(&self, inputs: &SelectInputs<'_>, policy: &Policy) -> Selection {
        select(inputs.candidates, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use mg_isa::{reg, Asm, Memory};

    #[test]
    fn greedy_selector_matches_select() {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 20);
        a.label("top");
        a.addl(reg(18), 2, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        let prog = a.finish().unwrap();
        let policy = Policy::default();
        let ex = extract(&prog, &mut Memory::new(), &policy, 100_000).unwrap();
        let cfg = mg_profile::build_cfg(&prog);
        let prof =
            mg_profile::profile_program(&prog, &mut Memory::new(), None, 100_000).unwrap();
        let inputs = SelectInputs { candidates: &ex.candidates, cfg: &cfg, prof: &prof };
        let got = GreedySelector.select(&inputs, &policy);
        assert_eq!(got.chosen.len(), ex.selection.chosen.len());
        assert_eq!(got.saved_slots(), ex.selection.saved_slots());
        assert_eq!(GreedySelector.id(), GREEDY_SELECTOR_ID);
    }
}
