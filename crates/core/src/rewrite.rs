//! Binary rewriting: replacing selected mini-graphs with handles.
//!
//! The paper's binary-rewriting tool "statically replaces dataflow graphs
//! that satisfy mini-graph criteria with handles". Two image styles are
//! produced:
//!
//! * [`RewriteStyle::NopPadded`] — non-anchor members become `nop`s, so the
//!   code layout (and thus instruction-cache behaviour) is unchanged. This
//!   is the paper's default ("none of our figures show the compression
//!   effect — we replace mini-graph interior instructions with nops",
//!   §6.2).
//! * [`RewriteStyle::Compressed`] — the nops are removed and all control
//!   targets remapped, exposing the instruction-cache capacity
//!   amplification studied in §6.2 ("Instruction cache effects").

use crate::select::Selection;
use mg_isa::{Inst, Opcode, Program};

/// How handle images are laid out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RewriteStyle {
    /// Keep original layout; collapsed slots become `nop`s.
    NopPadded,
    /// Remove collapsed slots and remap control-flow targets.
    Compressed,
}

/// The product of rewriting: the handle-bearing image and its catalog.
#[derive(Clone, Debug)]
pub struct Rewritten {
    /// The rewritten program.
    pub program: Program,
    /// Static instructions eliminated by compression (0 for nop-padded).
    pub removed: usize,
    /// Number of handle instances planted.
    pub handles: usize,
}

/// Rewrites `prog` according to `selection`.
///
/// The returned program must be executed with `selection.catalog` (see
/// [`mg_isa::exec::step`]).
///
/// # Panics
///
/// Panics if the selection's instances overlap (cannot happen for
/// selections produced by [`crate::select::select`]).
pub fn rewrite(prog: &Program, selection: &Selection, style: RewriteStyle) -> Rewritten {
    let mut insts = prog.insts.clone();
    let mut is_pad = vec![false; insts.len()];

    for c in &selection.chosen {
        for &m in &c.graph.members {
            assert!(
                !is_pad[m] && insts[m].op != Opcode::Mg,
                "overlapping mini-graph selection at {m}"
            );
            if m == c.graph.anchor {
                insts[m] = c.graph.handle_inst(c.mgid);
            } else {
                insts[m] = Inst::pad();
                is_pad[m] = true;
            }
        }
    }

    match style {
        RewriteStyle::NopPadded => Rewritten {
            program: Program {
                insts,
                entry: prog.entry,
                labels: prog.labels.clone(),
                base_addr: prog.base_addr,
            },
            removed: 0,
            handles: selection.chosen.len(),
        },
        RewriteStyle::Compressed => {
            let n = insts.len();
            // forward[i]: new index of old instruction i if kept; removed
            // instructions map to the next kept instruction (targets into a
            // collapsed region land on whatever of the block remains).
            let mut forward = vec![0usize; n + 1];
            let mut next = 0usize;
            for i in 0..n {
                forward[i] = next;
                if !is_pad[i] {
                    next += 1;
                }
            }
            forward[n] = next;

            let mut out = Vec::with_capacity(next);
            for (i, inst) in insts.into_iter().enumerate() {
                if is_pad[i] {
                    continue;
                }
                let mut inst = inst;
                if let Some(t) = inst.static_target() {
                    inst.disp = forward[t.min(n)] as i64;
                }
                if inst.op == Opcode::Mg && inst.aux >= 0 {
                    inst.aux = forward[(inst.aux as usize).min(n)] as i64;
                }
                out.push(inst);
            }
            let labels =
                prog.labels.iter().map(|(k, &v)| (k.clone(), forward[v.min(n)])).collect();
            Rewritten {
                program: Program {
                    insts: out,
                    entry: forward[prog.entry.min(n)],
                    labels,
                    base_addr: prog.base_addr,
                },
                removed: n - next,
                handles: selection.chosen.len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_candidates;
    use crate::policy::Policy;
    use crate::select::select;
    use mg_isa::exec::CpuState;
    use mg_isa::{reg, Asm, Memory};
    use mg_profile::{build_cfg, profile_program, run_program};

    fn demo_program() -> Program {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 40);
        a.li(reg(9), 0x8000);
        a.label("top");
        a.addl(reg(18), 2, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.stq(reg(18), 0, reg(9));
        a.bne(reg(7), "top");
        a.halt();
        a.finish().unwrap()
    }

    fn select_all(p: &Program, policy: &Policy) -> Selection {
        let cfg = build_cfg(p);
        let prof = profile_program(p, &mut Memory::new(), None, 1_000_000).unwrap();
        let cands = enumerate_candidates(p, &cfg, &prof, policy.max_size);
        select(&cands, policy)
    }

    #[test]
    fn nop_padded_preserves_layout_and_semantics() {
        let p = demo_program();
        let sel = select_all(&p, &Policy::default());
        assert!(!sel.chosen.is_empty());
        let rw = rewrite(&p, &sel, RewriteStyle::NopPadded);
        assert_eq!(rw.program.len(), p.len(), "layout unchanged");
        assert_eq!(rw.removed, 0);

        let mut mem_a = Memory::new();
        let mut mem_b = Memory::new();
        let orig = run_program(&p, &mut mem_a, None, 100_000).unwrap();
        let new = run_program(&rw.program, &mut mem_b, Some(&sel.catalog), 100_000).unwrap();
        assert_eq!(orig.cpu.regs, new.cpu.regs, "architectural state must match");
        assert_eq!(orig.insts, new.insts, "represented instruction counts match");
        assert_eq!(mem_a.read_u64(0x8000), mem_b.read_u64(0x8000));
    }

    #[test]
    fn compressed_preserves_semantics_with_remapped_targets() {
        let p = demo_program();
        let sel = select_all(&p, &Policy::default());
        let rw = rewrite(&p, &sel, RewriteStyle::Compressed);
        assert!(rw.removed > 0, "compression removes pad slots");
        assert!(rw.program.len() < p.len());

        let mut mem_a = Memory::new();
        let mut mem_b = Memory::new();
        let orig = run_program(&p, &mut mem_a, None, 100_000).unwrap();
        let new = run_program(&rw.program, &mut mem_b, Some(&sel.catalog), 100_000).unwrap();
        assert_eq!(orig.cpu.regs, new.cpu.regs);
        assert_eq!(mem_a.read_u64(0x8000), mem_b.read_u64(0x8000));
    }

    #[test]
    fn handle_count_reported() {
        let p = demo_program();
        let sel = select_all(&p, &Policy::default());
        let rw = rewrite(&p, &sel, RewriteStyle::NopPadded);
        assert_eq!(rw.handles, sel.chosen.len());
        let planted = rw.program.insts.iter().filter(|i| i.op == Opcode::Mg).count();
        assert_eq!(planted, rw.handles);
    }

    #[test]
    fn functional_equivalence_via_cpustate() {
        // Run both images step-by-step for a while; PCs differ but
        // architectural register state at halt must agree.
        let p = demo_program();
        let sel = select_all(&p, &Policy::integer());
        let rw = rewrite(&p, &sel, RewriteStyle::NopPadded);
        let mut ca = CpuState::new(p.entry);
        let mut cb = CpuState::new(rw.program.entry);
        let mut ma = Memory::new();
        let mut mb = Memory::new();
        mg_isa::exec::run_to_halt(&p, &mut ca, &mut ma, None, 100_000).unwrap();
        mg_isa::exec::run_to_halt(&rw.program, &mut cb, &mut mb, Some(&sel.catalog), 100_000)
            .unwrap();
        assert_eq!(ca.regs, cb.regs);
    }
}
