//! Mini-graph candidates: interface analysis, anchor selection, and
//! legality (register/memory interference) checking.

use crate::dataflow::BlockDataflow;
use crate::liveness::{contains, RegSet};
use mg_isa::{Inst, MgTemplate, OpClass, Operand, Program, Reg, TmplInst, TmplOperand};
use mg_profile::BasicBlock;

/// A legal mini-graph candidate: a set of instructions inside one basic
/// block, collapsible to a single handle at the anchor position.
#[derive(Clone, Debug)]
pub struct MiniGraph {
    /// Absolute instruction indices of the members, ascending.
    pub members: Vec<usize>,
    /// The member around which the graph collapses (branch ≻ memory op ≻
    /// last member, paper §3.2).
    pub anchor: usize,
    /// External interface input registers, in first-appearance order
    /// (bound to `E0`/`E1` of the handle). At most two.
    pub inputs: Vec<Reg>,
    /// External interface output register and the member (by position in
    /// `members`) that produces it, if the graph has a live output.
    pub output: Option<(Reg, u8)>,
    /// The canonical execution template (MGT row content).
    pub template: MgTemplate,
    /// Execution frequency of the containing block (from the profile).
    pub freq: u64,
    /// Absolute target index of the terminal branch, if any.
    pub branch_target: Option<usize>,
}

impl MiniGraph {
    /// Number of constituent instructions.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Estimated coverage benefit `(n - 1) * f` (paper §3.2): the number of
    /// dynamic pipeline slots the graph saves.
    pub fn benefit(&self) -> u64 {
        (self.size() as u64 - 1) * self.freq
    }

    /// Builds the handle instruction for this instance.
    pub fn handle_inst(&self, mgid: u32) -> Inst {
        let e0 = self.inputs.first().copied().unwrap_or(Reg::ZERO);
        let e1 = self.inputs.get(1).copied().unwrap_or(Reg::ZERO);
        let out = self.output.map(|(r, _)| r).unwrap_or(Reg::ZERO);
        Inst::handle(e0, e1, out, mgid, self.branch_target.map(|t| t as i64))
    }
}

/// Why a candidate set is not a legal mini-graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Illegal {
    /// Fewer than two members.
    TooSmall,
    /// A member opcode may not appear in a mini-graph.
    IneligibleOpcode,
    /// More than one memory operation.
    TooManyMemOps,
    /// A control transfer that is not the last member.
    NonTerminalBranch,
    /// More than two distinct external register inputs.
    TooManyInputs,
    /// More than one live register output.
    TooManyOutputs,
    /// Collapsing to the anchor would change a register value seen by a
    /// non-member instruction (or seen *from* one).
    RegisterInterference,
    /// Collapsing would reorder the member memory operation with respect
    /// to a non-member memory operation.
    MemoryInterference,
}

/// Chooses the anchor for a member set: the branch if present, else the
/// memory operation, else the last member (paper §3.2).
pub fn choose_anchor(prog: &Program, members: &[usize]) -> usize {
    if let Some(&b) = members.iter().find(|&&i| prog.insts[i].op.is_control()) {
        return b;
    }
    if let Some(&m) = members.iter().find(|&&i| prog.insts[i].op.class().is_mem()) {
        return m;
    }
    *members.last().expect("member set is non-empty")
}

/// Analyzes a member set and, if legal, produces the [`MiniGraph`].
///
/// `members` must be sorted ascending and lie within `block`; `live_out`
/// is the block's global live-out register set (see
/// [`crate::liveness::compute_liveness`]), used to decide which member
/// defs are transient interior values.
///
/// # Errors
///
/// Returns the first [`Illegal`] condition found.
pub fn analyze(
    prog: &Program,
    block: &BasicBlock,
    df: &BlockDataflow,
    members: &[usize],
    freq: u64,
    live_out: RegSet,
) -> Result<MiniGraph, Illegal> {
    if members.len() < 2 {
        return Err(Illegal::TooSmall);
    }
    let in_set = |i: usize| members.binary_search(&i).is_ok();

    // Composition: eligible opcodes, at most one memory op, branches
    // terminal (within the set, which — blocks ending at branches — means
    // the branch is the last member and the last instruction of the block).
    let mut mem_ops = 0usize;
    for (k, &i) in members.iter().enumerate() {
        let op = prog.insts[i].op;
        if !op.is_mini_graph_eligible() {
            return Err(Illegal::IneligibleOpcode);
        }
        if op.class().is_mem() {
            mem_ops += 1;
        }
        if op.is_control() && k + 1 != members.len() {
            return Err(Illegal::NonTerminalBranch);
        }
    }
    if mem_ops > 1 {
        return Err(Illegal::TooManyMemOps);
    }

    let anchor = choose_anchor(prog, members);

    // Register and memory interference between each member's original
    // position and the anchor (paper §3.2: "We reject mini-graphs if there
    // is register interference in the range between the anchor and original
    // positions of the first and last instructions").
    for &m in members {
        let (lo, hi) = (m.min(anchor), m.max(anchor));
        if lo == hi {
            continue;
        }
        let m_def = df.def(m);
        let m_is_mem = prog.insts[m].op.class().is_mem();
        for x in (lo + 1)..hi {
            if in_set(x) {
                continue;
            }
            // Memory interference: a member memory op may not cross any
            // non-member memory op (conservative: loads included).
            if m_is_mem && prog.insts[x].op.class().is_mem() {
                return Err(Illegal::MemoryInterference);
            }
            if m < anchor {
                // m moves DOWN to the anchor.
                if let Some(d) = m_def {
                    // x would lose m's value (RAW) or m would clobber x's
                    // later def (WAW).
                    if df.reads(x, d) && df.producer_of_reg(x, d) == Some(m) {
                        return Err(Illegal::RegisterInterference);
                    }
                    if df.defines(x, d) {
                        return Err(Illegal::RegisterInterference);
                    }
                }
                // m would read x's later def instead of its original value.
                if let Some(xd) = df.def(x) {
                    if df.reads(m, xd) {
                        return Err(Illegal::RegisterInterference);
                    }
                }
            } else {
                // m moves UP to the anchor.
                if let Some(xd) = df.def(x) {
                    // m originally read x's def (or a later one in the gap).
                    if df.reads(m, xd) {
                        if let Some(p) = df.producer_of_reg(m, xd) {
                            if p > anchor && !in_set(p) {
                                return Err(Illegal::RegisterInterference);
                            }
                        }
                    }
                    if m_def == Some(xd) {
                        return Err(Illegal::RegisterInterference); // WAW
                    }
                }
                if let Some(d) = m_def {
                    // x would see m's def early (WAR violated).
                    if df.reads(x, d) {
                        return Err(Illegal::RegisterInterference);
                    }
                }
            }
        }
    }

    // Interface inputs: distinct registers read by members whose producer
    // is outside the set.
    let mut inputs: Vec<Reg> = Vec::new();
    for &m in members {
        for (slot, src) in df.srcs(m).into_iter().enumerate() {
            let Some(r) = src else { continue };
            let external = match df.producer(m, slot) {
                Some(p) => !in_set(p),
                None => true,
            };
            if external && !inputs.contains(&r) {
                inputs.push(r);
            }
        }
    }
    if inputs.len() > 2 {
        return Err(Illegal::TooManyInputs);
    }

    // Interface outputs: member defs that are observable outside the set —
    // read by a later non-member (before being redefined) or reaching the
    // end of the block unredefined while globally live-out.
    let mut outputs: Vec<(Reg, u8)> = Vec::new();
    for (k, &m) in members.iter().enumerate() {
        let Some(d) = df.def(m) else { continue };
        // Only the set's final def of a register can escape.
        if members.iter().any(|&m2| m2 > m && df.defines(m2, d)) {
            continue;
        }
        let mut live = contains(live_out, d); // reaches block end unless redefined
        let mut read_outside = false;
        for x in (m + 1)..block.end {
            if in_set(x) {
                continue;
            }
            if df.reads(x, d) && df.producer_of_reg(x, d) == Some(m) {
                read_outside = true;
            }
            if df.defines(x, d) {
                live = false;
                break;
            }
        }
        if read_outside || live {
            outputs.push((d, k as u8));
        }
    }
    if outputs.len() > 1 {
        return Err(Illegal::TooManyOutputs);
    }
    let output = outputs.pop();

    // Canonical template.
    let template = build_template(prog, df, members, anchor, &inputs, output, &in_set)?;

    let branch_target = members.last().and_then(|&b| prog.insts[b].static_target());

    Ok(MiniGraph {
        members: members.to_vec(),
        anchor,
        inputs,
        output,
        template,
        freq,
        branch_target,
    })
}

impl BlockDataflow {
    /// Producer of register `r` as read by instruction `j`, if `j` reads it.
    pub(crate) fn producer_of_reg(&self, j: usize, r: Reg) -> Option<usize> {
        let srcs = self.srcs(j);
        srcs.iter().position(|&s| s == Some(r)).and_then(|slot| self.producer(j, slot))
    }
}

fn tmpl_operand(
    df: &BlockDataflow,
    members: &[usize],
    m: usize,
    slot: usize,
    reg: Option<Reg>,
    inputs: &[Reg],
    in_set: &dyn Fn(usize) -> bool,
) -> TmplOperand {
    match reg {
        Some(r) => {
            if let Some(p) = df.producer(m, slot) {
                if in_set(p) {
                    let pos = members.binary_search(&p).expect("producer is a member") as u8;
                    return TmplOperand::M(pos);
                }
            }
            let e = inputs.iter().position(|&x| x == r).expect("external reg is an input");
            if e == 0 {
                TmplOperand::E0
            } else {
                TmplOperand::E1
            }
        }
        None => TmplOperand::Imm(0), // reads of the zero register
    }
}

/// Builds the canonical [`MgTemplate`] for a legal member set.
fn build_template(
    prog: &Program,
    df: &BlockDataflow,
    members: &[usize],
    anchor: usize,
    inputs: &[Reg],
    output: Option<(Reg, u8)>,
    in_set: &dyn Fn(usize) -> bool,
) -> Result<MgTemplate, Illegal> {
    let mut ops = Vec::with_capacity(members.len());
    for &m in members {
        let inst = &prog.insts[m];
        let srcs = df.srcs(m);
        let t = match inst.op.class() {
            OpClass::IntAlu | OpClass::IntMul => {
                let a = tmpl_operand(df, members, m, 0, srcs[0], inputs, in_set);
                let b = match inst.rb {
                    Operand::Imm(v) => TmplOperand::Imm(v),
                    Operand::Reg(_) => tmpl_operand(df, members, m, 1, srcs[1], inputs, in_set),
                };
                TmplInst { op: inst.op, a, b, disp: 0 }
            }
            OpClass::Load => {
                let a = tmpl_operand(df, members, m, 0, srcs[0], inputs, in_set);
                TmplInst { op: inst.op, a, b: TmplOperand::Imm(0), disp: inst.disp }
            }
            OpClass::Store => {
                // Inst layout: ra = base (slot 0), rb = data (slot 1).
                let base = tmpl_operand(df, members, m, 0, srcs[0], inputs, in_set);
                let data = tmpl_operand(df, members, m, 1, srcs[1], inputs, in_set);
                TmplInst { op: inst.op, a: data, b: base, disp: inst.disp }
            }
            OpClass::CondBranch => {
                let a = tmpl_operand(df, members, m, 0, srcs[0], inputs, in_set);
                let rel = inst.disp - anchor as i64;
                TmplInst { op: inst.op, a, b: TmplOperand::Imm(0), disp: rel }
            }
            OpClass::UncondBranch => {
                let rel = inst.disp - anchor as i64;
                TmplInst {
                    op: inst.op,
                    a: TmplOperand::Imm(0),
                    b: TmplOperand::Imm(0),
                    disp: rel,
                }
            }
            _ => return Err(Illegal::IneligibleOpcode),
        };
        ops.push(t);
    }
    Ok(MgTemplate { ops, out: output.map(|(_, k)| k) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::compute_liveness;
    use mg_isa::{reg, Asm};
    use mg_profile::build_cfg;

    /// The paper's Figure 1 left snippet. The `bne` exits to a block where
    /// `r7` is dead (as in the original gcc code, where the output of the
    /// mini-graph is `r18`).
    fn paper_left() -> Program {
        let mut a = Asm::new();
        a.addl(reg(18), 2, reg(18)); // 0 (member)
        a.lda(reg(6), 2, reg(6)); // 1
        a.s8addl(reg(7), reg(0), reg(7)); // 2
        a.cmplt(reg(18), reg(5), reg(7)); // 3 (member)
        a.bne(reg(7), "exit"); // 4 (member, anchor)
        a.halt(); // 5
        a.label("exit");
        a.stq(reg(18), 0, reg(16)); // keeps r18 live across the branch
        a.halt();
        a.finish().unwrap()
    }

    fn analyze_in(prog: &Program, members: &[usize]) -> Result<MiniGraph, Illegal> {
        let cfg = build_cfg(prog);
        let block = cfg.block_of(members[0]).unwrap();
        let bi = cfg.block_index_of(members[0]).unwrap();
        let lv = compute_liveness(prog, &cfg);
        let df = BlockDataflow::new(prog, block);
        analyze(prog, block, &df, members, 100, lv.live_out[bi])
    }

    #[test]
    fn paper_mg12_is_legal() {
        let p = paper_left();
        let mg = analyze_in(&p, &[0, 3, 4]).unwrap();
        assert_eq!(mg.anchor, 4, "anchored at the branch");
        assert_eq!(mg.inputs, vec![reg(18), reg(5)]);
        assert_eq!(mg.output, Some((reg(18), 0)), "addl's r18 is the output");
        assert_eq!(mg.template.out, Some(0));
        assert_eq!(mg.size(), 3);
        assert_eq!(mg.benefit(), 200);
        let h = mg.handle_inst(12);
        assert_eq!(h.to_string(), "mg r18,r5,r18,12");
        assert_eq!(h.handle_branch_target(), Some(6), "branches to the exit block");
        // Template matches the paper's MGT row 12:
        // addl E0,2 ; cmplt M0,E1 ; bne M1.
        assert_eq!(mg.template.ops[0].a, TmplOperand::E0);
        assert_eq!(mg.template.ops[0].b, TmplOperand::Imm(2));
        assert_eq!(mg.template.ops[1].a, TmplOperand::M(0));
        assert_eq!(mg.template.ops[1].b, TmplOperand::E1);
        assert_eq!(mg.template.ops[2].a, TmplOperand::M(1));
    }

    #[test]
    fn paper_mg34_is_legal() {
        // Figure 1 right snippet: ldq r2,16(r4); srl r2,14,r17; bis
        // zero,r18,r16; and r17,1,r17 — members are the ldq/srl/and. The
        // stq keeps r17 (the mini-graph output) observably live.
        let mut a = Asm::new();
        a.ldq(reg(2), 16, reg(4)); // 0 (member, anchor: memory op)
        a.srl(reg(2), 14, reg(17)); // 1 (member)
        a.bis(Reg::ZERO, reg(18), reg(16)); // 2
        a.and(reg(17), 1, reg(17)); // 3 (member)
        a.stq(reg(17), 0, reg(16)); // 4 (consumer)
        a.halt(); // 5
        let p = a.finish().unwrap();
        let mg = analyze_in(&p, &[0, 1, 3]).unwrap();
        assert_eq!(mg.anchor, 0, "anchored at the load");
        assert_eq!(mg.inputs, vec![reg(4)]);
        assert_eq!(mg.output, Some((reg(17), 2)));
        let h = mg.handle_inst(34);
        assert_eq!(h.to_string(), "mg r4,r31,r17,34");
        assert!(mg.template.has_interior_load());
        assert!(mg.template.is_serial_chain());
        // r2 (the load's destination) is interior: srl is its only reader.
        assert!(!mg.inputs.contains(&reg(2)));
    }

    #[test]
    fn too_many_inputs_rejected() {
        let mut a = Asm::new();
        a.addq(reg(1), reg(2), reg(4));
        a.addq(reg(4), reg(3), reg(5));
        a.addq(reg(5), reg(6), reg(7));
        a.halt();
        let p = a.finish().unwrap();
        // r1, r2, r3, r6 are all external: four inputs.
        assert_eq!(analyze_in(&p, &[0, 1, 2]).unwrap_err(), Illegal::TooManyInputs);
    }

    #[test]
    fn two_live_outputs_rejected() {
        let mut a = Asm::new();
        a.addq(reg(1), 1, reg(2));
        a.addq(reg(2), 1, reg(3));
        a.stq(reg(2), 0, reg(30)); // both r2 and r3 are observed
        a.stq(reg(3), 8, reg(30));
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(analyze_in(&p, &[0, 1]).unwrap_err(), Illegal::TooManyOutputs);
    }

    #[test]
    fn dead_defs_are_interior() {
        // Same pair, but nothing reads r2 or r3 afterwards: both defs are
        // transient, the graph legally has no output at all.
        let mut a = Asm::new();
        a.addq(reg(1), 1, reg(2));
        a.addq(reg(2), 1, reg(3));
        a.halt();
        let p = a.finish().unwrap();
        let mg = analyze_in(&p, &[0, 1]).unwrap();
        assert_eq!(mg.output, None);
    }

    #[test]
    fn interior_value_not_an_output() {
        let mut a = Asm::new();
        a.addq(reg(1), 1, reg(2));
        a.addq(reg(2), 1, reg(2)); // overwrites r2: first def is interior
        a.stq(reg(2), 0, reg(30)); // final r2 observed
        a.halt();
        let p = a.finish().unwrap();
        let mg = analyze_in(&p, &[0, 1]).unwrap();
        assert_eq!(mg.output, Some((reg(2), 1)));
    }

    #[test]
    fn interference_def_read_between() {
        let mut a = Asm::new();
        a.addq(reg(1), 1, reg(2)); // member: defines r2
        a.addq(reg(2), 0, reg(9)); // NON-member reads r2 -> interference
        a.addq(reg(2), 1, reg(2)); // member (anchor)
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(analyze_in(&p, &[0, 2]).unwrap_err(), Illegal::RegisterInterference);
    }

    #[test]
    fn interference_intervening_write_to_source() {
        let mut a = Asm::new();
        a.addq(reg(1), 1, reg(2)); // member: reads r1
        a.addq(reg(9), 0, reg(1)); // NON-member writes r1
        a.ldq(reg(3), 0, reg(2)); // member (anchor: memory op)
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(analyze_in(&p, &[0, 2]).unwrap_err(), Illegal::RegisterInterference);
    }

    #[test]
    fn memory_interference_rejected() {
        let mut a = Asm::new();
        a.ldq(reg(2), 0, reg(1)); // member load
        a.stq(reg(9), 0, reg(1)); // NON-member store in between
        a.addq(reg(2), 1, reg(3)); // member
        a.bne(reg(3), 0usize); // member (anchor: branch) -> load must move down
        let p = a.finish().unwrap();
        assert_eq!(analyze_in(&p, &[0, 2, 3]).unwrap_err(), Illegal::MemoryInterference);
    }

    #[test]
    fn clean_upward_motion_is_legal() {
        let mut a = Asm::new();
        a.ldq(reg(2), 0, reg(1)); // member, anchor (memory op)
        a.addq(reg(9), 1, reg(9)); // unrelated non-member
        a.addq(reg(2), 1, reg(2)); // member moves up across it
        a.stq(reg(2), 0, reg(30)); // r2 observed
        a.halt();
        let p = a.finish().unwrap();
        let mg = analyze_in(&p, &[0, 2]).unwrap();
        assert_eq!(mg.anchor, 0);
        assert_eq!(mg.inputs, vec![reg(1)]);
        assert_eq!(mg.output, Some((reg(2), 1)));
    }

    #[test]
    fn ineligible_opcode_rejected() {
        let mut a = Asm::new();
        a.mull(reg(1), reg(2), reg(3));
        a.addq(reg(3), 1, reg(3));
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(analyze_in(&p, &[0, 1]).unwrap_err(), Illegal::IneligibleOpcode);
    }

    #[test]
    fn two_memory_ops_rejected() {
        let mut a = Asm::new();
        a.ldq(reg(2), 0, reg(1));
        a.stq(reg(2), 8, reg(1));
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(analyze_in(&p, &[0, 1]).unwrap_err(), Illegal::TooManyMemOps);
    }

    #[test]
    fn store_terminated_graph_has_no_output() {
        let mut a = Asm::new();
        a.addq(reg(1), 9, reg(3));
        a.stq(reg(3), 0, reg(4)); // r3 dies here (not read later)
        a.lda(Reg::ZERO, 0, reg(3)); // redefines r3 => not live out
        a.halt();
        let p = a.finish().unwrap();
        let mg = analyze_in(&p, &[0, 1]).unwrap();
        assert_eq!(mg.output, None);
        assert_eq!(mg.anchor, 1);
        let h = mg.handle_inst(0);
        assert_eq!(h.dest_reg(), None);
    }
}
