//! Mini-graph extraction, selection, MGT construction, and binary
//! rewriting — the primary contribution of *Dataflow Mini-Graphs:
//! Amplifying Superscalar Capacity and Bandwidth* (MICRO-37, 2004).
//!
//! A mini-graph is a connected dataflow graph confined to a basic block
//! with the interface of a singleton instruction: at most two register
//! inputs, one register output, one memory operation, and one (terminal)
//! control transfer. This crate:
//!
//! 1. enumerates all legal mini-graph candidates of a program
//!    ([`enumerate_candidates`]), checking interface, composition, anchor
//!    and register/memory interference rules (§3.1–3.2 of the paper);
//! 2. selects among them greedily by estimated coverage `(n-1)·f` under a
//!    configurable [`Policy`] and MGT capacity ([`select()`], and
//!    [`select_domain`] for suite-wide domain-specific MGTs);
//! 3. rewrites the binary, planting `mg` handles ([`rewrite()`], nop-padded
//!    or compressed);
//! 4. packs the timing-level MGT — MGHT headers (`FU0`, `FUBMP`, `LAT`)
//!    and MGST banks — for the execution core ([`MgTable`]).
//!
//! # Example
//!
//! ```
//! use mg_isa::{Asm, reg, Memory};
//! use mg_core::{extract, Policy, rewrite, RewriteStyle};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(reg(18), 0);
//! a.li(reg(5), 20);
//! a.label("top");
//! a.addl(reg(18), 2, reg(18));
//! a.cmplt(reg(18), reg(5), reg(7));
//! a.bne(reg(7), "top");
//! a.halt();
//! let prog = a.finish()?;
//!
//! let ex = extract(&prog, &mut Memory::new(), &Policy::default(), 100_000)?;
//! assert!(ex.selection.coverage(ex.total_dyn_insts) > 0.5);
//!
//! let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);
//! assert!(rw.handles >= 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod dataflow;
pub mod enumerate;
pub mod liveness;
pub mod mgt;
pub mod minigraph;
pub mod policy;
pub mod rewrite;
pub mod select;
pub mod selector;
pub mod wire;

pub use dataflow::BlockDataflow;
pub use enumerate::enumerate_candidates;
pub use liveness::{compute_liveness, Liveness, RegSet};
pub use mgt::{build_schedule, FuReq, MgSchedule, MgSlot, MgTable, MgtConfig};
pub use minigraph::{analyze, choose_anchor, Illegal, MiniGraph};
pub use policy::Policy;
pub use rewrite::{rewrite, RewriteStyle, Rewritten};
pub use select::{select, select_domain, select_with_benefits, ChosenInstance, Selection};
pub use selector::{GreedySelector, SelectInputs, Selector, GREEDY_SELECTOR_ID};

use mg_isa::exec::ExecError;
use mg_isa::{Memory, Program};
use mg_profile::build_cfg;

/// The combined product of profiling + enumeration + selection.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The selection (instances + catalog).
    pub selection: Selection,
    /// All legal candidates considered (before policy filtering).
    pub candidates: Vec<MiniGraph>,
    /// Total dynamic instructions in the profiling run (coverage
    /// denominator).
    pub total_dyn_insts: u64,
}

/// Profiles `prog` functionally (mutating `mem` as the program would),
/// enumerates legal candidates, and selects under `policy`.
///
/// # Errors
///
/// Propagates functional-execution errors from the profiling run.
pub fn extract(
    prog: &Program,
    mem: &mut Memory,
    policy: &Policy,
    max_steps: u64,
) -> Result<Extraction, ExecError> {
    let cfg = build_cfg(prog);
    let prof = mg_profile::profile_program(prog, mem, None, max_steps)?;
    let candidates = enumerate_candidates(prog, &cfg, &prof, policy.max_size);
    let selection = select(&candidates, policy);
    Ok(Extraction { selection, candidates, total_dyn_insts: prof.total })
}
