//! Intra-block register dataflow analysis.

use mg_isa::{Program, Reg};
use mg_profile::BasicBlock;

/// Register def-use information for one basic block.
///
/// For every instruction in the block this records its (up to two) source
/// registers, its destination register, and — per source operand — the
/// *producer*: the latest in-block instruction that defines that register
/// before the reader. Sources with no in-block producer are live-in.
#[derive(Clone, Debug)]
pub struct BlockDataflow {
    start: usize,
    srcs: Vec<[Option<Reg>; 2]>,
    defs: Vec<Option<Reg>>,
    producers: Vec<[Option<usize>; 2]>,
}

impl BlockDataflow {
    /// Analyzes `block` of `prog`.
    pub fn new(prog: &Program, block: &BasicBlock) -> BlockDataflow {
        let n = block.len();
        let mut srcs = Vec::with_capacity(n);
        let mut defs = Vec::with_capacity(n);
        let mut producers = Vec::with_capacity(n);
        let mut last_def: [Option<usize>; 32] = [None; 32];
        for i in block.indices() {
            let inst = &prog.insts[i];
            let s = inst.src_regs();
            let mut p = [None, None];
            for (k, sr) in s.iter().enumerate() {
                if let Some(r) = sr {
                    p[k] = last_def[r.index()];
                }
            }
            let d = inst.dest_reg();
            if let Some(r) = d {
                last_def[r.index()] = Some(i);
            }
            srcs.push(s);
            defs.push(d);
            producers.push(p);
        }
        BlockDataflow { start: block.start, srcs, defs, producers }
    }

    /// Source registers of the instruction at absolute index `i`.
    pub fn srcs(&self, i: usize) -> [Option<Reg>; 2] {
        self.srcs[i - self.start]
    }

    /// Destination register of the instruction at absolute index `i`.
    pub fn def(&self, i: usize) -> Option<Reg> {
        self.defs[i - self.start]
    }

    /// Producer (absolute index) of source operand `slot` of instruction
    /// `i`, or `None` if the value is live-in to the block.
    pub fn producer(&self, i: usize, slot: usize) -> Option<usize> {
        self.producers[i - self.start][slot]
    }

    /// All in-block dataflow neighbours of `i`: its producers and its
    /// consumers (instructions whose producer is `i`).
    pub fn neighbours(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for slot in 0..2 {
            if let Some(p) = self.producer(i, slot) {
                out.push(p);
            }
        }
        for (off, prods) in self.producers.iter().enumerate() {
            if prods.contains(&Some(i)) {
                out.push(self.start + off);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether instruction `j` reads register `r` (in any slot).
    pub fn reads(&self, j: usize, r: Reg) -> bool {
        self.srcs(j).contains(&Some(r))
    }

    /// Whether instruction `j` defines register `r`.
    pub fn defines(&self, j: usize, r: Reg) -> bool {
        self.def(j) == Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm};
    use mg_profile::build_cfg;

    fn paper_block() -> (Program, BasicBlock) {
        // The gcc snippet from the paper's Figure 1 (left).
        let mut a = Asm::new();
        a.addl(reg(18), 2, reg(18)); // 0
        a.lda(reg(6), 2, reg(6)); // 1
        a.s8addl(reg(7), reg(0), reg(7)); // 2
        a.cmplt(reg(18), reg(5), reg(7)); // 3
        a.bne(reg(7), 0usize); // 4
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let b = cfg.blocks[0];
        (p, b)
    }

    #[test]
    fn producers_resolve_within_block() {
        let (p, b) = paper_block();
        let df = BlockDataflow::new(&p, &b);
        // cmplt reads r18 produced by addl (index 0) and live-in r5.
        assert_eq!(df.producer(3, 0), Some(0));
        assert_eq!(df.producer(3, 1), None);
        // bne reads r7 produced by cmplt (index 3), not by s8addl (index 2).
        assert_eq!(df.producer(4, 0), Some(3));
    }

    #[test]
    fn neighbours_are_symmetric() {
        let (p, b) = paper_block();
        let df = BlockDataflow::new(&p, &b);
        assert_eq!(df.neighbours(0), vec![3], "addl feeds cmplt");
        assert_eq!(df.neighbours(3), vec![0, 4]);
        assert_eq!(df.neighbours(4), vec![3]);
        assert!(df.neighbours(1).is_empty(), "lda r6 is isolated");
    }

    #[test]
    fn reads_and_defines() {
        let (p, b) = paper_block();
        let df = BlockDataflow::new(&p, &b);
        assert!(df.reads(3, reg(18)));
        assert!(df.reads(3, reg(5)));
        assert!(!df.reads(3, reg(7)));
        assert!(df.defines(3, reg(7)));
        assert!(df.defines(2, reg(7)), "s8addl also defines r7 (overwritten)");
    }
}
