//! The mini-graph table: MGHT (header) and MGST (sequencing) content.
//!
//! The MGT maps MGIDs to mini-graph definitions (paper §4.1). The header
//! table carries what the *scheduler* needs — first functional unit
//! (`FU0`), downstream FU reservations (`FUBMP`), and register-output
//! latency (`LAT`) — while the sequencing table carries per-cycle execution
//! directives, one bank per mini-graph execution cycle ("integer
//! mini-graph instructions are arranged in consecutive banks, but
//! multi-cycle operations like loads require that subsequent banks be left
//! empty").
//!
//! Schedules are parameterized by an [`MgtConfig`] because bank packing
//! depends on the machine (load latency, ALU-pipeline availability, and
//! whether pair-wise collapsing ALU pipelines are fitted, §6.2).

use mg_isa::{HandleCatalog, MgTemplate, OpClass};
use std::fmt;

/// Machine parameters that shape MGST bank packing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MgtConfig {
    /// Cycles a load occupies before its value is available to the next
    /// bank (the paper's Figure 2 uses 2).
    pub load_latency: u32,
    /// Whether ALU pipelines are fitted (integer graphs execute on them).
    pub have_alu_pipe: bool,
    /// Depth of the ALU pipelines (the paper evaluates 4-stage pipes).
    pub alu_pipe_depth: u32,
    /// Pair-wise collapsing ALU pipelines: two chained single-cycle ops
    /// execute per cycle ("two instruction integer mini-graphs execute in
    /// one cycle; three and four instruction graphs execute in two").
    pub collapsing: bool,
}

impl Default for MgtConfig {
    fn default() -> MgtConfig {
        MgtConfig { load_latency: 2, have_alu_pipe: true, alu_pipe_depth: 4, collapsing: false }
    }
}

/// The functional-unit resource one constituent occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuReq {
    /// Entry slot of an ALU pipeline (single-entry: reserved only at the
    /// cycle the chain enters; subsequent chained ops flow through stages).
    AluPipeEntry,
    /// A discrete integer ALU.
    Alu,
    /// A load port.
    LoadPort,
    /// A store port.
    StorePort,
}

impl fmt::Display for FuReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuReq::AluPipeEntry => f.write_str("AP"),
            FuReq::Alu => f.write_str("ALU"),
            FuReq::LoadPort => f.write_str("LD"),
            FuReq::StorePort => f.write_str("ST"),
        }
    }
}

/// One constituent's slot in the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MgSlot {
    /// Cycle offset (from execution start) at which the constituent begins.
    pub cycle: u32,
    /// FU reservation this constituent needs, or `None` when it flows
    /// through an already-entered ALU pipeline.
    pub fu: Option<FuReq>,
    /// Execution latency of the constituent (loads use the configured
    /// load latency).
    pub latency: u32,
}

/// A fully packed schedule for one template: the union of the MGHT entry
/// and the MGST banks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MgSchedule {
    /// Per-constituent slots, in template order.
    pub slots: Vec<MgSlot>,
    /// MGHT `FU0`: resource needed at issue.
    pub fu0: FuReq,
    /// MGHT `LAT`: cycle offset at which the interface output register is
    /// written (reserves the write port), if the graph has an output.
    pub out_latency: Option<u32>,
    /// Total execution latency (completion of the last constituent).
    pub total_latency: u32,
    /// Whether the whole graph runs on an ALU pipeline.
    pub on_alu_pipe: bool,
}

impl MgSchedule {
    /// MGHT `FUBMP`: downstream reservations `(cycle, fu)` for constituents
    /// after the first, used by the sliding-window scheduler (§4.3).
    pub fn fubmp(&self) -> impl Iterator<Item = (u32, FuReq)> + '_ {
        self.slots.iter().skip(1).filter_map(|s| s.fu.map(|f| (s.cycle, f)))
    }

    /// Renders the MGST banks (one line per cycle) for inspection.
    pub fn banks(&self, t: &MgTemplate) -> String {
        let mut out = String::new();
        for c in 0..self.total_latency {
            let ops: Vec<String> = t
                .ops
                .iter()
                .zip(&self.slots)
                .filter(|(_, s)| s.cycle == c)
                .map(|(o, s)| match s.fu {
                    Some(f) => format!("{f} {o}"),
                    None => format!("APx {o}"),
                })
                .collect();
            out.push_str(&format!("MGST.{c}: {}\n", ops.join(" | ")));
        }
        out
    }
}

/// Packs the schedule for `t` under `cfg`.
pub fn build_schedule(t: &MgTemplate, cfg: &MgtConfig) -> MgSchedule {
    let all_integer = t.is_integer_only();
    let on_ap = cfg.have_alu_pipe && all_integer && t.len() as u32 <= cfg.alu_pipe_depth;

    let mut slots = Vec::with_capacity(t.len());
    let mut next = 0u32;
    // With collapsing pipes, an un-paired ALU op is "open" at this cycle.
    let mut open_pair: Option<u32> = None;
    // Whether the previous constituent was part of an in-flight ALU chain
    // (so this ALU op needs no new FU entry when running on an AP).
    let mut in_alu_run = false;

    for op in &t.ops {
        let class = op.op.class();
        let is_aluish =
            matches!(class, OpClass::IntAlu | OpClass::CondBranch | OpClass::UncondBranch);
        if is_aluish {
            let collapsing_here = cfg.collapsing && (on_ap || cfg.have_alu_pipe);
            let cycle = if collapsing_here {
                if let Some(pc) = open_pair.take() {
                    next = pc + 1;
                    pc
                } else {
                    let c = next;
                    open_pair = Some(c);
                    next = c + 1;
                    c
                }
            } else {
                let c = next;
                next = c + 1;
                c
            };
            let fu = if on_ap {
                if in_alu_run {
                    None
                } else {
                    Some(FuReq::AluPipeEntry)
                }
            } else if cfg.have_alu_pipe && in_alu_run {
                // Mixed graph: trailing ALU runs execute on an ALU pipeline
                // entered at the run head (the paper's alternative template
                // for mini-graph 34).
                None
            } else if cfg.have_alu_pipe {
                Some(FuReq::AluPipeEntry)
            } else {
                Some(FuReq::Alu)
            };
            slots.push(MgSlot { cycle, fu, latency: 1 });
            in_alu_run = true;
        } else {
            open_pair = None;
            in_alu_run = false;
            let (fu, lat) = if class == OpClass::Load {
                (FuReq::LoadPort, cfg.load_latency)
            } else {
                (FuReq::StorePort, 1)
            };
            let c = next;
            next = c + lat;
            slots.push(MgSlot { cycle: c, fu: Some(fu), latency: lat });
        }
    }

    let total_latency = slots.iter().map(|s| s.cycle + s.latency).max().unwrap_or(0);
    let out_latency = t.out.map(|o| {
        let s = &slots[o as usize];
        s.cycle + s.latency
    });
    let fu0 = slots.first().and_then(|s| s.fu).unwrap_or(FuReq::Alu);

    MgSchedule { slots, fu0, out_latency, total_latency, on_alu_pipe: on_ap }
}

/// Packed schedules for every template of a catalog, indexed by MGID — the
/// physical MGT image a `mg-uarch` core loads.
#[derive(Clone, Debug, Default)]
pub struct MgTable {
    schedules: Vec<MgSchedule>,
}

impl MgTable {
    /// Builds the table for `catalog` under `cfg`.
    pub fn from_catalog(catalog: &HandleCatalog, cfg: &MgtConfig) -> MgTable {
        MgTable { schedules: catalog.iter().map(|(_, t)| build_schedule(t, cfg)).collect() }
    }

    /// Schedule for an MGID.
    pub fn get(&self, mgid: u32) -> Option<&MgSchedule> {
        self.schedules.get(mgid as usize)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.schedules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{Opcode, TmplInst, TmplOperand};

    fn mg12() -> MgTemplate {
        MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addl,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(2),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Cmplt,
                    a: TmplOperand::M(0),
                    b: TmplOperand::E1,
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Bne,
                    a: TmplOperand::M(1),
                    b: TmplOperand::Imm(0),
                    disp: -3,
                },
            ],
            out: Some(0),
        }
    }

    fn mg34() -> MgTemplate {
        MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Ldq,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(0),
                    disp: 16,
                },
                TmplInst {
                    op: Opcode::Srl,
                    a: TmplOperand::M(0),
                    b: TmplOperand::Imm(14),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::And,
                    a: TmplOperand::M(1),
                    b: TmplOperand::Imm(1),
                    disp: 0,
                },
            ],
            out: Some(2),
        }
    }

    #[test]
    fn paper_figure2_mght_row_12() {
        // Integer graph on an AP: LAT 1 (output produced by first op),
        // FUBMP empty, one-per-cycle banks.
        let s = build_schedule(&mg12(), &MgtConfig::default());
        assert!(s.on_alu_pipe);
        assert_eq!(s.fu0, FuReq::AluPipeEntry);
        assert_eq!(s.out_latency, Some(1), "paper: LAT = 1");
        assert_eq!(s.total_latency, 3);
        assert_eq!(s.fubmp().count(), 0, "paper: FUBMP empty for mini-graph 12");
        assert_eq!(s.slots.iter().map(|x| x.cycle).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn paper_figure2_mght_row_34() {
        // Load-lead graph: ldq in bank 0, bank 1 empty (load latency 2),
        // srl in bank 2, and in bank 3; LAT = 4.
        let s = build_schedule(&mg34(), &MgtConfig::default());
        assert!(!s.on_alu_pipe);
        assert_eq!(s.fu0, FuReq::LoadPort);
        assert_eq!(s.slots.iter().map(|x| x.cycle).collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(s.out_latency, Some(4), "paper: LAT = 4");
        assert_eq!(s.total_latency, 4);
        // Alternative template: trailing ALU run enters an AP once.
        let reservations: Vec<(u32, FuReq)> = s.fubmp().collect();
        assert_eq!(reservations, vec![(2, FuReq::AluPipeEntry)]);
    }

    #[test]
    fn collapsing_halves_integer_graphs() {
        let cfg = MgtConfig { collapsing: true, ..MgtConfig::default() };
        let s = build_schedule(&mg12(), &cfg);
        // 3 ops -> cycles 0,0,1: total 2 ("three and four instruction
        // graphs execute in two cycles").
        assert_eq!(s.slots.iter().map(|x| x.cycle).collect::<Vec<_>>(), vec![0, 0, 1]);
        assert_eq!(s.total_latency, 2);

        let two = MgTemplate { ops: mg12().ops[..2].to_vec(), out: Some(1) };
        let s2 = build_schedule(&two, &cfg);
        assert_eq!(s2.total_latency, 1, "two-instruction graphs execute in one cycle");
    }

    #[test]
    fn no_alu_pipe_means_discrete_alus() {
        let cfg = MgtConfig { have_alu_pipe: false, ..MgtConfig::default() };
        let s = build_schedule(&mg12(), &cfg);
        assert!(!s.on_alu_pipe);
        assert!(s.slots.iter().all(|x| x.fu == Some(FuReq::Alu)));
        assert_eq!(s.fubmp().count(), 2, "each downstream op reserves an ALU");
    }

    #[test]
    fn store_terminated_schedule() {
        let t = MgTemplate {
            ops: vec![
                TmplInst { op: Opcode::Addq, a: TmplOperand::E0, b: TmplOperand::E1, disp: 0 },
                TmplInst { op: Opcode::Stq, a: TmplOperand::M(0), b: TmplOperand::E1, disp: 0 },
            ],
            out: None,
        };
        let s = build_schedule(&t, &MgtConfig::default());
        assert_eq!(s.out_latency, None);
        assert_eq!(s.slots[1].fu, Some(FuReq::StorePort));
        assert_eq!(s.total_latency, 2);
    }

    #[test]
    fn banks_rendering_mentions_empty_bank() {
        let s = build_schedule(&mg34(), &MgtConfig::default());
        let banks = s.banks(&mg34());
        assert!(banks.contains("MGST.1: \n"), "bank 1 left empty after the load:\n{banks}");
        assert!(banks.contains("MGST.0: LD ldq 16(E0)"), "{banks}");
    }

    #[test]
    fn table_lookup() {
        let mut cat = HandleCatalog::new();
        cat.add(mg12());
        cat.add(mg34());
        let table = MgTable::from_catalog(&cat, &MgtConfig::default());
        assert_eq!(table.len(), 2);
        assert!(table.get(0).unwrap().on_alu_pipe);
        assert!(!table.get(1).unwrap().on_alu_pipe);
        assert!(table.get(2).is_none());
    }
}
