//! Greedy coverage-ranked mini-graph selection (paper §3.2).
//!
//! Candidates are coalesced by canonical template ("we consider static
//! mini-graphs with identical dataflows and immediate operands as
//! equivalent"), ranked by estimated coverage `Σ (n-1)·f` over their still-
//! available instances, and picked greedily. Selecting a mini-graph marks
//! its static instructions as used, which may invalidate overlapping
//! candidates; weights are re-adjusted every iteration. The process stops
//! when the candidate list is exhausted or the MGT capacity (template
//! limit) is reached.

use crate::minigraph::MiniGraph;
use crate::policy::Policy;
use mg_isa::{HandleCatalog, MgTemplate};
use std::collections::HashMap;

/// One selected mini-graph instance with its assigned MGID.
#[derive(Clone, Debug)]
pub struct ChosenInstance {
    /// The candidate.
    pub graph: MiniGraph,
    /// Index of the instance's template in the catalog.
    pub mgid: u32,
}

/// The outcome of selection for one program.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    /// Selected instances (non-overlapping).
    pub chosen: Vec<ChosenInstance>,
    /// The MGT content: one entry per distinct template.
    pub catalog: HandleCatalog,
}

impl Selection {
    /// Dynamic instructions that are members of selected mini-graphs:
    /// `Σ n·f`.
    pub fn covered_insts(&self) -> u64 {
        self.chosen.iter().map(|c| c.graph.size() as u64 * c.graph.freq).sum()
    }

    /// Dynamic pipeline slots saved: `Σ (n-1)·f` — the paper's coverage
    /// metric ("the fraction of dynamic instructions it removes from the
    /// pipeline", §3.2, relative to the total).
    pub fn saved_slots(&self) -> u64 {
        self.chosen.iter().map(|c| c.graph.benefit()).sum()
    }

    /// The paper's coverage metric, as a fraction of `total_dyn_insts`.
    pub fn coverage(&self, total_dyn_insts: u64) -> f64 {
        if total_dyn_insts == 0 {
            return 0.0;
        }
        self.saved_slots() as f64 / total_dyn_insts as f64
    }
}

/// Selects mini-graphs for one program from `candidates` under `policy`.
pub fn select(candidates: &[MiniGraph], policy: &Policy) -> Selection {
    let instances: Vec<&MiniGraph> = candidates.iter().filter(|c| policy.admits(c)).collect();
    let groups = group_by_template(&instances);

    let mut taken_insts: HashMap<usize, ()> = HashMap::new();
    let mut selection = Selection::default();
    let mut mgid_of: HashMap<&MgTemplate, u32> = HashMap::new();
    let mut remaining: Vec<&TemplateGroup> = groups.iter().collect();

    while selection.catalog.len() < policy.capacity {
        // Re-adjust weights: benefit over still-available instances.
        let mut best: Option<(usize, u64)> = None;
        for (gi, g) in remaining.iter().enumerate() {
            let b: u64 = g
                .instances
                .iter()
                .filter(|inst| inst.members.iter().all(|m| !taken_insts.contains_key(m)))
                .map(|inst| inst.benefit())
                .sum();
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((gi, b));
            }
        }
        let Some((gi, _)) = best else { break };
        let group = remaining.swap_remove(gi);

        let mgid = *mgid_of
            .entry(&group.template)
            .or_insert_with(|| selection.catalog.add(group.template.clone()));
        for inst in &group.instances {
            if inst.members.iter().any(|m| taken_insts.contains_key(m)) {
                continue;
            }
            for &m in &inst.members {
                taken_insts.insert(m, ());
            }
            selection.chosen.push(ChosenInstance { graph: (*inst).clone(), mgid });
        }
    }
    selection
}

/// Selects one *domain-specific* MGT shared by several programs
/// (paper Figure 5 bottom): templates are pooled across programs, benefits
/// summed, and capacity shared; per-program selections are returned in
/// input order alongside the shared catalog.
pub fn select_domain(
    per_program_candidates: &[Vec<MiniGraph>],
    policy: &Policy,
) -> (Vec<Selection>, HandleCatalog) {
    struct Tagged<'a> {
        prog: usize,
        inst: &'a MiniGraph,
    }
    let mut all: Vec<Tagged<'_>> = Vec::new();
    for (pi, cands) in per_program_candidates.iter().enumerate() {
        for c in cands.iter().filter(|c| policy.admits(c)) {
            all.push(Tagged { prog: pi, inst: c });
        }
    }
    // Group across programs by template, ordered by first appearance so
    // benefit ties break deterministically (see `group_by_template`).
    let mut index: HashMap<&MgTemplate, usize> = HashMap::new();
    let mut groups: Vec<(&MgTemplate, Vec<usize>)> = Vec::new();
    for (i, t) in all.iter().enumerate() {
        let gi = *index.entry(&t.inst.template).or_insert_with(|| {
            groups.push((&t.inst.template, Vec::new()));
            groups.len() - 1
        });
        groups[gi].1.push(i);
    }

    let mut taken: Vec<HashMap<usize, ()>> = vec![HashMap::new(); per_program_candidates.len()];
    let mut catalog = HandleCatalog::new();
    let mut selections: Vec<Selection> =
        vec![Selection::default(); per_program_candidates.len()];
    let mut remaining: Vec<&(&MgTemplate, Vec<usize>)> = groups.iter().collect();

    while catalog.len() < policy.capacity {
        let mut best: Option<(usize, u64)> = None;
        for (gi, (_, members)) in remaining.iter().enumerate() {
            let b: u64 = members
                .iter()
                .map(|&i| &all[i])
                .filter(|t| t.inst.members.iter().all(|m| !taken[t.prog].contains_key(m)))
                .map(|t| t.inst.benefit())
                .sum();
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((gi, b));
            }
        }
        let Some((gi, _)) = best else { break };
        let (template, members) = remaining.swap_remove(gi);
        let mgid = catalog.add((*template).clone());
        for &i in members {
            let t = &all[i];
            if t.inst.members.iter().any(|m| taken[t.prog].contains_key(m)) {
                continue;
            }
            for &m in &t.inst.members {
                taken[t.prog].insert(m, ());
            }
            selections[t.prog].chosen.push(ChosenInstance { graph: t.inst.clone(), mgid });
        }
    }
    // Each per-program selection shares the pooled catalog.
    for s in &mut selections {
        s.catalog = catalog.clone();
    }
    (selections, catalog)
}

struct TemplateGroup {
    template: MgTemplate,
    instances: Vec<MiniGraph>,
}

fn group_by_template(instances: &[&MiniGraph]) -> Vec<TemplateGroup> {
    // Groups are ordered by first appearance (NOT HashMap iteration
    // order): greedy ranking breaks benefit ties by group order, so the
    // grouping must be deterministic for selection to be reproducible.
    let mut index: HashMap<&MgTemplate, usize> = HashMap::new();
    let mut groups: Vec<TemplateGroup> = Vec::new();
    for &inst in instances {
        let gi = *index.entry(&inst.template).or_insert_with(|| {
            groups
                .push(TemplateGroup { template: inst.template.clone(), instances: Vec::new() });
            groups.len() - 1
        });
        groups[gi].instances.push(inst.clone());
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_candidates;
    use mg_isa::{reg, Asm, Memory, Program};
    use mg_profile::{build_cfg, profile_program};

    fn candidates_for(p: &Program) -> (Vec<MiniGraph>, u64) {
        let cfg = build_cfg(p);
        let prof = profile_program(p, &mut Memory::new(), None, 1_000_000).unwrap();
        (enumerate_candidates(p, &cfg, &prof, 4), prof.total)
    }

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), iters);
        a.label("top");
        a.addl(reg(18), 1, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn greedy_picks_largest_benefit() {
        let p = loop_program(100);
        let (cands, total) = candidates_for(&p);
        let sel = select(&cands, &Policy::default());
        assert_eq!(sel.catalog.len(), 1, "one 3-inst template wins");
        assert_eq!(sel.chosen.len(), 1);
        assert_eq!(sel.chosen[0].graph.size(), 3);
        // Coverage: loop body (3 insts) runs 100 times; saves 2 slots each.
        assert_eq!(sel.saved_slots(), 200);
        assert!(sel.coverage(total) > 0.6);
    }

    #[test]
    fn members_never_overlap() {
        let p = loop_program(50);
        let (cands, _) = candidates_for(&p);
        let sel = select(&cands, &Policy::default());
        let mut seen = std::collections::HashSet::new();
        for c in &sel.chosen {
            for &m in &c.graph.members {
                assert!(seen.insert(m), "instruction {m} selected twice");
            }
        }
    }

    #[test]
    fn capacity_limits_templates() {
        // Two distinct hot idioms; capacity 1 keeps only the better one.
        let mut a = Asm::new();
        a.li(reg(1), 200);
        a.li(reg(9), 0);
        a.label("top");
        a.addq(reg(9), 3, reg(9)); // idiom A (higher frequency via size)
        a.srl(reg(9), 1, reg(9));
        a.xor(reg(9), 5, reg(9));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let (cands, _) = candidates_for(&p);
        let full = select(&cands, &Policy::default());
        let capped = select(&cands, &Policy::default().with_capacity(1));
        assert!(capped.catalog.len() <= 1);
        assert!(capped.saved_slots() <= full.saved_slots());
        assert!(!full.catalog.is_empty());
    }

    #[test]
    fn identical_idioms_share_one_template() {
        // The same add/shift pair appears in two places.
        let mut a = Asm::new();
        a.li(reg(1), 30);
        a.label("top");
        a.addq(reg(2), 7, reg(3));
        a.sll(reg(3), 2, reg(3));
        a.stq(reg(3), 0, reg(28)); // keep r3 dead afterwards
        a.addq(reg(2), 7, reg(4));
        a.sll(reg(4), 2, reg(4));
        a.stq(reg(4), 8, reg(28));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let (cands, _) = candidates_for(&p);
        let sel = select(&cands, &Policy::integer());
        let pair_instances: Vec<_> = sel
            .chosen
            .iter()
            .filter(|c| c.graph.size() == 2 && c.graph.template.mem_op().is_none())
            .collect();
        if pair_instances.len() >= 2 {
            assert_eq!(
                pair_instances[0].mgid, pair_instances[1].mgid,
                "identical dataflow + immediates coalesce to one MGT entry"
            );
        }
    }

    #[test]
    fn domain_selection_shares_capacity() {
        let p1 = loop_program(100);
        let p2 = loop_program(80); // identical idiom, different program
        let (c1, _) = candidates_for(&p1);
        let (c2, _) = candidates_for(&p2);
        let (sels, catalog) = select_domain(&[c1, c2], &Policy::default().with_capacity(4));
        assert!(catalog.len() <= 4);
        assert!(!sels[0].chosen.is_empty());
        assert!(!sels[1].chosen.is_empty());
        // The shared idiom maps to the same MGID in both programs.
        assert_eq!(sels[0].chosen[0].mgid, sels[1].chosen[0].mgid);
    }
}
