//! Greedy coverage-ranked mini-graph selection (paper §3.2).
//!
//! Candidates are coalesced by canonical template ("we consider static
//! mini-graphs with identical dataflows and immediate operands as
//! equivalent"), ranked by estimated coverage `Σ (n-1)·f` over their still-
//! available instances, and picked greedily. Selecting a mini-graph marks
//! its static instructions as used, which may invalidate overlapping
//! candidates; weights are re-adjusted every iteration. The process stops
//! when the candidate list is exhausted or the MGT capacity (template
//! limit) is reached.
//!
//! # Determinism and the tie-break order
//!
//! Template groups are formed in **first-appearance order** (the order
//! instances occur in the candidate list), never in hash-iteration order.
//! Each greedy round picks the group with the strictly largest current
//! benefit, breaking ties by position in a *swap-filled* working list:
//! the list starts in group order, and a selected group's slot is
//! back-filled by the last live group (the historical `Vec::swap_remove`
//! discipline). Both rules are part of the output contract — selections
//! feed program rewriting, so the golden-stats tests pin them down.
//!
//! # Inner-loop data structures
//!
//! The greedy loop used to rescan every (group × instance × member) per
//! round. `GreedyPicker` replaces that with
//!
//! * a dense **bitset** of taken static-instruction indices (instead of a
//!   `HashMap<usize, ()>` per program),
//! * an instruction-index → overlapping-instances adjacency, so taking an
//!   instruction **incrementally** invalidates exactly the candidates it
//!   kills and debits their groups' benefits, and
//! * a **lazy max-heap** of `(benefit, position)` claims, re-validated on
//!   pop: benefits only decrease, so a popped claim that still matches
//!   the group's current benefit and position is the true maximum; a
//!   stale claim is replaced by a fresh one and the pop retries.

use crate::minigraph::MiniGraph;
use crate::policy::Policy;
use mg_isa::{HandleCatalog, MgTemplate};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// One selected mini-graph instance with its assigned MGID.
#[derive(Clone, Debug)]
pub struct ChosenInstance {
    /// The candidate.
    pub graph: MiniGraph,
    /// Index of the instance's template in the catalog.
    pub mgid: u32,
}

/// The outcome of selection for one program.
///
/// # Invariants
///
/// Every selection algorithm in the tree ([`select`], [`select_domain`],
/// [`select_with_benefits`], and the `mg-policy` selectors behind the
/// [`Selector`](crate::selector::Selector) trait) upholds the same output
/// contract, which the rewriter and the MGT packer rely on:
///
/// * **Admissibility** — every chosen instance was approved by the
///   selecting policy's [`Policy::admits`]; no selector may smuggle in a
///   candidate the policy filtered out.
/// * **Instance disjointness** — the `members` sets of the chosen
///   instances are pairwise disjoint: each static instruction belongs to
///   at most one selected mini-graph (atomicity, paper §3.1).
/// * **Catalog consistency** — `catalog.len() <= policy.capacity`, and
///   every `mgid` indexes a catalog entry equal to its instance's
///   template.
///
/// `tests/policy_properties.rs` asserts all three properties across every
/// selection family on generated programs.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    /// Selected instances (non-overlapping).
    pub chosen: Vec<ChosenInstance>,
    /// The MGT content: one entry per distinct template.
    pub catalog: HandleCatalog,
}

impl Selection {
    /// Dynamic instructions that are members of selected mini-graphs:
    /// `Σ n·f`.
    pub fn covered_insts(&self) -> u64 {
        self.chosen.iter().map(|c| c.graph.size() as u64 * c.graph.freq).sum()
    }

    /// Dynamic pipeline slots saved: `Σ (n-1)·f` — the paper's coverage
    /// metric ("the fraction of dynamic instructions it removes from the
    /// pipeline", §3.2, relative to the total).
    pub fn saved_slots(&self) -> u64 {
        self.chosen.iter().map(|c| c.graph.benefit()).sum()
    }

    /// The paper's coverage metric, as a fraction of `total_dyn_insts`.
    pub fn coverage(&self, total_dyn_insts: u64) -> f64 {
        if total_dyn_insts == 0 {
            return 0.0;
        }
        self.saved_slots() as f64 / total_dyn_insts as f64
    }
}

/// Dense bitset over static-instruction indices: the "already a member of
/// a selected mini-graph" set.
struct TakenSet {
    words: Vec<u64>,
}

impl TakenSet {
    fn new(universe: usize) -> TakenSet {
        TakenSet { words: vec![0; universe.div_ceil(64)] }
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
}

/// The incremental greedy core shared by [`select`] and [`select_domain`].
///
/// Instances are identified by index into a caller-held pool; groups by
/// index in first-appearance order. Members live in a dense `0..universe`
/// index space (multi-program callers offset each program's indices).
struct GreedyPicker<'a> {
    /// Per group: its instances (pool indices) in pool order.
    groups: Vec<Vec<u32>>,
    /// Per group: summed benefit over still-valid instances.
    benefit: Vec<u64>,
    /// Per group: still a pick candidate (not yet selected).
    live: Vec<bool>,
    /// Per group: current position in the swap-filled working list.
    pos: Vec<usize>,
    /// Inverse of `pos` over live groups: `slot[p]` is the group at `p`.
    slot: Vec<usize>,
    /// Live-group count: `slot[..live_n]` is the working list.
    live_n: usize,
    /// Per instance: owning group.
    inst_group: Vec<u32>,
    /// Per instance: `(n-1)·f` benefit.
    inst_benefit: Vec<u64>,
    /// Per instance: member instruction indices (ascending).
    inst_members: Vec<&'a [usize]>,
    /// Per instance: offset of its program's slice of the member space.
    inst_offset: Vec<usize>,
    /// Per instance: not yet consumed or overlapped by a selected one.
    valid: Vec<bool>,
    /// Member index → instances containing it.
    member_map: Vec<Vec<u32>>,
    /// Taken member instructions.
    taken: TakenSet,
    /// Lazy claims: `(benefit, Reverse(position), group)`.
    heap: BinaryHeap<(u64, Reverse<usize>, usize)>,
}

impl<'a> GreedyPicker<'a> {
    /// Builds the picker. `instances` yields, in pool order, each
    /// instance's `(members, member-space offset, benefit)`; `group_of`
    /// assigns each to a group id `< n_groups` (groups must be numbered in
    /// first-appearance order). `universe` bounds `offset + member`.
    fn new(
        n_groups: usize,
        universe: usize,
        instances: impl Iterator<Item = (&'a [usize], usize, u64)>,
        group_of: &[u32],
    ) -> GreedyPicker<'a> {
        let mut picker = GreedyPicker {
            groups: vec![Vec::new(); n_groups],
            benefit: vec![0; n_groups],
            live: vec![true; n_groups],
            pos: (0..n_groups).collect(),
            slot: (0..n_groups).collect(),
            live_n: n_groups,
            inst_group: group_of.to_vec(),
            inst_benefit: Vec::new(),
            inst_members: Vec::new(),
            inst_offset: Vec::new(),
            valid: Vec::new(),
            member_map: vec![Vec::new(); universe],
            taken: TakenSet::new(universe),
            heap: BinaryHeap::new(),
        };
        for (ii, (members, offset, benefit)) in instances.enumerate() {
            let gi = group_of[ii] as usize;
            picker.groups[gi].push(ii as u32);
            picker.benefit[gi] += benefit;
            picker.inst_benefit.push(benefit);
            picker.inst_members.push(members);
            picker.inst_offset.push(offset);
            picker.valid.push(true);
            for &m in members {
                picker.member_map[offset + m].push(ii as u32);
            }
        }
        for gi in 0..n_groups {
            if picker.benefit[gi] > 0 {
                picker.heap.push((picker.benefit[gi], Reverse(gi), gi));
            }
        }
        picker
    }

    /// The next greedy pick: the live group with the strictly largest
    /// current benefit, ties broken by working-list position. `None` when
    /// every remaining group has zero benefit.
    fn pick(&mut self) -> Option<usize> {
        while let Some((b, Reverse(p), gi)) = self.heap.pop() {
            if !self.live[gi] {
                continue;
            }
            if b == self.benefit[gi] && p == self.pos[gi] {
                return Some(gi);
            }
            // Stale claim: benefits only decrease, so every other claim is
            // an upper bound of its group and the refreshed one re-enters
            // fairly.
            if self.benefit[gi] > 0 {
                self.heap.push((self.benefit[gi], Reverse(self.pos[gi]), gi));
            }
        }
        None
    }

    /// Consumes group `gi`: takes every still-valid instance (in pool
    /// order, feeding each to `chosen`), marks its members taken,
    /// invalidates overlapping instances, and debits their groups'
    /// benefits. Finishes with the swap-fill that keeps the working-list
    /// tie-break order.
    fn consume(&mut self, gi: usize, mut chosen: impl FnMut(u32)) {
        self.live[gi] = false;
        for k in 0..self.groups[gi].len() {
            let ii = self.groups[gi][k] as usize;
            if !self.valid[ii] {
                continue; // overlapped by an earlier pick (or sibling)
            }
            self.valid[ii] = false;
            let offset = self.inst_offset[ii];
            for &m in self.inst_members[ii] {
                let g = offset + m;
                debug_assert!(!self.taken.contains(g), "valid instance has a taken member");
                self.taken.insert(g);
                for &jj in &self.member_map[g] {
                    let jj = jj as usize;
                    if !self.valid[jj] {
                        continue;
                    }
                    self.valid[jj] = false;
                    let g2 = self.inst_group[jj] as usize;
                    if self.live[g2] {
                        self.benefit[g2] -= self.inst_benefit[jj];
                    }
                }
            }
            chosen(ii as u32);
        }
        // Swap-fill: the last live group takes the selected slot. Its
        // position key just changed, so it needs a fresh heap claim (the
        // old, larger-position claims now under-rank it).
        let p = self.pos[gi];
        let moved = self.slot[self.live_n - 1];
        if moved != gi {
            self.slot[p] = moved;
            self.pos[moved] = p;
            if self.benefit[moved] > 0 {
                self.heap.push((self.benefit[moved], Reverse(p), moved));
            }
        }
        self.live_n -= 1;
    }
}

/// Groups `templates` (in iteration order) by equality, returning each
/// item's group id plus one representative index per group. Groups are
/// numbered in first-appearance order — never hash-iteration order — so
/// greedy tie-breaking is reproducible.
fn group_by_template<'a>(
    templates: impl Iterator<Item = &'a MgTemplate>,
) -> (Vec<u32>, Vec<usize>) {
    let mut index: HashMap<&MgTemplate, u32> = HashMap::new();
    let mut group_of = Vec::new();
    let mut rep = Vec::new();
    for (i, t) in templates.enumerate() {
        let next = rep.len() as u32;
        let gi = *index.entry(t).or_insert_with(|| {
            rep.push(i);
            next
        });
        group_of.push(gi);
    }
    (group_of, rep)
}

/// Selects mini-graphs for one program from `candidates` under `policy`.
///
/// Only `policy.admits()`-approved candidates are considered, and the
/// returned selection's instances are member-disjoint (see the
/// [`Selection`] invariants).
pub fn select(candidates: &[MiniGraph], policy: &Policy) -> Selection {
    select_with_benefits(candidates, policy, MiniGraph::benefit)
}

/// [`select`] with a caller-supplied benefit function: the greedy rank of
/// each candidate uses `benefit_of(c)` instead of the paper's `(n-1)·f`
/// [`MiniGraph::benefit`].
///
/// This is the entry point for *weighted* selection policies (e.g. the
/// loop-depth-scaled weights of `mg-policy::weighted`): the greedy
/// mechanics — template grouping, incremental invalidation, the
/// swap-filled tie-break — are identical, only the ranking weight changes.
/// With `MiniGraph::benefit` as the weight this is exactly [`select`], bit
/// for bit. Candidates whose weight is 0 are never picked (a zero-benefit
/// group ends selection), and the returned [`Selection`] still reports
/// coverage in true `(n-1)·f` terms regardless of the weights used to
/// rank. The [`Selection`] invariants (admissibility, disjointness,
/// catalog consistency) hold for any weight function.
pub fn select_with_benefits(
    candidates: &[MiniGraph],
    policy: &Policy,
    benefit_of: impl Fn(&MiniGraph) -> u64,
) -> Selection {
    let instances: Vec<&MiniGraph> = candidates.iter().filter(|c| policy.admits(c)).collect();
    let (group_of, rep) = group_by_template(instances.iter().map(|c| &c.template));
    let universe =
        instances.iter().map(|c| c.members.last().copied().unwrap_or(0) + 1).max().unwrap_or(0);
    let mut picker = GreedyPicker::new(
        rep.len(),
        universe,
        instances.iter().map(|c| (c.members.as_slice(), 0, benefit_of(c))),
        &group_of,
    );

    let mut selection = Selection::default();
    while selection.catalog.len() < policy.capacity {
        let Some(gi) = picker.pick() else { break };
        let mgid = selection.catalog.add(instances[rep[gi]].template.clone());
        picker.consume(gi, |ii| {
            selection
                .chosen
                .push(ChosenInstance { graph: instances[ii as usize].clone(), mgid });
        });
    }
    selection
}

/// Selects one *domain-specific* MGT shared by several programs
/// (paper Figure 5 bottom): templates are pooled across programs, benefits
/// summed, and capacity shared; per-program selections are returned in
/// input order alongside the shared catalog.
///
/// The [`Selection`] invariants hold per program: each program's returned
/// selection contains only `policy.admits()`-approved candidates from
/// *that program's* pool, and its instances are member-disjoint within
/// the program (two programs may of course select the same instruction
/// index — member spaces are per-program, offset internally so one taken
/// bitset covers all of them without aliasing). The shared catalog obeys
/// `catalog.len() <= policy.capacity` across the whole domain.
pub fn select_domain(
    per_program_candidates: &[Vec<MiniGraph>],
    policy: &Policy,
) -> (Vec<Selection>, HandleCatalog) {
    struct Tagged<'a> {
        prog: usize,
        inst: &'a MiniGraph,
    }
    let mut all: Vec<Tagged<'_>> = Vec::new();
    for (pi, cands) in per_program_candidates.iter().enumerate() {
        for c in cands.iter().filter(|c| policy.admits(c)) {
            all.push(Tagged { prog: pi, inst: c });
        }
    }
    // Group across programs by template (first-appearance order) and give
    // each program its own slice of the member-index space, so one bitset
    // covers every program's taken instructions.
    let (group_of, rep) = group_by_template(all.iter().map(|t| &t.inst.template));
    let mut offsets = vec![0usize; per_program_candidates.len()];
    for t in &all {
        let end = t.inst.members.last().copied().unwrap_or(0) + 1;
        offsets[t.prog] = offsets[t.prog].max(end);
    }
    let mut universe = 0usize;
    for off in &mut offsets {
        let size = *off;
        *off = universe;
        universe += size;
    }
    let mut picker = GreedyPicker::new(
        rep.len(),
        universe,
        all.iter().map(|t| (t.inst.members.as_slice(), offsets[t.prog], t.inst.benefit())),
        &group_of,
    );

    let mut catalog = HandleCatalog::new();
    let mut selections: Vec<Selection> =
        vec![Selection::default(); per_program_candidates.len()];
    while catalog.len() < policy.capacity {
        let Some(gi) = picker.pick() else { break };
        let mgid = catalog.add(all[rep[gi]].inst.template.clone());
        picker.consume(gi, |ii| {
            let t = &all[ii as usize];
            selections[t.prog].chosen.push(ChosenInstance { graph: t.inst.clone(), mgid });
        });
    }
    // Each per-program selection shares the pooled catalog.
    for s in &mut selections {
        s.catalog = catalog.clone();
    }
    (selections, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_candidates;
    use mg_isa::{reg, Asm, Memory, Program};
    use mg_profile::{build_cfg, profile_program};

    fn candidates_for(p: &Program) -> (Vec<MiniGraph>, u64) {
        let cfg = build_cfg(p);
        let prof = profile_program(p, &mut Memory::new(), None, 1_000_000).unwrap();
        (enumerate_candidates(p, &cfg, &prof, 4), prof.total)
    }

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), iters);
        a.label("top");
        a.addl(reg(18), 1, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        a.finish().unwrap()
    }

    /// The pre-optimisation greedy loop, kept verbatim as an executable
    /// specification: full benefit rescan per round over `HashMap` member
    /// sets, `swap_remove` on pick. [`select`] must match it exactly.
    fn reference_select(candidates: &[MiniGraph], policy: &Policy) -> Selection {
        let instances: Vec<&MiniGraph> =
            candidates.iter().filter(|c| policy.admits(c)).collect();
        let mut index: HashMap<&MgTemplate, usize> = HashMap::new();
        let mut groups: Vec<(&MgTemplate, Vec<&MiniGraph>)> = Vec::new();
        for &inst in &instances {
            let gi = *index.entry(&inst.template).or_insert_with(|| {
                groups.push((&inst.template, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(inst);
        }
        let mut taken: HashMap<usize, ()> = HashMap::new();
        let mut selection = Selection::default();
        let mut remaining: Vec<&(&MgTemplate, Vec<&MiniGraph>)> = groups.iter().collect();
        while selection.catalog.len() < policy.capacity {
            let mut best: Option<(usize, u64)> = None;
            for (gi, (_, insts)) in remaining.iter().enumerate() {
                let b: u64 = insts
                    .iter()
                    .filter(|i| i.members.iter().all(|m| !taken.contains_key(m)))
                    .map(|i| i.benefit())
                    .sum();
                if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                    best = Some((gi, b));
                }
            }
            let Some((gi, _)) = best else { break };
            let (template, insts) = remaining.swap_remove(gi);
            let mgid = selection.catalog.add((*template).clone());
            for inst in insts {
                if inst.members.iter().any(|m| taken.contains_key(m)) {
                    continue;
                }
                for &m in &inst.members {
                    taken.insert(m, ());
                }
                selection.chosen.push(ChosenInstance { graph: (*inst).clone(), mgid });
            }
        }
        selection
    }

    /// The pre-optimisation domain-selection loop, kept verbatim like
    /// [`reference_select`]: per-program `HashMap` taken sets, full
    /// rescan, `swap_remove`. [`select_domain`] must match it exactly.
    fn reference_select_domain(
        per_program_candidates: &[Vec<MiniGraph>],
        policy: &Policy,
    ) -> (Vec<Selection>, HandleCatalog) {
        struct Tagged<'a> {
            prog: usize,
            inst: &'a MiniGraph,
        }
        let mut all: Vec<Tagged<'_>> = Vec::new();
        for (pi, cands) in per_program_candidates.iter().enumerate() {
            for c in cands.iter().filter(|c| policy.admits(c)) {
                all.push(Tagged { prog: pi, inst: c });
            }
        }
        let mut index: HashMap<&MgTemplate, usize> = HashMap::new();
        let mut groups: Vec<(&MgTemplate, Vec<usize>)> = Vec::new();
        for (i, t) in all.iter().enumerate() {
            let gi = *index.entry(&t.inst.template).or_insert_with(|| {
                groups.push((&t.inst.template, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(i);
        }
        let mut taken: Vec<HashMap<usize, ()>> =
            vec![HashMap::new(); per_program_candidates.len()];
        let mut catalog = HandleCatalog::new();
        let mut selections: Vec<Selection> =
            vec![Selection::default(); per_program_candidates.len()];
        let mut remaining: Vec<&(&MgTemplate, Vec<usize>)> = groups.iter().collect();
        while catalog.len() < policy.capacity {
            let mut best: Option<(usize, u64)> = None;
            for (gi, (_, members)) in remaining.iter().enumerate() {
                let b: u64 = members
                    .iter()
                    .map(|&i| &all[i])
                    .filter(|t| t.inst.members.iter().all(|m| !taken[t.prog].contains_key(m)))
                    .map(|t| t.inst.benefit())
                    .sum();
                if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                    best = Some((gi, b));
                }
            }
            let Some((gi, _)) = best else { break };
            let (template, members) = remaining.swap_remove(gi);
            let mgid = catalog.add((*template).clone());
            for &i in members {
                let t = &all[i];
                if t.inst.members.iter().any(|m| taken[t.prog].contains_key(m)) {
                    continue;
                }
                for &m in &t.inst.members {
                    taken[t.prog].insert(m, ());
                }
                selections[t.prog].chosen.push(ChosenInstance { graph: t.inst.clone(), mgid });
            }
        }
        for s in &mut selections {
            s.catalog = catalog.clone();
        }
        (selections, catalog)
    }

    fn assert_same(a: &Selection, b: &Selection) {
        assert_eq!(a.catalog.len(), b.catalog.len(), "catalog size");
        assert_eq!(a.chosen.len(), b.chosen.len(), "chosen count");
        for (x, y) in a.chosen.iter().zip(&b.chosen) {
            assert_eq!(x.mgid, y.mgid);
            assert_eq!(x.graph.members, y.graph.members);
            assert_eq!(x.graph.freq, y.graph.freq);
        }
    }

    /// Synthetic candidate pools with heavy template sharing, overlapping
    /// members, and *deliberate benefit ties*: the incremental picker must
    /// reproduce the reference algorithm's swap-filled tie-break exactly.
    #[test]
    fn matches_reference_implementation() {
        use mg_isa::{Opcode, TmplInst, TmplOperand};
        let template = |k: i64, n: usize| MgTemplate {
            ops: (0..n)
                .map(|_| TmplInst {
                    op: Opcode::Addq,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(k),
                    disp: 0,
                })
                .collect(),
            out: Some((n - 1) as u8),
        };
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        for round in 0..40 {
            let n_templates = 1 + (rng() % 12) as usize;
            let n_insts = 1 + (rng() % 60) as usize;
            let mut cands = Vec::new();
            for _ in 0..n_insts {
                let k = (rng() % n_templates as u64) as i64;
                let size = 2 + (rng() % 3) as usize;
                let start = (rng() % 40) as usize;
                let members: Vec<usize> = (start..start + size).collect();
                // Frequencies drawn from a tiny set to force ties.
                let freq = [0, 5, 5, 10][(rng() % 4) as usize];
                cands.push(MiniGraph {
                    members,
                    anchor: start + size - 1,
                    inputs: vec![],
                    output: None,
                    template: template(k, size),
                    freq,
                    branch_target: None,
                });
            }
            for capacity in [1usize, 3, 1024] {
                let policy = Policy::default().with_capacity(capacity);
                assert_same(&select(&cands, &policy), &reference_select(&cands, &policy));
            }
            let _ = round;
        }
    }

    /// Same adversarial pools, split across several "programs": the
    /// shared-bitset / per-program-offset domain path must reproduce the
    /// reference algorithm (and the offsets must never let one program's
    /// members alias another's — the split pools deliberately reuse the
    /// same member indices in every program).
    #[test]
    fn domain_matches_reference_implementation() {
        use mg_isa::{Opcode, TmplInst, TmplOperand};
        let template = |k: i64| MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addq,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(k),
                    disp: 0
                };
                2
            ],
            out: Some(1),
        };
        let mut seed = 0x0dd0_5eed_0dd0_5eedu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _round in 0..30 {
            let n_progs = 1 + (rng() % 4) as usize;
            let mut pools: Vec<Vec<MiniGraph>> = vec![Vec::new(); n_progs];
            for _ in 0..(5 + rng() % 50) {
                let start = (rng() % 30) as usize; // same index space per program
                pools[(rng() % n_progs as u64) as usize].push(MiniGraph {
                    members: vec![start, start + 1],
                    anchor: start + 1,
                    inputs: vec![],
                    output: None,
                    template: template((rng() % 8) as i64),
                    freq: [0u64, 4, 4, 9][(rng() % 4) as usize],
                    branch_target: None,
                });
            }
            for capacity in [1usize, 4, 1024] {
                let policy = Policy::default().with_capacity(capacity);
                let (got, got_cat) = select_domain(&pools, &policy);
                let (want, want_cat) = reference_select_domain(&pools, &policy);
                assert_eq!(got_cat.len(), want_cat.len(), "shared catalog size");
                for (g, w) in got.iter().zip(&want) {
                    assert_same(g, w);
                }
            }
        }
    }

    #[test]
    fn greedy_picks_largest_benefit() {
        let p = loop_program(100);
        let (cands, total) = candidates_for(&p);
        let sel = select(&cands, &Policy::default());
        assert_eq!(sel.catalog.len(), 1, "one 3-inst template wins");
        assert_eq!(sel.chosen.len(), 1);
        assert_eq!(sel.chosen[0].graph.size(), 3);
        // Coverage: loop body (3 insts) runs 100 times; saves 2 slots each.
        assert_eq!(sel.saved_slots(), 200);
        assert!(sel.coverage(total) > 0.6);
    }

    #[test]
    fn members_never_overlap() {
        let p = loop_program(50);
        let (cands, _) = candidates_for(&p);
        let sel = select(&cands, &Policy::default());
        let mut seen = std::collections::HashSet::new();
        for c in &sel.chosen {
            for &m in &c.graph.members {
                assert!(seen.insert(m), "instruction {m} selected twice");
            }
        }
    }

    #[test]
    fn capacity_limits_templates() {
        // Two distinct hot idioms; capacity 1 keeps only the better one.
        let mut a = Asm::new();
        a.li(reg(1), 200);
        a.li(reg(9), 0);
        a.label("top");
        a.addq(reg(9), 3, reg(9)); // idiom A (higher frequency via size)
        a.srl(reg(9), 1, reg(9));
        a.xor(reg(9), 5, reg(9));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let (cands, _) = candidates_for(&p);
        let full = select(&cands, &Policy::default());
        let capped = select(&cands, &Policy::default().with_capacity(1));
        assert!(capped.catalog.len() <= 1);
        assert!(capped.saved_slots() <= full.saved_slots());
        assert!(!full.catalog.is_empty());
    }

    #[test]
    fn identical_idioms_share_one_template() {
        // The same add/shift pair appears in two places.
        let mut a = Asm::new();
        a.li(reg(1), 30);
        a.label("top");
        a.addq(reg(2), 7, reg(3));
        a.sll(reg(3), 2, reg(3));
        a.stq(reg(3), 0, reg(28)); // keep r3 dead afterwards
        a.addq(reg(2), 7, reg(4));
        a.sll(reg(4), 2, reg(4));
        a.stq(reg(4), 8, reg(28));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let (cands, _) = candidates_for(&p);
        let sel = select(&cands, &Policy::integer());
        let pair_instances: Vec<_> = sel
            .chosen
            .iter()
            .filter(|c| c.graph.size() == 2 && c.graph.template.mem_op().is_none())
            .collect();
        if pair_instances.len() >= 2 {
            assert_eq!(
                pair_instances[0].mgid, pair_instances[1].mgid,
                "identical dataflow + immediates coalesce to one MGT entry"
            );
        }
    }

    #[test]
    fn domain_selection_shares_capacity() {
        let p1 = loop_program(100);
        let p2 = loop_program(80); // identical idiom, different program
        let (c1, _) = candidates_for(&p1);
        let (c2, _) = candidates_for(&p2);
        let (sels, catalog) = select_domain(&[c1, c2], &Policy::default().with_capacity(4));
        assert!(catalog.len() <= 4);
        assert!(!sels[0].chosen.is_empty());
        assert!(!sels[1].chosen.is_empty());
        // The shared idiom maps to the same MGID in both programs.
        assert_eq!(sels[0].chosen[0].mgid, sels[1].chosen[0].mgid);
    }
}
