//! Global register liveness analysis.
//!
//! Mini-graph interior values must be *transient*: "we use static analysis
//! to identify these values" (paper §1). A register defined inside a
//! candidate only escapes (and therefore counts against the one-output
//! interface limit) if it is read by a non-member later in the block or is
//! live out of the block. This module computes classic backward
//! may-liveness over the basic-block CFG.
//!
//! Conservatism: blocks ending in indirect control (`jmp`/`jsr`/`ret`) get
//! fully-live out-sets (their targets are not statically known); `bsr`
//! flows to both its target and its fall-through; `halt` is fully dead.

use mg_isa::{OpClass, Program, Reg};
use mg_profile::Cfg;

/// A set of architectural registers as a bitmask (bit *i* = `r<i>`; the
/// zero register never appears).
pub type RegSet = u32;

/// Whether `set` contains `r`.
pub fn contains(set: RegSet, r: Reg) -> bool {
    set & (1u32 << r.index()) != 0
}

/// Per-block liveness sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

fn reg_bit(r: Reg) -> RegSet {
    if r.is_zero() {
        0
    } else {
        1u32 << r.index()
    }
}

enum Succ {
    Known(Vec<usize>),
    All,
}

fn successors(prog: &Program, cfg: &Cfg, b: usize) -> Succ {
    let block = &cfg.blocks[b];
    let last = &prog.insts[block.end - 1];
    let next_block = (b + 1 < cfg.blocks.len()).then_some(b + 1);
    let block_of = |i: usize| cfg.block_index_of(i);
    match last.op.class() {
        OpClass::CondBranch => {
            let mut s = Vec::new();
            if let Some(t) = last.static_target().and_then(block_of) {
                s.push(t);
            }
            if let Some(n) = next_block {
                s.push(n);
            }
            Succ::Known(s)
        }
        OpClass::UncondBranch => {
            let mut s = Vec::new();
            if let Some(t) = last.static_target().and_then(block_of) {
                s.push(t);
            }
            // bsr eventually returns to the fall-through.
            if last.op == mg_isa::Opcode::Bsr {
                if let Some(n) = next_block {
                    s.push(n);
                }
            }
            Succ::Known(s)
        }
        OpClass::Jump => Succ::All,
        OpClass::Halt => Succ::Known(Vec::new()),
        OpClass::Handle => {
            let mut s = Vec::new();
            if let Some(t) = last.handle_branch_target().and_then(block_of) {
                s.push(t);
            }
            if let Some(n) = next_block {
                s.push(n);
            }
            Succ::Known(s)
        }
        _ => Succ::Known(next_block.into_iter().collect()),
    }
}

/// Computes global liveness for `prog` over `cfg`.
pub fn compute_liveness(prog: &Program, cfg: &Cfg) -> Liveness {
    let nb = cfg.blocks.len();
    // Per-block gen (upward-exposed uses) and kill (defs).
    let mut gen = vec![0u32; nb];
    let mut kill = vec![0u32; nb];
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let mut defined = 0u32;
        for i in block.indices() {
            let inst = &prog.insts[i];
            for s in inst.src_regs().into_iter().flatten() {
                let bit = reg_bit(s);
                if defined & bit == 0 {
                    gen[bi] |= bit;
                }
            }
            if let Some(d) = inst.dest_reg() {
                defined |= reg_bit(d);
            }
        }
        kill[bi] = defined;
    }

    let succs: Vec<Succ> = (0..nb).map(|b| successors(prog, cfg, b)).collect();
    let mut live_in = vec![0u32; nb];
    let mut live_out = vec![0u32; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let out = match &succs[b] {
                Succ::All => !(1u32 << 31),
                Succ::Known(list) => list.iter().fold(0u32, |acc, &s| acc | live_in[s]),
            };
            let inn = gen[b] | (out & !kill[b]);
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm};
    use mg_profile::build_cfg;

    #[test]
    fn compare_temp_is_dead_after_loop_branch() {
        let mut a = Asm::new();
        a.li(reg(18), 0); // block 0
        a.li(reg(5), 10);
        a.label("top"); // block 1
        a.addl(reg(18), 1, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt(); // block 2
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let lv = compute_liveness(&p, &cfg);
        let body = cfg.block_index_of(p.label("top").unwrap()).unwrap();
        assert!(contains(lv.live_in[body], reg(18)));
        assert!(contains(lv.live_in[body], reg(5)));
        assert!(!contains(lv.live_in[body], reg(7)), "r7 is re-computed each iteration");
        assert!(contains(lv.live_out[body], reg(18)), "r18 carried around the loop");
        assert!(!contains(lv.live_out[body], reg(7)), "r7 dies at the branch");
    }

    #[test]
    fn halt_block_is_fully_dead() {
        let mut a = Asm::new();
        a.li(reg(1), 1);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let lv = compute_liveness(&p, &cfg);
        assert_eq!(lv.live_out[cfg.blocks.len() - 1], 0);
    }

    #[test]
    fn indirect_jump_is_fully_live() {
        let mut a = Asm::new();
        a.li(reg(1), 0);
        a.jmp(reg(1));
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let lv = compute_liveness(&p, &cfg);
        let last = cfg.blocks.len() - 1;
        assert!(contains(lv.live_out[last], reg(0)));
        assert!(contains(lv.live_out[last], reg(30)));
        assert!(!contains(lv.live_out[last], Reg::ZERO));
    }

    #[test]
    fn value_live_across_blocks() {
        let mut a = Asm::new();
        a.li(reg(4), 7); // block 0: defines r4
        a.beq(reg(9), "skip");
        a.nop(); // block 1
        a.label("skip");
        a.addq(reg(4), 1, reg(5)); // block 2 reads r4
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let lv = compute_liveness(&p, &cfg);
        assert!(contains(lv.live_out[0], reg(4)));
        assert!(contains(lv.live_out[1], reg(4)), "r4 flows through the nop block");
    }
}
