//! Enumeration of legal mini-graph candidates.
//!
//! As in the paper (§3.2), "we analyze the static executable and enumerate
//! all possible legal mini-graphs. Enumeration is exponential in the number
//! of instructions considered, but since mini-graphs are restricted to
//! basic blocks, the number of instructions under consideration at any time
//! is typically small." We enumerate connected subgraphs of each block's
//! dataflow graph using the ESU ("extension") algorithm, which produces
//! each connected vertex set exactly once.

use crate::dataflow::BlockDataflow;
use crate::liveness::{compute_liveness, RegSet};
use crate::minigraph::{analyze, MiniGraph};
use mg_isa::Program;
use mg_profile::{BlockProfile, Cfg};

/// Hard cap on candidate sets examined per block; guards against
/// pathologically dense blocks (never reached by the bundled workloads).
const MAX_SETS_PER_BLOCK: usize = 100_000;

/// Enumerates all legal mini-graph candidates of `prog` with at most
/// `max_size` instructions each, attaching block frequencies from `prof`.
pub fn enumerate_candidates(
    prog: &Program,
    cfg: &Cfg,
    prof: &BlockProfile,
    max_size: usize,
) -> Vec<MiniGraph> {
    let mut out = Vec::new();
    let lv = compute_liveness(prog, cfg);
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let freq = prof.block_count(block);
        if freq == 0 {
            continue; // never executed: no coverage benefit
        }
        let live_out = lv.live_out[bi];
        let df = BlockDataflow::new(prog, block);

        // Dataflow adjacency restricted to mini-graph-eligible members.
        let nodes: Vec<usize> =
            block.indices().filter(|&i| prog.insts[i].op.is_mini_graph_eligible()).collect();
        let eligible = |i: usize| prog.insts[i].op.is_mini_graph_eligible();

        let mut budget = MAX_SETS_PER_BLOCK;
        for &v in &nodes {
            let ext: Vec<usize> =
                df.neighbours(v).into_iter().filter(|&u| u > v && eligible(u)).collect();
            let mut set = vec![v];
            extend(
                prog,
                block,
                &df,
                &eligible,
                v,
                &mut set,
                ext,
                max_size,
                &mut out,
                freq,
                live_out,
                &mut budget,
            );
            if budget == 0 {
                break;
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn extend(
    prog: &Program,
    block: &mg_profile::BasicBlock,
    df: &BlockDataflow,
    eligible: &dyn Fn(usize) -> bool,
    root: usize,
    set: &mut Vec<usize>,
    ext: Vec<usize>,
    max_size: usize,
    out: &mut Vec<MiniGraph>,
    freq: u64,
    live_out: RegSet,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    if set.len() >= 2 {
        let mut sorted = set.clone();
        sorted.sort_unstable();
        if let Ok(mg) = analyze(prog, block, df, &sorted, freq, live_out) {
            out.push(mg);
        }
    }
    if set.len() == max_size {
        return;
    }
    for (k, &u) in ext.iter().enumerate() {
        // Extension set for the recursive call: the remaining candidates
        // after u, plus u's exclusive new neighbours.
        let mut next_ext: Vec<usize> = ext[k + 1..].to_vec();
        for w in df.neighbours(u) {
            if w > root && w != u && eligible(w) && !set.contains(&w) && !ext.contains(&w) {
                next_ext.push(w);
            }
        }
        set.push(u);
        extend(
            prog, block, df, eligible, root, set, next_ext, max_size, out, freq, live_out,
            budget,
        );
        set.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm, Memory};
    use mg_profile::{build_cfg, profile_program};

    fn candidates_of(prog: &Program, max_size: usize) -> Vec<MiniGraph> {
        let cfg = build_cfg(prog);
        let prof = profile_program(prog, &mut Memory::new(), None, 1_000_000).unwrap();
        enumerate_candidates(prog, &cfg, &prof, max_size)
    }

    #[test]
    fn paper_block_yields_expected_candidates() {
        // addl r18,2,r18 ; cmplt r18,r5,r7 ; bne r7 — executed in a loop.
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 6);
        a.label("top");
        a.addl(reg(18), 2, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        let p = a.finish().unwrap();
        let cands = candidates_of(&p, 4);
        // Legal: {addl,cmplt}, {cmplt,bne}, {addl,cmplt,bne}.
        // {addl, bne} is not connected. Note {addl,cmplt} leaves r7 AND r18
        // live (two outputs) => illegal, so expect exactly 2.
        let sizes: Vec<usize> = cands.iter().map(|c| c.size()).collect();
        assert!(cands.iter().any(|c| c.size() == 3), "full chain found: {sizes:?}");
        assert!(
            cands.iter().all(|c| c.members != vec![2, 3]),
            "two-output pair must be rejected"
        );
    }

    #[test]
    fn max_size_respected() {
        let mut a = Asm::new();
        a.li(reg(1), 1);
        a.label("top");
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.subq(reg(1), 8, reg(2));
        a.blt(reg(2), "top");
        a.halt();
        let p = a.finish().unwrap();
        for max in 2..=5 {
            let cands = candidates_of(&p, max);
            assert!(cands.iter().all(|c| c.size() <= max));
            assert!(!cands.is_empty());
        }
    }

    #[test]
    fn unexecuted_blocks_skipped() {
        let mut a = Asm::new();
        a.br("end");
        a.addq(reg(1), 1, reg(2)); // dead code
        a.addq(reg(2), 1, reg(2));
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        let cands = candidates_of(&p, 4);
        assert!(cands.is_empty());
    }

    #[test]
    fn no_duplicate_member_sets() {
        let mut a = Asm::new();
        a.li(reg(1), 3);
        a.li(reg(4), 100);
        a.label("top");
        a.addq(reg(1), reg(4), reg(2));
        a.addq(reg(2), 1, reg(2));
        a.xor(reg(2), reg(4), reg(2));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let cands = candidates_of(&p, 4);
        let mut sets: Vec<Vec<usize>> = cands.iter().map(|c| c.members.clone()).collect();
        let n = sets.len();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), n, "ESU enumeration must not duplicate sets");
    }
}
