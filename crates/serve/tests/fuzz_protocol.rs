//! Deterministic decoder fuzzing, as promised by `docs/PROTOCOL.md`:
//! every `Request` / `Response` variant is encoded, then every
//! truncation and every single-byte flip at every offset is fed back
//! through the decoder. Corrupt input must come back as a `WireError`
//! (or an I/O error at the frame layer) — never a panic, never an
//! unbounded allocation.
//!
//! A byte flip can land inside free-form content (a string byte, a
//! counter) and yield a *different valid* message; the invariant there
//! is canonicality: whatever decodes must re-encode to the exact bytes
//! it was decoded from.

use mg_isa::wire::{from_bytes, read_frame, to_bytes, write_frame, Wire, WireError};
use mg_serve::{Request, Response, RunRequest};

/// One exemplar per variant, with every optional field populated in at
/// least one exemplar so all encode paths are swept.
fn requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Run(RunRequest::new("fig7")),
        Request::Run(RunRequest {
            quick: Some(true),
            threads: Some(4),
            best: true,
            no_cache: true,
            no_fuse: true,
            input: "tiny".into(),
            format: "markdown".into(),
            ..RunRequest::new("fig8-bandwidth")
        }),
        Request::Stats,
        Request::Shutdown { drain: true },
        Request::Shutdown { drain: false },
    ]
}

fn responses() -> Vec<Response> {
    vec![
        Response::Pong { protocol: 3 },
        Response::Queued { position: 7 },
        Response::Cell {
            workload: "gzip".into(),
            label: "mg".into(),
            cycles: 123_456,
            ops: 654_321,
        },
        Response::Done { status: -1, payload: "report body\n".into() },
        Response::Busy { depth: 16, capacity: 16 },
        Response::Error { message: "worker panicked: boom".into() },
        Response::Expired { phase: "queue".into(), waited_ms: 51, budget_ms: 50 },
        Response::Stats { pairs: vec![("served".into(), 2), ("expired".into(), 1)] },
    ]
}

/// Every strict prefix must fail to decode (the codec is
/// prefix-deterministic and `from_bytes` demands full consumption),
/// and no corruption may panic.
fn sweep<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = to_bytes(value);
    assert_eq!(&from_bytes::<T>(&bytes).expect("round trip"), value);

    for i in 0..bytes.len() {
        match from_bytes::<T>(&bytes[..i]) {
            Err(err) => assert!(
                matches!(
                    err,
                    WireError::Truncated | WireError::BadTag(_) | WireError::BadValue
                ),
                "prefix {i}/{} of {value:?}: unexpected {err:?}",
                bytes.len()
            ),
            // The only prefix allowed to decode is a designed alias
            // (the bare-tag v2 `Shutdown`): its canonical re-encoding
            // must extend the prefix, i.e. the prefix is a legal
            // abbreviation of some message, not a misparse.
            Ok(decoded) => assert!(
                to_bytes(&decoded).starts_with(&bytes[..i]),
                "prefix {i}/{} of {value:?} misparsed as {decoded:?}",
                bytes.len()
            ),
        }
    }

    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut mutated = bytes.clone();
            mutated[i] ^= flip;
            match from_bytes::<T>(&mutated) {
                Err(_) => {}
                Ok(decoded) => {
                    // One designed alias breaks strict canonicality:
                    // the bare-tag v2 `Shutdown` frame decodes as
                    // `drain: true` and re-encodes with the explicit
                    // flag byte appended. Accept an alias only when
                    // the input is a prefix of the canonical bytes and
                    // the canonical bytes decode back to the same
                    // value.
                    let reencoded = to_bytes(&decoded);
                    let canonical_alias = reencoded.starts_with(&mutated)
                        && from_bytes::<T>(&reencoded).as_ref() == Ok(&decoded);
                    assert!(
                        reencoded == mutated || canonical_alias,
                        "flip {flip:#x} at {i} of {value:?} decoded non-canonically"
                    );
                }
            }
        }
    }
}

#[test]
fn every_request_survives_truncation_and_byte_flips() {
    for req in requests() {
        sweep(&req);
    }
}

#[test]
fn every_response_survives_truncation_and_byte_flips() {
    for resp in responses() {
        sweep(&resp);
    }
}

/// The frame layer on top: torn streams and damaged headers must come
/// back as I/O errors from `read_frame`, never a panic.
#[test]
fn frame_layer_rejects_truncations_and_header_damage() {
    let mut framed = Vec::new();
    write_frame(&mut framed, &Request::Run(RunRequest::new("fig7"))).unwrap();

    // Round trip.
    let back: Request = read_frame(&mut framed.as_slice()).unwrap();
    assert_eq!(back, Request::Run(RunRequest::new("fig7")));

    // Every torn stream (any strict prefix) is an error.
    for i in 0..framed.len() {
        assert!(
            read_frame::<Request>(&mut &framed[..i]).is_err(),
            "torn frame at {i} bytes must error"
        );
    }

    // Every single-byte flip in the 8-byte header (magic + length) is
    // an error: the magic no longer matches, or the length no longer
    // covers the payload.
    for i in 0..8 {
        let mut mutated = framed.clone();
        mutated[i] ^= 0xff;
        assert!(
            read_frame::<Request>(&mut mutated.as_slice()).is_err(),
            "header damage at byte {i} must error"
        );
    }

    // A length prefix past MAX_FRAME_LEN is rejected up front rather
    // than allocated: decoding stays bounded on hostile input.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(mg_isa::wire::FRAME_MAGIC);
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&[0u8; 64]);
    assert!(read_frame::<Request>(&mut hostile.as_slice()).is_err());
}
