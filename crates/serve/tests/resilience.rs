//! Integration tests of the failure model (`docs/DESIGN.md` §9): worker
//! panic containment, queue/run/drain deadlines with `Expired`, the v2
//! downgrade dialect, slow-client eviction, graceful vs immediate
//! shutdown, and the client's retry/backoff/resume machinery.

use mg_fault::{points, FaultPlan};
use mg_serve::{
    Client, EmitFn, Request, Response, RetryPolicy, RunOutcome, RunRequest, Server,
    ServerConfig,
};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A runner that blocks on a gate for `fig6`, panics for `fig5`, and
/// completes immediately for anything else.
fn gated_panicky_server(cfg: ServerConfig) -> (Server, Arc<AtomicU64>, mpsc::Sender<()>) {
    let executions = Arc::new(AtomicU64::new(0));
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let gate = Arc::new(std::sync::Mutex::new(release_rx));
    let runner = {
        let executions = Arc::clone(&executions);
        Arc::new(move |req: &RunRequest, emit: EmitFn| {
            executions.fetch_add(1, Ordering::SeqCst);
            emit(Response::Cell {
                workload: "w0".into(),
                label: "baseline".into(),
                cycles: 10,
                ops: 20,
            });
            match req.experiment.as_str() {
                "fig6" => {
                    gate.lock().unwrap().recv().map_err(|e| e.to_string())?;
                }
                "fig5" => panic!("boom in builder"),
                _ => {}
            }
            Ok(RunOutcome { status: 0, payload: format!("payload for {}\n", req.experiment) })
        })
    };
    let server = Server::bind(
        "127.0.0.1:0",
        vec!["fig6".into(), "fig5".into(), "fig8".into()],
        runner,
        cfg,
    )
    .expect("bind");
    (server, executions, release_tx)
}

fn collect(client: &Client, req: &Request) -> (Vec<Response>, Response) {
    let mut events = Vec::new();
    let terminal = client.request(req, |e| events.push(e.clone())).expect("request");
    (events, terminal)
}

fn stat(client: &Client, name: &str) -> u64 {
    let Response::Stats { pairs } = client.request(&Request::Stats, |_| {}).expect("stats")
    else {
        panic!("expected stats");
    };
    pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_else(|| {
        panic!("counter {name:?} missing from {pairs:?}");
    })
}

/// Spins until `stat(name) == want` (bounded), so scheduling-dependent
/// assertions are deterministic.
fn await_stat(client: &Client, name: &str, want: u64) {
    for _ in 0..500 {
        if stat(client, name) == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("counter {name:?} never reached {want}");
}

#[test]
fn worker_panics_are_contained_and_replayed_to_every_joiner() {
    let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
    let (server, _executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    // Occupy the single worker with the gated fig6, then pile two fig5
    // clients onto one queued batch — both must see the panic Error.
    let fig6 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig6"))))
    };
    await_stat(&client, "in_flight", 1);
    let joiners: Vec<_> = (0..2)
        .map(|_| {
            let client = client.clone();
            std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig5"))))
        })
        .collect();
    await_stat(&client, "batched", 1);
    release.send(()).unwrap(); // free the worker; it takes fig5 and panics

    let streams: Vec<_> = joiners.into_iter().map(|j| j.join().unwrap()).collect();
    for (events, terminal) in &streams {
        assert!(
            matches!(terminal, Response::Error { message }
                if message.contains("worker panicked") && message.contains("boom in builder")),
            "got {terminal:?}"
        );
        assert_eq!(events, &streams[0].0, "joiners replay the identical stream");
    }
    assert_eq!(stat(&client, "worker_panics"), 1);

    // The worker thread survived the panic and serves the next request.
    let (_, next) = collect(&client, &Request::Run(RunRequest::new("fig8")));
    assert_eq!(next, Response::Done { status: 0, payload: "payload for fig8\n".into() });

    fig6.join().unwrap();
    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[test]
fn queued_requests_expire_under_the_queue_deadline() {
    let cfg = ServerConfig {
        workers: 1,
        queue_deadline: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let (server, executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let fig6 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig6"))))
    };
    await_stat(&client, "in_flight", 1);
    // fig8 waits behind the occupied worker past its queue budget.
    let (events, terminal) = collect(&client, &Request::Run(RunRequest::new("fig8")));
    assert!(matches!(events[0], Response::Queued { .. }));
    match &terminal {
        Response::Expired { phase, waited_ms, budget_ms } => {
            assert_eq!(phase, "queue");
            assert_eq!(*budget_ms, 50);
            assert!(*waited_ms >= 50, "waited {waited_ms}ms");
        }
        other => panic!("expected Expired, got {other:?}"),
    }
    assert_eq!(stat(&client, "expired"), 1);
    assert_eq!(executions.load(Ordering::SeqCst), 1, "the expired batch never ran");

    release.send(()).unwrap();
    fig6.join().unwrap();
    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[test]
fn running_requests_expire_under_the_run_deadline_without_killing_the_worker() {
    let cfg = ServerConfig {
        workers: 1,
        run_deadline: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let (server, _executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let (_events, terminal) = collect(&client, &Request::Run(RunRequest::new("fig6")));
    match &terminal {
        Response::Expired { phase, budget_ms, .. } => {
            assert_eq!(phase, "run");
            assert_eq!(*budget_ms, 50);
        }
        other => panic!("expected Expired, got {other:?}"),
    }
    assert_eq!(stat(&client, "expired"), 1);

    // The runner is still blocked on its gate (threads are never
    // killed); releasing it lets the worker finish and take new work.
    release.send(()).unwrap();
    let (_, next) = collect(&client, &Request::Run(RunRequest::new("fig8")));
    assert_eq!(next, Response::Done { status: 0, payload: "payload for fig8\n".into() });

    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

/// A v2 client: same wire codec, but the server must downgrade
/// `Expired` to an `Error` frame and accept the bare-tag `Shutdown`.
#[test]
fn v2_clients_negotiate_down_and_get_the_downgraded_dialect() {
    let cfg = ServerConfig {
        workers: 1,
        run_deadline: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let (server, _executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();

    // Hand-rolled v2 connection: magic + version 2.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(mg_serve::CONNECT_MAGIC).unwrap();
    stream.write_all(&2u32.to_le_bytes()).unwrap();
    mg_isa::wire::write_frame(&mut stream, &Request::Run(RunRequest::new("fig6"))).unwrap();
    let terminal = loop {
        let resp: Response = mg_isa::wire::read_frame(&mut stream).unwrap();
        if resp.is_terminal() {
            break resp;
        }
    };
    assert!(
        matches!(&terminal, Response::Error { message }
            if message.starts_with("expired: run deadline exceeded")),
        "v2 gets the downgraded Error, got {terminal:?}"
    );
    release.send(()).unwrap();

    // Bare-tag v2 Shutdown frame: magic + u32 len + the tag byte alone.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(mg_serve::CONNECT_MAGIC).unwrap();
    stream.write_all(&2u32.to_le_bytes()).unwrap();
    stream.write_all(mg_isa::wire::FRAME_MAGIC).unwrap();
    stream.write_all(&1u32.to_le_bytes()).unwrap();
    stream.write_all(&[3u8]).unwrap();
    let ack: Response = mg_isa::wire::read_frame(&mut stream).unwrap();
    assert!(matches!(ack, Response::Done { .. }), "got {ack:?}");
    handle.join().unwrap().unwrap();
}

#[test]
fn graceful_drain_finishes_queued_work_and_busies_new_work() {
    let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
    let (server, _executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let fig6 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig6"))))
    };
    await_stat(&client, "in_flight", 1);
    let fig8 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig8"))))
    };
    await_stat(&client, "queue_depth", 1);

    let (_, ack) = collect(&client, &Request::Shutdown { drain: true });
    assert!(matches!(ack, Response::Done { .. }));
    // Draining: new work is refused with Busy (retry elsewhere), queued
    // work still completes.
    let (_, refused) = collect(&client, &Request::Run(RunRequest::new("fig5")));
    assert!(matches!(refused, Response::Busy { .. }), "got {refused:?}");

    release.send(()).unwrap(); // fig6 completes
    let (_, done6) = fig6.join().unwrap();
    assert_eq!(done6, Response::Done { status: 0, payload: "payload for fig6\n".into() });
    let (_, done8) = fig8.join().unwrap();
    assert_eq!(done8, Response::Done { status: 0, payload: "payload for fig8\n".into() });
    handle.join().unwrap().unwrap();
}

#[test]
fn immediate_shutdown_abandons_queued_work_with_an_error() {
    let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
    let (server, _executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let fig6 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig6"))))
    };
    await_stat(&client, "in_flight", 1);
    let fig8 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig8"))))
    };
    await_stat(&client, "queue_depth", 1);

    let (_, ack) = collect(&client, &Request::Shutdown { drain: false });
    assert!(matches!(ack, Response::Done { .. }));
    // Queued fig8 is answered immediately; running fig6 still completes.
    let (_, abandoned) = fig8.join().unwrap();
    assert!(
        matches!(&abandoned, Response::Error { message }
            if message.contains("shutting down")),
        "got {abandoned:?}"
    );
    release.send(()).unwrap();
    let (_, done6) = fig6.join().unwrap();
    assert_eq!(done6, Response::Done { status: 0, payload: "payload for fig6\n".into() });
    handle.join().unwrap().unwrap();
}

#[test]
fn busy_replies_are_retried_under_the_retry_policy() {
    let cfg = ServerConfig { workers: 1, max_queue: 1, ..ServerConfig::default() };
    let (server, _executions, release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    // Occupy the worker and the single queue slot.
    let fig6 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig6"))))
    };
    await_stat(&client, "in_flight", 1);
    let fig8 = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig8"))))
    };
    await_stat(&client, "queue_depth", 1);

    // A distinct request bounces with Busy; the retrying client keeps
    // at it until the gates open and then succeeds.
    let policy =
        RetryPolicy { attempts: 100, backoff_ms: 10, max_backoff_ms: 50, jitter_seed: 7 };
    let retried = {
        let client = client.clone();
        std::thread::spawn(move || {
            client.request_with_retry(&Request::Run(RunRequest::new("fig5")), &policy, |_| {})
        })
    };
    // Let it bounce at least once before opening the gates.
    for _ in 0..500 {
        if stat(&client, "busy_rejections") >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(stat(&client, "busy_rejections") >= 1);
    release.send(()).unwrap(); // fig6
                               // fig5 panics by design; use it to also prove terminal Errors are
                               // NOT retried: the retrying client must surface the panic Error.
    let outcome = retried.join().unwrap().expect("transport ok");
    assert!(
        matches!(&outcome, Response::Error { message } if message.contains("worker panicked")),
        "terminal Error is returned, not retried: {outcome:?}"
    );

    fig6.join().unwrap();
    fig8.join().unwrap();
    collect(&client, &Request::Shutdown { drain: false });
    handle.join().unwrap().unwrap();
}

#[test]
fn torn_writes_are_retried_and_resumed_without_duplicate_frames() {
    // The first server write tears mid-frame and the connection dies;
    // the retried request replays and the client dedups by position.
    let plan = Arc::new(FaultPlan::new(11).with_burst(points::SERVE_WRITE_TORN, 1000, 1));
    let cfg = ServerConfig { workers: 1, faults: Some(plan), ..ServerConfig::default() };
    let (server, executions, _release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let policy =
        RetryPolicy { attempts: 5, backoff_ms: 10, max_backoff_ms: 50, jitter_seed: 3 };
    let mut events = Vec::new();
    let terminal = client
        .request_with_retry(&Request::Run(RunRequest::new("fig8")), &policy, |e| {
            events.push(e.clone())
        })
        .expect("retry succeeds");
    assert_eq!(terminal, Response::Done { status: 0, payload: "payload for fig8\n".into() });
    // Exactly one Queued and one Cell despite the replayed stream.
    assert_eq!(
        events.iter().filter(|e| matches!(e, Response::Queued { .. })).count(),
        1,
        "dedup by position: {events:?}"
    );
    assert_eq!(events.iter().filter(|e| matches!(e, Response::Cell { .. })).count(), 1);
    assert!(executions.load(Ordering::SeqCst) >= 1);

    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[test]
fn stalled_clients_are_evicted_without_stalling_the_batch() {
    let plan = Arc::new(FaultPlan::new(13).with_burst(points::SERVE_WRITE_STALL, 1000, 1));
    let cfg = ServerConfig { workers: 1, faults: Some(plan), ..ServerConfig::default() };
    let (server, _executions, _release) = gated_panicky_server(cfg);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    // The injected WouldBlock on the first write evicts the client (it
    // counts as "too slow"); the retried request succeeds cleanly.
    let policy =
        RetryPolicy { attempts: 5, backoff_ms: 10, max_backoff_ms: 50, jitter_seed: 5 };
    let terminal = client
        .request_with_retry(&Request::Run(RunRequest::new("fig8")), &policy, |_| {})
        .expect("retry succeeds");
    assert_eq!(terminal, Response::Done { status: 0, payload: "payload for fig8\n".into() });
    assert_eq!(stat(&client, "evicted_slow_clients"), 1);

    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[test]
fn retry_backoff_is_deterministic_capped_and_jittered() {
    let policy =
        RetryPolicy { attempts: 5, backoff_ms: 100, max_backoff_ms: 400, jitter_seed: 42 };
    let delays: Vec<_> = (0..6).map(|i| policy.delay(i)).collect();
    let replay: Vec<_> = (0..6).map(|i| policy.delay(i)).collect();
    assert_eq!(delays, replay, "pure function of (seed, attempt)");
    for (i, d) in delays.iter().enumerate() {
        let uncapped = 100u64 << i.min(20);
        let capped = uncapped.min(400);
        let ms = d.as_millis() as u64;
        assert!(
            ms >= capped / 2 && ms < capped,
            "attempt {i}: {ms}ms outside [{}, {})",
            capped / 2,
            capped
        );
    }
    let other = RetryPolicy { jitter_seed: 43, ..policy };
    assert_ne!(
        (0..6).map(|i| other.delay(i)).collect::<Vec<_>>(),
        delays,
        "different seed, different jitter"
    );
}
