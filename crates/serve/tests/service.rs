//! Integration tests of the server's scheduling contract: batching with
//! frame replay, bounded-queue backpressure, validation, version
//! mismatch, and the Unix-socket transport.

use mg_serve::{
    Client, EmitFn, Request, Response, RunOutcome, RunRequest, Server, ServerConfig,
    PROTOCOL_VERSION,
};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// A runner that counts executions, emits a couple of cell frames, and
/// blocks until released — so tests can pile requests onto an in-flight
/// batch deterministically.
struct GatedRunner {
    executions: Arc<AtomicU64>,
    release: mpsc::Receiver<()>,
}

fn gated_server(
    workers: usize,
    max_queue: usize,
) -> (Server, Arc<AtomicU64>, mpsc::Sender<()>) {
    let executions = Arc::new(AtomicU64::new(0));
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let gate = Arc::new(std::sync::Mutex::new(GatedRunner {
        executions: Arc::clone(&executions),
        release: release_rx,
    }));
    let runner = Arc::new(move |req: &RunRequest, emit: EmitFn| {
        let gate = gate.lock().unwrap();
        gate.executions.fetch_add(1, Ordering::SeqCst);
        emit(Response::Cell {
            workload: "w0".into(),
            label: "baseline".into(),
            cycles: 10,
            ops: 20,
        });
        emit(Response::Cell { workload: "w1".into(), label: "mg".into(), cycles: 30, ops: 40 });
        gate.release.recv().map_err(|e| e.to_string())?;
        Ok(RunOutcome { status: 0, payload: format!("payload for {}\n", req.experiment) })
    });
    let server = Server::bind(
        "127.0.0.1:0",
        vec!["fig6".into(), "fig5".into()],
        runner,
        ServerConfig { workers, max_queue, ..ServerConfig::default() },
    )
    .expect("bind");
    (server, executions, release_tx)
}

/// Collects a full response stream from one client request.
fn collect(client: &Client, req: &Request) -> (Vec<Response>, Response) {
    let mut events = Vec::new();
    let terminal = client.request(req, |e| events.push(e.clone())).expect("request");
    (events, terminal)
}

#[test]
fn duplicate_requests_coalesce_onto_one_execution_with_identical_streams() {
    let (server, executions, release) = gated_server(1, 16);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);
    let run = Request::Run(RunRequest::new("fig6"));

    // Three concurrent identical requests; the runner is gated, so the
    // second and third attach while the first is queued or running. The
    // main thread releases the gate only once both duplicates have
    // attached, making the coalescing deterministic.
    let streams: Vec<(Vec<Response>, Response)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let client = client.clone();
                let run = run.clone();
                scope.spawn(move || collect(&client, &run))
            })
            .collect();
        loop {
            let (_, stats) = collect(&client, &Request::Stats);
            let Response::Stats { pairs } = stats else { panic!("expected stats") };
            if pairs.iter().find(|(n, _)| n == "batched").unwrap().1 == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        release.send(()).unwrap();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    assert_eq!(executions.load(Ordering::SeqCst), 1, "one execution served all three");
    for (events, terminal) in &streams {
        assert_eq!(events, &streams[0].0, "replay makes every stream identical");
        assert_eq!(terminal, &streams[0].1);
        assert_eq!(
            terminal,
            &Response::Done { status: 0, payload: "payload for fig6\n".into() }
        );
        assert!(matches!(events[0], Response::Queued { .. }));
        assert_eq!(events.iter().filter(|e| matches!(e, Response::Cell { .. })).count(), 2);
    }

    // A later (non-concurrent) identical request is a fresh execution.
    release.send(()).unwrap();
    let (_, terminal) = collect(&client, &run);
    assert!(matches!(terminal, Response::Done { .. }));
    assert_eq!(executions.load(Ordering::SeqCst), 2);

    let stats = collect(&client, &Request::Stats).1;
    let Response::Stats { pairs } = stats else { panic!("expected stats") };
    let get = |name: &str| pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
    assert_eq!(get("batched"), 2, "two requests attached to the first batch");
    assert_eq!(get("served"), 4);

    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[test]
fn full_queue_answers_busy_with_depth_and_capacity() {
    // One worker, queue bound 1. Occupy the worker with fig6, fill the
    // queue with fig5; a third distinct request must bounce.
    let (server, _executions, release) = gated_server(1, 1);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let running = {
        let client = client.clone();
        std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig6"))))
    };
    // Wait until fig6 is actually running (its queue slot freed).
    let queued = loop {
        let (_, stats) = collect(&client, &Request::Stats);
        let Response::Stats { pairs } = stats else { panic!() };
        let depth = pairs.iter().find(|(n, _)| n == "queue_depth").unwrap().1;
        let in_flight = pairs.iter().find(|(n, _)| n == "in_flight").unwrap().1;
        if depth == 0 && in_flight == 1 {
            // fig6 occupies the worker; now fill the queue with fig5.
            let client = client.clone();
            break std::thread::spawn(move || {
                collect(&client, &Request::Run(RunRequest::new("fig5")))
            });
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    // Wait for fig5 to occupy the queue slot.
    loop {
        let (_, stats) = collect(&client, &Request::Stats);
        let Response::Stats { pairs } = stats else { panic!() };
        if pairs.iter().find(|(n, _)| n == "queue_depth").unwrap().1 == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // A distinct request (different format) cannot attach to either
    // in-flight batch and must be rejected.
    let distinct =
        Request::Run(RunRequest { format: "text".into(), ..RunRequest::new("fig5") });
    let (events, terminal) = collect(&client, &distinct);
    assert!(events.is_empty());
    assert_eq!(terminal, Response::Busy { depth: 1, capacity: 1 });

    // But a *duplicate* of the queued request still attaches (batching
    // beats backpressure). Release the gate only after the attach is
    // visible in the counters.
    let (_, attached) = {
        let dup = {
            let client = client.clone();
            std::thread::spawn(move || collect(&client, &Request::Run(RunRequest::new("fig5"))))
        };
        loop {
            let (_, stats) = collect(&client, &Request::Stats);
            let Response::Stats { pairs } = stats else { panic!() };
            if pairs.iter().find(|(n, _)| n == "batched").unwrap().1 >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        release.send(()).unwrap(); // finish fig6
        release.send(()).unwrap(); // finish fig5
        dup.join().unwrap()
    };
    assert_eq!(attached, Response::Done { status: 0, payload: "payload for fig5\n".into() });

    running.join().unwrap();
    queued.join().unwrap();
    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[test]
fn unknown_experiments_and_stale_versions_are_rejected() {
    let (server, executions, _release) = gated_server(1, 4);
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);

    let (events, terminal) = collect(&client, &Request::Run(RunRequest::new("fig99")));
    assert!(events.is_empty());
    assert!(
        matches!(&terminal, Response::Error { message } if message.contains("fig99")),
        "got {terminal:?}"
    );
    assert_eq!(executions.load(Ordering::SeqCst), 0);

    // A hand-rolled connection with a wrong version word.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(mg_serve::CONNECT_MAGIC).unwrap();
    stream.write_all(&(PROTOCOL_VERSION + 1).to_le_bytes()).unwrap();
    let resp: Response = mg_isa::wire::read_frame(&mut stream).unwrap();
    assert!(
        matches!(&resp, Response::Error { message } if message.contains("version mismatch")),
        "got {resp:?}"
    );

    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_round_trips() {
    let path = std::env::temp_dir().join(format!("mg-serve-test-{}.sock", std::process::id()));
    let runner = Arc::new(|req: &RunRequest, _emit: EmitFn| {
        Ok(RunOutcome { status: 7, payload: format!("unix {}\n", req.experiment) })
    });
    let server =
        Server::bind_unix(&path, vec!["fig6".into()], runner, ServerConfig::default()).unwrap();
    let handle = server.spawn();
    let client = Client::unix(&path);
    assert_eq!(client.ping().unwrap(), PROTOCOL_VERSION);
    let (_, terminal) = collect(&client, &Request::Run(RunRequest::new("fig6")));
    assert_eq!(terminal, Response::Done { status: 7, payload: "unix fig6\n".into() });
    collect(&client, &Request::Shutdown { drain: true });
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}
