//! The `mg serve` experiment service: a dependency-free TCP /
//! Unix-socket daemon that schedules experiment requests from many
//! concurrent clients onto a shared worker pool.
//!
//! The one-shot `mg run` flow pays preparation (profiling, candidate
//! enumeration, selection, trace recording) and thread-pool startup per
//! process. This crate turns the harness into a long-running service:
//!
//! * **[`Server`]** — accepts framed requests ([`protocol`]), validates
//!   them against an injected experiment registry, batches requests that
//!   are field-for-field equal onto one execution, applies backpressure
//!   through a bounded queue (documented [`Response::Busy`] reply), and
//!   streams per-cell progress frames as the experiment runs.
//! * **[`Client`]** — the thin wire client `mg client` and the CI smoke
//!   jobs drive; one connection per request.
//! * **[`protocol`]** — the frame payloads and the connection handshake;
//!   the normative spec is `docs/PROTOCOL.md`, embedded here as
//!   [`spec`] so its conformance example runs under `cargo test --doc`.
//!
//! The crate deliberately knows nothing about experiments: the
//! experiment side is injected as a [`Runner`] closure. `mg serve` (in
//! `mg-bench`) wires in the real registry plus a shared
//! `mg_harness::PrepPool`, so every client reuses one warm prep per
//! (workload, input, budget) and served results inherit the harness's
//! cold/warm bit-identity guarantee.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod protocol;
pub mod server;

#[doc = include_str!("../../../docs/PROTOCOL.md")]
pub mod spec {}

pub use client::{Client, RetryPolicy};
pub use protocol::{
    read_hello, send_hello, Request, Response, RunRequest, CONNECT_MAGIC, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
pub use server::{
    EmitFn, RunOutcome, Runner, Server, ServerConfig, ShardHandle, StatsExtra, StealSource,
    StolenBatch,
};
