//! The `mg serve` wire protocol: connection handshake plus the
//! [`Request`] and [`Response`] frame payloads.
//!
//! The normative specification lives in `docs/PROTOCOL.md` (embedded as
//! the [`crate::spec`] module so its examples run as doc tests). In
//! short: a connection opens with a fixed magic and the client's
//! [`PROTOCOL_VERSION`], carries exactly one request frame, and is
//! answered by a stream of response frames ending in a *terminal* one
//! ([`Response::is_terminal`]). Frames themselves are the generic
//! length-delimited frames of [`mg_isa::wire::write_frame`]; this module
//! only defines their payloads.
//!
//! # Versioning
//!
//! [`PROTOCOL_VERSION`] must be bumped whenever the frame payload layout
//! changes **or** whenever `mg_harness::CACHE_SCHEMA_VERSION` is bumped:
//! served payloads are produced from cached preparation artifacts, so a
//! schema bump changes what a byte-identical request may return and old
//! clients must not silently mix results across it. The pairing is
//! asserted by `crates/bench/tests/serve.rs`.

use mg_isa::wire::{Reader, Wire, WireError, Writer};

/// Version sent in the connection handshake; see the module docs for the
/// bump rules (frame layout changes and cache schema bumps).
pub const PROTOCOL_VERSION: u32 = 2;

/// Magic bytes every connection opens with, before the version word.
pub const CONNECT_MAGIC: &[u8; 4] = b"MGSV";

/// Writes the connection handshake (magic + [`PROTOCOL_VERSION`]).
///
/// # Errors
///
/// Any I/O error from the stream.
pub fn send_hello(out: &mut impl std::io::Write) -> std::io::Result<()> {
    out.write_all(CONNECT_MAGIC)?;
    out.write_all(&PROTOCOL_VERSION.to_le_bytes())?;
    out.flush()
}

/// Reads a connection handshake and returns the peer's protocol version
/// (the caller decides whether it is acceptable).
///
/// # Errors
///
/// [`std::io::ErrorKind::InvalidData`] on bad magic, plus any stream I/O
/// error.
pub fn read_hello(input: &mut impl std::io::Read) -> std::io::Result<u32> {
    let mut head = [0u8; 8];
    input.read_exact(&mut head)?;
    if &head[..4] != CONNECT_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad connection magic {:02x?}", &head[..4]),
        ));
    }
    Ok(u32::from_le_bytes(head[4..].try_into().expect("4 bytes")))
}

/// An experiment-run request: the serve-side equivalent of the `mg run`
/// argument set. Requests that compare equal are **batched** by the
/// server: they coalesce onto one execution and every client receives the
/// same frame stream.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunRequest {
    /// Registry name of the experiment (validated against the server's
    /// experiment list before queueing).
    pub experiment: String,
    /// Workload input data set: `"reference"`, `"alternative"`, or
    /// `"tiny"`.
    pub input: String,
    /// `--quick` / `--full` override; `None` leaves the server's default.
    pub quick: Option<bool>,
    /// Worker-thread override for the experiment's engine.
    pub threads: Option<u64>,
    /// `--best` (fig7 only).
    pub best: bool,
    /// Bypass the persistent artifact cache for this run.
    pub no_cache: bool,
    /// Run sweep cells one configuration at a time instead of fused
    /// (results are bit-identical either way).
    pub no_fuse: bool,
    /// Output format of the final payload (`text`, `json`, `csv`,
    /// `markdown`).
    pub format: String,
}

impl RunRequest {
    /// A request for `experiment` with every option at its default
    /// (reference input, server-side quick default, JSON payload).
    pub fn new(experiment: impl Into<String>) -> RunRequest {
        RunRequest {
            experiment: experiment.into(),
            input: "reference".into(),
            quick: None,
            threads: None,
            best: false,
            no_cache: false,
            no_fuse: false,
            format: "json".into(),
        }
    }
}

/// One client→server frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered by [`Response::Pong`].
    Ping,
    /// Run an experiment; answered by a stream of [`Response::Queued`] /
    /// [`Response::Cell`] frames ending in [`Response::Done`] (or
    /// [`Response::Busy`] / [`Response::Error`]).
    Run(RunRequest),
    /// Service counters; answered by [`Response::Stats`].
    Stats,
    /// Drain the queue and stop the server; answered by
    /// [`Response::Done`] once accepted.
    Shutdown,
}

/// One server→client frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`], carrying the server's protocol
    /// version.
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// The run was accepted and enqueued at this queue position
    /// (informational; `0` means it is next).
    Queued {
        /// Queue position at accept time.
        position: u64,
    },
    /// One matrix cell of the running experiment completed (streamed in
    /// completion order while the run is in flight).
    Cell {
        /// Workload name of the cell.
        workload: String,
        /// Run-spec label of the cell.
        label: String,
        /// Simulated cycles.
        cycles: u64,
        /// Committed fetched operations.
        ops: u64,
    },
    /// Terminal success: the rendered report payload, byte-identical to
    /// the same `mg run --format <fmt>` invocation's stdout.
    Done {
        /// Process-style exit status of the experiment (non-zero for
        /// e.g. a perf regression gate).
        status: i64,
        /// The rendered report.
        payload: String,
    },
    /// Terminal backpressure reply: the bounded queue is full; retry
    /// later.
    Busy {
        /// Requests currently queued.
        depth: u64,
        /// The queue bound.
        capacity: u64,
    },
    /// Terminal failure (validation, version mismatch, or execution
    /// error).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Reply to [`Request::Stats`]: named counters, in stable order.
    Stats {
        /// `(name, value)` counter pairs.
        pairs: Vec<(String, u64)>,
    },
}

impl Response {
    /// Whether this frame ends the response stream (the client should
    /// stop reading after it).
    pub fn is_terminal(&self) -> bool {
        match self {
            Response::Pong { .. }
            | Response::Done { .. }
            | Response::Busy { .. }
            | Response::Error { .. }
            | Response::Stats { .. } => true,
            Response::Queued { .. } | Response::Cell { .. } => false,
        }
    }
}

impl Wire for RunRequest {
    fn put(&self, w: &mut Writer) {
        w.str(&self.experiment);
        w.str(&self.input);
        self.quick.put(w);
        self.threads.put(w);
        self.best.put(w);
        self.no_cache.put(w);
        self.no_fuse.put(w);
        w.str(&self.format);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RunRequest {
            experiment: r.str()?,
            input: r.str()?,
            quick: <Option<bool> as Wire>::take(r)?,
            threads: <Option<u64> as Wire>::take(r)?,
            best: bool::take(r)?,
            no_cache: bool::take(r)?,
            no_fuse: bool::take(r)?,
            format: r.str()?,
        })
    }
}

impl Wire for Request {
    fn put(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.u8(0),
            Request::Run(req) => {
                w.u8(1);
                req.put(w);
            }
            Request::Stats => w.u8(2),
            Request::Shutdown => w.u8(3),
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Request::Ping),
            1 => Ok(Request::Run(RunRequest::take(r)?)),
            2 => Ok(Request::Stats),
            3 => Ok(Request::Shutdown),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Response {
    fn put(&self, w: &mut Writer) {
        match self {
            Response::Pong { protocol } => {
                w.u8(0);
                w.u32(*protocol);
            }
            Response::Queued { position } => {
                w.u8(1);
                w.u64(*position);
            }
            Response::Cell { workload, label, cycles, ops } => {
                w.u8(2);
                w.str(workload);
                w.str(label);
                w.u64(*cycles);
                w.u64(*ops);
            }
            Response::Done { status, payload } => {
                w.u8(3);
                w.i64(*status);
                w.str(payload);
            }
            Response::Busy { depth, capacity } => {
                w.u8(4);
                w.u64(*depth);
                w.u64(*capacity);
            }
            Response::Error { message } => {
                w.u8(5);
                w.str(message);
            }
            Response::Stats { pairs } => {
                w.u8(6);
                pairs.put(w);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Response::Pong { protocol: r.u32()? },
            1 => Response::Queued { position: r.u64()? },
            2 => Response::Cell {
                workload: r.str()?,
                label: r.str()?,
                cycles: r.u64()?,
                ops: r.u64()?,
            },
            3 => Response::Done { status: r.i64()?, payload: r.str()? },
            4 => Response::Busy { depth: r.u64()?, capacity: r.u64()? },
            5 => Response::Error { message: r.str()? },
            6 => Response::Stats { pairs: Vec::take(r)? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::wire::{read_frame, write_frame};

    #[test]
    fn every_variant_round_trips_as_a_frame() {
        let requests = vec![
            Request::Ping,
            Request::Run(RunRequest {
                quick: Some(true),
                threads: Some(3),
                best: true,
                format: "text".into(),
                ..RunRequest::new("fig6")
            }),
            Request::Stats,
            Request::Shutdown,
        ];
        let responses = vec![
            Response::Pong { protocol: PROTOCOL_VERSION },
            Response::Queued { position: 2 },
            Response::Cell {
                workload: "crc32".into(),
                label: "intmem".into(),
                cycles: 123,
                ops: 456,
            },
            Response::Done { status: 0, payload: "{}\n".into() },
            Response::Busy { depth: 16, capacity: 16 },
            Response::Error { message: "unknown experiment".into() },
            Response::Stats { pairs: vec![("served".into(), 9)] },
        ];
        let mut buf = Vec::new();
        for q in &requests {
            write_frame(&mut buf, q).unwrap();
        }
        for p in &responses {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = &buf[..];
        for q in &requests {
            assert_eq!(&read_frame::<Request>(&mut r).unwrap(), q);
        }
        for p in &responses {
            assert_eq!(&read_frame::<Response>(&mut r).unwrap(), p);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn terminality_partition_is_total() {
        assert!(Response::Pong { protocol: 1 }.is_terminal());
        assert!(Response::Done { status: 0, payload: String::new() }.is_terminal());
        assert!(Response::Busy { depth: 0, capacity: 0 }.is_terminal());
        assert!(Response::Error { message: String::new() }.is_terminal());
        assert!(Response::Stats { pairs: vec![] }.is_terminal());
        assert!(!Response::Queued { position: 0 }.is_terminal());
        assert!(!Response::Cell {
            workload: String::new(),
            label: String::new(),
            cycles: 0,
            ops: 0
        }
        .is_terminal());
    }

    #[test]
    fn hello_round_trips_and_rejects_foreign_magic() {
        let mut buf = Vec::new();
        send_hello(&mut buf).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_hello(&mut r).unwrap(), PROTOCOL_VERSION);
        let mut r: &[u8] = b"HTTP/1.1";
        assert_eq!(read_hello(&mut r).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }
}
