//! The `mg serve` wire protocol: connection handshake plus the
//! [`Request`] and [`Response`] frame payloads.
//!
//! The normative specification lives in `docs/PROTOCOL.md` (embedded as
//! the [`crate::spec`] module so its examples run as doc tests). In
//! short: a connection opens with a fixed magic and the client's
//! [`PROTOCOL_VERSION`], carries exactly one request frame, and is
//! answered by a stream of response frames ending in a *terminal* one
//! ([`Response::is_terminal`]). Frames themselves are the generic
//! length-delimited frames of [`mg_isa::wire::write_frame`]; this module
//! only defines their payloads.
//!
//! # Versioning
//!
//! [`PROTOCOL_VERSION`] must be bumped whenever the frame payload layout
//! changes **or** whenever `mg_harness::CACHE_SCHEMA_VERSION` is bumped:
//! served payloads are produced from cached preparation artifacts, so a
//! schema bump changes what a byte-identical request may return and old
//! clients must not silently mix results across it. The pairing is
//! asserted by `crates/bench/tests/serve.rs`.
//!
//! Since v3 the server *negotiates down*: it accepts any client version
//! in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` and encodes its replies
//! in the dialect the client announced ([`Response::for_version`]
//! downgrades frames a v2 client would not recognise — today only
//! [`Response::Expired`], which becomes an [`Response::Error`]). The v3
//! additions themselves were chosen to be v2-compatible on the request
//! path: `Shutdown`'s `drain` flag is encoded only when present, and a
//! flagless v2 `Shutdown` decodes as `drain: true` (the old behaviour).

use mg_isa::wire::{Reader, Wire, WireError, Writer};

/// Version sent in the connection handshake; see the module docs for the
/// bump rules (frame layout changes and cache schema bumps).
///
/// History: v1 initial; v2 added `RunRequest::no_fuse`; v3 added
/// [`Response::Expired`], the `drain` flag on [`Request::Shutdown`], and
/// downward negotiation to [`MIN_PROTOCOL_VERSION`].
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest client version the server still speaks (see the module docs'
/// versioning section). Clients older than this are rejected with an
/// [`Response::Error`] naming both versions.
pub const MIN_PROTOCOL_VERSION: u32 = 2;

/// Magic bytes every connection opens with, before the version word.
pub const CONNECT_MAGIC: &[u8; 4] = b"MGSV";

/// Writes the connection handshake (magic + [`PROTOCOL_VERSION`]).
///
/// # Errors
///
/// Any I/O error from the stream.
pub fn send_hello(out: &mut impl std::io::Write) -> std::io::Result<()> {
    out.write_all(CONNECT_MAGIC)?;
    out.write_all(&PROTOCOL_VERSION.to_le_bytes())?;
    out.flush()
}

/// Reads a connection handshake and returns the peer's protocol version
/// (the caller decides whether it is acceptable).
///
/// # Errors
///
/// [`std::io::ErrorKind::InvalidData`] on bad magic, plus any stream I/O
/// error.
pub fn read_hello(input: &mut impl std::io::Read) -> std::io::Result<u32> {
    let mut head = [0u8; 8];
    input.read_exact(&mut head)?;
    if &head[..4] != CONNECT_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad connection magic {:02x?}", &head[..4]),
        ));
    }
    Ok(u32::from_le_bytes(head[4..].try_into().expect("4 bytes")))
}

/// An experiment-run request: the serve-side equivalent of the `mg run`
/// argument set. Requests that compare equal are **batched** by the
/// server: they coalesce onto one execution and every client receives the
/// same frame stream.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunRequest {
    /// Registry name of the experiment (validated against the server's
    /// experiment list before queueing).
    pub experiment: String,
    /// Workload input data set: `"reference"`, `"alternative"`, or
    /// `"tiny"`.
    pub input: String,
    /// `--quick` / `--full` override; `None` leaves the server's default.
    pub quick: Option<bool>,
    /// Worker-thread override for the experiment's engine.
    pub threads: Option<u64>,
    /// `--best` (fig7 only).
    pub best: bool,
    /// Bypass the persistent artifact cache for this run.
    pub no_cache: bool,
    /// Run sweep cells one configuration at a time instead of fused
    /// (results are bit-identical either way).
    pub no_fuse: bool,
    /// Output format of the final payload (`text`, `json`, `csv`,
    /// `markdown`).
    pub format: String,
}

impl RunRequest {
    /// A request for `experiment` with every option at its default
    /// (reference input, server-side quick default, JSON payload).
    pub fn new(experiment: impl Into<String>) -> RunRequest {
        RunRequest {
            experiment: experiment.into(),
            input: "reference".into(),
            quick: None,
            threads: None,
            best: false,
            no_cache: false,
            no_fuse: false,
            format: "json".into(),
        }
    }
}

/// One client→server frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered by [`Response::Pong`].
    Ping,
    /// Run an experiment; answered by a stream of [`Response::Queued`] /
    /// [`Response::Cell`] frames ending in [`Response::Done`] (or
    /// [`Response::Busy`] / [`Response::Error`]).
    Run(RunRequest),
    /// Service counters; answered by [`Response::Stats`].
    Stats,
    /// Stop the server; answered by [`Response::Done`] once accepted.
    Shutdown {
        /// `true` finishes already-queued work under the server's drain
        /// deadline before exiting (new runs are refused with
        /// [`Response::Busy`] meanwhile); `false` abandons the queue,
        /// answering queued requests with [`Response::Error`]. v2
        /// clients cannot encode the flag and get `drain: true`.
        drain: bool,
    },
}

/// One server→client frame payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`], carrying the server's protocol
    /// version.
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// The run was accepted and enqueued at this queue position
    /// (informational; `0` means it is next).
    Queued {
        /// Queue position at accept time.
        position: u64,
    },
    /// One matrix cell of the running experiment completed (streamed in
    /// completion order while the run is in flight).
    Cell {
        /// Workload name of the cell.
        workload: String,
        /// Run-spec label of the cell.
        label: String,
        /// Simulated cycles.
        cycles: u64,
        /// Committed fetched operations.
        ops: u64,
    },
    /// Terminal success: the rendered report payload, byte-identical to
    /// the same `mg run --format <fmt>` invocation's stdout.
    Done {
        /// Process-style exit status of the experiment (non-zero for
        /// e.g. a perf regression gate).
        status: i64,
        /// The rendered report.
        payload: String,
    },
    /// Terminal backpressure reply: the bounded queue is full; retry
    /// later.
    Busy {
        /// Requests currently queued.
        depth: u64,
        /// The queue bound.
        capacity: u64,
    },
    /// Terminal failure (validation, version mismatch, or execution
    /// error).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Terminal deadline miss (v3): the request exceeded its queue-time
    /// or run-time budget and was expired by the server. v2 clients
    /// receive this downgraded to [`Response::Error`]
    /// ([`Response::for_version`]).
    Expired {
        /// Which budget ran out: `"queue"` or `"run"`.
        phase: String,
        /// How long the request had been in that phase, in milliseconds.
        waited_ms: u64,
        /// The configured budget for that phase, in milliseconds.
        budget_ms: u64,
    },
    /// Reply to [`Request::Stats`]: named counters, in stable order.
    Stats {
        /// `(name, value)` counter pairs.
        pairs: Vec<(String, u64)>,
    },
}

impl Response {
    /// Whether this frame ends the response stream (the client should
    /// stop reading after it).
    pub fn is_terminal(&self) -> bool {
        match self {
            Response::Pong { .. }
            | Response::Done { .. }
            | Response::Busy { .. }
            | Response::Error { .. }
            | Response::Expired { .. }
            | Response::Stats { .. } => true,
            Response::Queued { .. } | Response::Cell { .. } => false,
        }
    }

    /// The frame actually sent to a peer that negotiated `version`:
    /// frames a pre-v3 dialect has no tag for are downgraded to
    /// equivalents it does. Today that is only [`Response::Expired`],
    /// which becomes an [`Response::Error`] carrying the same facts in
    /// its message; every other frame passes through unchanged.
    pub fn for_version(&self, version: u32) -> std::borrow::Cow<'_, Response> {
        match self {
            Response::Expired { phase, waited_ms, budget_ms } if version < 3 => {
                std::borrow::Cow::Owned(Response::Error {
                    message: format!(
                        "expired: {phase} deadline exceeded ({waited_ms}ms waited, {budget_ms}ms budget)"
                    ),
                })
            }
            other => std::borrow::Cow::Borrowed(other),
        }
    }
}

impl Wire for RunRequest {
    fn put(&self, w: &mut Writer) {
        w.str(&self.experiment);
        w.str(&self.input);
        self.quick.put(w);
        self.threads.put(w);
        self.best.put(w);
        self.no_cache.put(w);
        self.no_fuse.put(w);
        w.str(&self.format);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RunRequest {
            experiment: r.str()?,
            input: r.str()?,
            quick: <Option<bool> as Wire>::take(r)?,
            threads: <Option<u64> as Wire>::take(r)?,
            best: bool::take(r)?,
            no_cache: bool::take(r)?,
            no_fuse: bool::take(r)?,
            format: r.str()?,
        })
    }
}

impl Wire for Request {
    fn put(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.u8(0),
            Request::Run(req) => {
                w.u8(1);
                req.put(w);
            }
            Request::Stats => w.u8(2),
            Request::Shutdown { drain } => {
                w.u8(3);
                drain.put(w);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Request::Ping),
            1 => Ok(Request::Run(RunRequest::take(r)?)),
            2 => Ok(Request::Stats),
            // A v2 `Shutdown` frame is the bare tag; its payload reader
            // is exhausted here, and the old behaviour was to drain.
            3 => Ok(Request::Shutdown {
                drain: if r.is_exhausted() { true } else { bool::take(r)? },
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Response {
    fn put(&self, w: &mut Writer) {
        match self {
            Response::Pong { protocol } => {
                w.u8(0);
                w.u32(*protocol);
            }
            Response::Queued { position } => {
                w.u8(1);
                w.u64(*position);
            }
            Response::Cell { workload, label, cycles, ops } => {
                w.u8(2);
                w.str(workload);
                w.str(label);
                w.u64(*cycles);
                w.u64(*ops);
            }
            Response::Done { status, payload } => {
                w.u8(3);
                w.i64(*status);
                w.str(payload);
            }
            Response::Busy { depth, capacity } => {
                w.u8(4);
                w.u64(*depth);
                w.u64(*capacity);
            }
            Response::Error { message } => {
                w.u8(5);
                w.str(message);
            }
            Response::Stats { pairs } => {
                w.u8(6);
                pairs.put(w);
            }
            Response::Expired { phase, waited_ms, budget_ms } => {
                w.u8(7);
                w.str(phase);
                w.u64(*waited_ms);
                w.u64(*budget_ms);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Response::Pong { protocol: r.u32()? },
            1 => Response::Queued { position: r.u64()? },
            2 => Response::Cell {
                workload: r.str()?,
                label: r.str()?,
                cycles: r.u64()?,
                ops: r.u64()?,
            },
            3 => Response::Done { status: r.i64()?, payload: r.str()? },
            4 => Response::Busy { depth: r.u64()?, capacity: r.u64()? },
            5 => Response::Error { message: r.str()? },
            6 => Response::Stats { pairs: Vec::take(r)? },
            7 => {
                Response::Expired { phase: r.str()?, waited_ms: r.u64()?, budget_ms: r.u64()? }
            }
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::wire::{read_frame, write_frame};

    #[test]
    fn every_variant_round_trips_as_a_frame() {
        let requests = vec![
            Request::Ping,
            Request::Run(RunRequest {
                quick: Some(true),
                threads: Some(3),
                best: true,
                format: "text".into(),
                ..RunRequest::new("fig6")
            }),
            Request::Stats,
            Request::Shutdown { drain: true },
            Request::Shutdown { drain: false },
        ];
        let responses = vec![
            Response::Pong { protocol: PROTOCOL_VERSION },
            Response::Queued { position: 2 },
            Response::Cell {
                workload: "crc32".into(),
                label: "intmem".into(),
                cycles: 123,
                ops: 456,
            },
            Response::Done { status: 0, payload: "{}\n".into() },
            Response::Busy { depth: 16, capacity: 16 },
            Response::Error { message: "unknown experiment".into() },
            Response::Stats { pairs: vec![("served".into(), 9)] },
            Response::Expired { phase: "queue".into(), waited_ms: 1500, budget_ms: 1000 },
        ];
        let mut buf = Vec::new();
        for q in &requests {
            write_frame(&mut buf, q).unwrap();
        }
        for p in &responses {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = &buf[..];
        for q in &requests {
            assert_eq!(&read_frame::<Request>(&mut r).unwrap(), q);
        }
        for p in &responses {
            assert_eq!(&read_frame::<Response>(&mut r).unwrap(), p);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn terminality_partition_is_total() {
        assert!(Response::Pong { protocol: 1 }.is_terminal());
        assert!(Response::Done { status: 0, payload: String::new() }.is_terminal());
        assert!(Response::Busy { depth: 0, capacity: 0 }.is_terminal());
        assert!(Response::Error { message: String::new() }.is_terminal());
        assert!(Response::Stats { pairs: vec![] }.is_terminal());
        assert!(
            Response::Expired { phase: "run".into(), waited_ms: 0, budget_ms: 0 }.is_terminal()
        );
        assert!(!Response::Queued { position: 0 }.is_terminal());
        assert!(!Response::Cell {
            workload: String::new(),
            label: String::new(),
            cycles: 0,
            ops: 0
        }
        .is_terminal());
    }

    #[test]
    fn bare_v2_shutdown_decodes_as_drain() {
        // A v2 client encodes `Shutdown` as the tag byte alone.
        let v2_frame = [3u8];
        let decoded = mg_isa::wire::from_bytes::<Request>(&v2_frame).unwrap();
        assert_eq!(decoded, Request::Shutdown { drain: true });
        // And the v3 encodings round-trip distinctly.
        for drain in [true, false] {
            let bytes = mg_isa::wire::to_bytes(&Request::Shutdown { drain });
            assert_eq!(bytes.len(), 2);
            assert_eq!(
                mg_isa::wire::from_bytes::<Request>(&bytes).unwrap(),
                Request::Shutdown { drain }
            );
        }
    }

    #[test]
    fn expired_downgrades_to_error_for_v2_and_passes_through_for_v3() {
        let expired =
            Response::Expired { phase: "queue".into(), waited_ms: 1500, budget_ms: 1000 };
        match expired.for_version(2).as_ref() {
            Response::Error { message } => {
                assert!(message.contains("expired"), "{message}");
                assert!(message.contains("queue"), "{message}");
                assert!(message.contains("1500"), "{message}");
                assert!(message.contains("1000"), "{message}");
            }
            other => panic!("expected Error downgrade, got {other:?}"),
        }
        assert_eq!(expired.for_version(3).as_ref(), &expired);
        // Non-Expired frames are never rewritten, for any version.
        let done = Response::Done { status: 0, payload: "x".into() };
        assert_eq!(done.for_version(2).as_ref(), &done);
    }

    #[test]
    fn hello_round_trips_and_rejects_foreign_magic() {
        let mut buf = Vec::new();
        send_hello(&mut buf).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_hello(&mut r).unwrap(), PROTOCOL_VERSION);
        let mut r: &[u8] = b"HTTP/1.1";
        assert_eq!(read_hello(&mut r).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }
}
