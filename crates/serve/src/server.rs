//! The experiment server: listener, bounded queue, batching scheduler,
//! and worker pool.
//!
//! The server is deliberately generic: it knows the wire protocol, the
//! scheduling policy (coalesce equal [`RunRequest`]s, bound the queue,
//! stream frames as they are produced), and nothing about experiments.
//! The experiment side is injected as a [`Runner`] — `mg serve` (in
//! `mg-bench`) wires in the real registry, a shared warm prep pool, and a
//! per-cell progress observer; tests wire in cheap stubs.
//!
//! # Scheduling
//!
//! * Each accepted connection carries exactly one [`Request`].
//! * `Run` requests are keyed by their full [`RunRequest`] value. A
//!   request equal to one that is queued or running **attaches** to it:
//!   the new client first receives a replay of every frame the batch has
//!   already emitted, then the live stream — so late joiners see the
//!   identical byte sequence. One execution serves all attached clients.
//! * New keys are enqueued; if the bounded queue is full the client gets
//!   a terminal [`Response::Busy`] instead (documented backpressure — the
//!   client retries later).
//! * Worker threads pop batches FIFO and run them through the
//!   [`Runner`], broadcasting progress frames as the runner emits them
//!   and a terminal [`Response::Done`] / [`Response::Error`] at the end.
//! * `Shutdown` stops accepting, lets the workers drain the queue, and
//!   returns from [`Server::serve`].

use crate::protocol::{read_hello, Request, Response, RunRequest, PROTOCOL_VERSION};
use mg_isa::wire::{self, read_frame};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Frame sink handed to a [`Runner`]: every response emitted through it
/// is broadcast to all clients attached to the batch, in emission order.
pub type EmitFn = Arc<dyn Fn(Response) + Send + Sync>;

/// A completed run: the experiment's exit status and its rendered
/// payload (sent to clients as [`Response::Done`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Process-style exit status (`Report::status`).
    pub status: i32,
    /// The rendered report, byte-identical to `mg run`'s stdout for the
    /// same arguments.
    pub payload: String,
}

/// Executes one validated run request, emitting progress frames through
/// the provided [`EmitFn`] and returning the terminal outcome (`Err` is
/// sent to clients as [`Response::Error`]).
pub type Runner = Arc<dyn Fn(&RunRequest, EmitFn) -> Result<RunOutcome, String> + Send + Sync>;

/// Extra `(name, value)` counter pairs appended to [`Response::Stats`]
/// (e.g. the CLI's warm-prep-pool counters).
pub type StatsExtra = Arc<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads executing batches concurrently.
    pub workers: usize,
    /// Bound on queued (not yet running) batches; beyond it new keys get
    /// [`Response::Busy`].
    pub max_queue: usize,
    /// Per-connection socket I/O timeout. Response frames are broadcast
    /// under scheduler locks, so a client that stops reading must fail
    /// fast (and be dropped from its batch) rather than wedge the
    /// daemon; the same bound covers a client that connects but never
    /// sends its request.
    pub io_timeout: std::time::Duration,
    /// Optional extra counters for [`Response::Stats`].
    pub stats_extra: Option<StatsExtra>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            max_queue: 16,
            io_timeout: std::time::Duration::from_secs(30),
            stats_extra: None,
        }
    }
}

/// A client sink: the write half of an accepted connection.
type Sink = Box<dyn Write + Send>;

/// One coalesced run: the request, the clients attached to it, and the
/// frames already emitted (for replay to late joiners).
struct Batch {
    req: RunRequest,
    inner: Mutex<BatchInner>,
}

#[derive(Default)]
struct BatchInner {
    sinks: Vec<Sink>,
    emitted: Vec<Vec<u8>>,
    done: bool,
}

/// Encodes `resp` as one frame. A payload over the frame-size bound
/// degrades to an encoded [`Response::Error`] naming the overflow — a
/// runner-provided oversized payload must not panic a worker thread (and
/// poison its batch) in a daemon whose runners are injected by callers.
fn encode_frame(resp: &Response) -> Vec<u8> {
    let mut frame = Vec::new();
    if wire::write_frame(&mut frame, resp).is_err() {
        frame.clear();
        let fallback = Response::Error {
            message: format!(
                "response frame exceeds the {}-byte limit; see docs/PROTOCOL.md",
                wire::MAX_FRAME_LEN
            ),
        };
        wire::write_frame(&mut frame, &fallback).expect("the fallback error frame is small");
    }
    frame
}

impl Batch {
    /// Encodes `resp` once and broadcasts it to every attached sink,
    /// recording it for replay. Dead sinks (client hung up) are dropped
    /// silently.
    fn broadcast(&self, resp: &Response) {
        let frame = encode_frame(resp);
        let mut inner = self.inner.lock().unwrap();
        inner.emitted.push(frame.clone());
        inner.sinks.retain_mut(|s| s.write_all(&frame).and_then(|()| s.flush()).is_ok());
    }
}

struct SchedState {
    queue: VecDeque<Arc<Batch>>,
    /// Queued **and running** batches, so duplicates attach to in-flight
    /// work too; entries leave when their terminal frame has been sent.
    index: HashMap<RunRequest, Arc<Batch>>,
}

struct Shared {
    runner: Runner,
    experiments: Vec<String>,
    cfg: ServerConfig,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    stop: AtomicBool,
    /// Terminal frames delivered to run clients (one per client still
    /// attached at completion).
    served: AtomicU64,
    /// Requests that attached to an existing batch instead of enqueueing.
    batched: AtomicU64,
    /// Requests rejected with `Busy`.
    busy_rejections: AtomicU64,
}

impl Shared {
    fn stats_pairs(&self) -> Vec<(String, u64)> {
        let (depth, in_flight) = {
            let state = self.state.lock().unwrap();
            (state.queue.len() as u64, state.index.len() as u64)
        };
        let mut pairs = vec![
            ("served".to_string(), self.served.load(Ordering::Relaxed)),
            ("batched".to_string(), self.batched.load(Ordering::Relaxed)),
            ("busy_rejections".to_string(), self.busy_rejections.load(Ordering::Relaxed)),
            ("queue_depth".to_string(), depth),
            ("in_flight".to_string(), in_flight),
        ];
        if let Some(extra) = &self.cfg.stats_extra {
            pairs.extend(extra());
        }
        pairs
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound (but not yet serving) experiment server. See the
/// [module docs](self) for the scheduling contract.
///
/// # Example
///
/// An in-process loopback round-trip with a stub runner (the real
/// experiment registry is wired in by `mg serve`):
///
/// ```
/// use mg_serve::{Client, Request, Response, RunOutcome, RunRequest, Server, ServerConfig};
/// use std::sync::Arc;
///
/// let runner = Arc::new(|req: &RunRequest, _emit: mg_serve::EmitFn| {
///     Ok(RunOutcome { status: 0, payload: format!("ran {}\n", req.experiment) })
/// });
/// let server = Server::bind(
///     "127.0.0.1:0",                    // any free port
///     vec!["echo".to_string()],         // the experiment registry
///     runner,
///     ServerConfig::default(),
/// )
/// .unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
///
/// let client = Client::tcp(addr.to_string());
/// let reply = client.request(&Request::Run(RunRequest::new("echo")), |_| {}).unwrap();
/// assert_eq!(reply, Response::Done { status: 0, payload: "ran echo\n".to_string() });
///
/// client.request(&Request::Shutdown, |_| {}).unwrap();
/// handle.join().unwrap().unwrap();
/// ```
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds a TCP server on `addr` (e.g. `"127.0.0.1:0"` for any free
    /// port). `experiments` is the set of run-request names the server
    /// accepts; anything else is rejected with [`Response::Error`]
    /// before queueing.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        experiments: Vec<String>,
        runner: Runner,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            shared: Shared::new(experiments, runner, cfg),
        })
    }

    /// Binds a Unix-domain-socket server at `path`. An existing entry at
    /// the path is removed only when it is a **stale socket** (a socket
    /// nothing answers on): a live daemon's socket refuses with
    /// `AddrInUse`, and a non-socket file refuses with `AlreadyExists` —
    /// binding never deletes unrelated data.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the path holds a non-socket file, `AddrInUse`
    /// if another server is answering on it, plus any I/O error from
    /// binding the listener.
    #[cfg(unix)]
    pub fn bind_unix(
        path: impl AsRef<Path>,
        experiments: Vec<String>,
        runner: Runner,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        use std::io::{Error, ErrorKind};
        let path = path.as_ref();
        match std::fs::symlink_metadata(path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt;
                if !meta.file_type().is_socket() {
                    return Err(Error::new(
                        ErrorKind::AlreadyExists,
                        format!(
                            "{} exists and is not a socket; refusing to remove it",
                            path.display()
                        ),
                    ));
                }
                if UnixStream::connect(path).is_ok() {
                    return Err(Error::new(
                        ErrorKind::AddrInUse,
                        format!("a server is already answering on {}", path.display()),
                    ));
                }
                std::fs::remove_file(path)?; // stale socket from a dead server
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Server {
            listener: Listener::Unix(UnixListener::bind(path)?),
            shared: Shared::new(experiments, runner, cfg),
        })
    }

    /// The bound TCP address (`None` for Unix-socket servers); use with
    /// port `0` to discover the assigned port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// Runs the accept loop on the calling thread until a
    /// [`Request::Shutdown`] arrives, then drains the queue and returns.
    ///
    /// # Errors
    ///
    /// None currently: per-connection errors are handled in place and
    /// transient accept errors (aborted handshakes, fd exhaustion) are
    /// retried with a short backoff rather than stopping the server.
    /// The `Result` return is kept so future fatal conditions have a
    /// channel.
    pub fn serve(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        let mut workers = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let mut handlers = Vec::new();
        loop {
            let accepted: std::io::Result<Box<dyn Conn>> = match &listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            };
            let conn = match accepted {
                Ok(conn) => conn,
                // A long-running daemon must survive transient accept
                // failures (a peer resetting mid-handshake, a burst
                // exhausting fds) — dying here would orphan every
                // queued batch. Back off briefly and keep accepting;
                // the loop still exits promptly on shutdown.
                Err(_) if shared.stop.load(Ordering::SeqCst) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    continue;
                }
            };
            if shared.stop.load(Ordering::SeqCst) {
                break; // the shutdown handler's wake-up connection
            }
            conn.set_io_timeout(shared.cfg.io_timeout);
            // Reap finished handler threads so a long-lived daemon's
            // bookkeeping stays proportional to *live* connections, not
            // to every connection ever accepted.
            handlers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            let shared = Arc::clone(&shared);
            let endpoint = listener.self_endpoint();
            handlers.push(std::thread::spawn(move || {
                handle_connection(conn, &shared, &endpoint);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        shared.work_ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Spawns [`Server::serve`] on a background thread and returns its
    /// handle (convenience for tests and in-process use).
    pub fn spawn(self) -> std::thread::JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.serve())
    }
}

impl Shared {
    fn new(experiments: Vec<String>, runner: Runner, cfg: ServerConfig) -> Arc<Shared> {
        Arc::new(Shared {
            runner,
            experiments,
            cfg,
            state: Mutex::new(SchedState { queue: VecDeque::new(), index: HashMap::new() }),
            work_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        })
    }
}

/// How a handler reaches its own server to unblock the accept loop on
/// shutdown.
enum SelfEndpoint {
    Tcp(Option<SocketAddr>),
    #[cfg(unix)]
    Unix(Option<std::path::PathBuf>),
}

impl Listener {
    fn self_endpoint(&self) -> SelfEndpoint {
        match self {
            Listener::Tcp(l) => SelfEndpoint::Tcp(l.local_addr().ok()),
            #[cfg(unix)]
            Listener::Unix(l) => SelfEndpoint::Unix(
                l.local_addr().ok().and_then(|a| a.as_pathname().map(Path::to_path_buf)),
            ),
        }
    }
}

impl SelfEndpoint {
    /// Makes one throwaway connection so a blocked `accept` observes the
    /// stop flag.
    fn wake(&self) {
        match self {
            SelfEndpoint::Tcp(Some(addr)) => {
                let _ = TcpStream::connect(addr);
            }
            SelfEndpoint::Tcp(None) => {}
            #[cfg(unix)]
            SelfEndpoint::Unix(Some(path)) => {
                let _ = UnixStream::connect(path);
            }
            #[cfg(unix)]
            SelfEndpoint::Unix(None) => {}
        }
    }
}

/// A connection stream: readable for the request, then converted into a
/// write-only [`Sink`].
trait Conn: std::io::Read + Write + Send {
    fn into_sink(self: Box<Self>) -> Sink;

    /// Bounds every read and write on the stream (see
    /// [`ServerConfig::io_timeout`]).
    fn set_io_timeout(&self, timeout: std::time::Duration);
}

impl Conn for TcpStream {
    fn into_sink(self: Box<Self>) -> Sink {
        self
    }

    fn set_io_timeout(&self, timeout: std::time::Duration) {
        let _ = self.set_read_timeout(Some(timeout));
        let _ = self.set_write_timeout(Some(timeout));
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn into_sink(self: Box<Self>) -> Sink {
        self
    }

    fn set_io_timeout(&self, timeout: std::time::Duration) {
        let _ = self.set_read_timeout(Some(timeout));
        let _ = self.set_write_timeout(Some(timeout));
    }
}

/// Best-effort single-frame reply on a stream we are about to drop.
fn reply(stream: &mut dyn Write, resp: &Response) {
    let frame = encode_frame(resp);
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
}

fn handle_connection(mut conn: Box<dyn Conn>, shared: &Shared, endpoint: &SelfEndpoint) {
    let version = match read_hello(&mut conn) {
        Ok(v) => v,
        Err(_) => return, // not a protocol client; nothing to say
    };
    if version != PROTOCOL_VERSION {
        reply(
            &mut *conn,
            &Response::Error {
                message: format!(
                    "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                ),
            },
        );
        return;
    }
    let request = match read_frame::<Request>(&mut conn) {
        Ok(r) => r,
        Err(e) => {
            reply(&mut *conn, &Response::Error { message: format!("bad request frame: {e}") });
            return;
        }
    };
    match request {
        Request::Ping => reply(&mut *conn, &Response::Pong { protocol: PROTOCOL_VERSION }),
        Request::Stats => reply(&mut *conn, &Response::Stats { pairs: shared.stats_pairs() }),
        Request::Shutdown => {
            reply(&mut *conn, &Response::Done { status: 0, payload: "shutting down".into() });
            shared.stop.store(true, Ordering::SeqCst);
            endpoint.wake();
        }
        Request::Run(req) => handle_run(conn, shared, req),
    }
}

fn handle_run(conn: Box<dyn Conn>, shared: &Shared, req: RunRequest) {
    let mut sink = conn.into_sink();
    if !shared.experiments.iter().any(|e| e == &req.experiment) {
        reply(
            &mut *sink,
            &Response::Error { message: format!("unknown experiment {:?}", req.experiment) },
        );
        return;
    }
    loop {
        // The stop check must happen under the state lock: workers exit
        // on (queue empty && stop), both read under the same lock, so a
        // batch can never be enqueued after the last worker has decided
        // to exit.
        let mut state = shared.state.lock().unwrap();
        if shared.stop.load(Ordering::SeqCst) {
            drop(state);
            reply(&mut *sink, &Response::Error { message: "server is shutting down".into() });
            return;
        }
        // Attach to an equal queued/running batch: replay its frames,
        // then receive the live stream. The scheduler lock is released
        // first — replaying to a slow client may block up to the socket
        // timeout and must only stall this batch (its `inner` lock), not
        // the whole daemon.
        if let Some(batch) = state.index.get(&req).map(Arc::clone) {
            drop(state);
            let mut inner = batch.inner.lock().unwrap();
            if inner.done {
                // Completed while unlocked; the worker is about to drop
                // (or just dropped) the index entry — retry as new.
                drop(inner);
                std::thread::yield_now();
                continue;
            }
            let mut alive = true;
            for frame in &inner.emitted {
                if sink.write_all(frame).and_then(|()| sink.flush()).is_err() {
                    alive = false;
                    break;
                }
            }
            if alive {
                inner.sinks.push(sink);
            }
            shared.batched.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if state.queue.len() >= shared.cfg.max_queue {
            let depth = state.queue.len() as u64;
            drop(state);
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            reply(&mut *sink, &Response::Busy { depth, capacity: shared.cfg.max_queue as u64 });
            return;
        }
        let position = state.queue.len() as u64;
        let batch = Arc::new(Batch {
            req: req.clone(),
            inner: Mutex::new(BatchInner { sinks: vec![sink], ..Default::default() }),
        });
        // Record `Queued` before the batch becomes visible to workers,
        // so it is always the stream's first frame (and is replayed to
        // joiners). The write happens under the scheduler lock, but it
        // is one small frame into a freshly accepted socket's empty
        // send buffer — it cannot block on the peer.
        batch.broadcast(&Response::Queued { position });
        state.queue.push_back(Arc::clone(&batch));
        state.index.insert(req, Arc::clone(&batch));
        drop(state);
        shared.work_ready.notify_one();
        return;
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(batch) = state.queue.pop_front() {
                    break batch;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                state = shared.work_ready.wait(state).unwrap();
            }
        };
        let emit: EmitFn = {
            let batch = Arc::clone(&batch);
            Arc::new(move |resp: Response| batch.broadcast(&resp))
        };
        let outcome = (shared.runner)(&batch.req, emit);
        let terminal = match outcome {
            Ok(RunOutcome { status, payload }) => {
                Response::Done { status: status as i64, payload }
            }
            Err(message) => Response::Error { message },
        };
        // Terminal delivery needs only the batch's own lock: an
        // attacher that still finds the index entry afterwards locks
        // `inner`, sees `done`, and retries as a fresh request. Writing
        // to client sockets while holding the scheduler lock would let
        // one slow client stall every connection on the daemon.
        let frame = encode_frame(&terminal);
        {
            let mut inner = batch.inner.lock().unwrap();
            inner.emitted.push(frame.clone());
            // Count *before* writing: the first successful write wakes a
            // client, which may immediately query stats — the counter
            // must already include this batch's subscribers by then.
            // (Sinks that died earlier were already dropped by their
            // failed broadcast, so this is the set delivery is attempted
            // to.)
            shared.served.fetch_add(inner.sinks.len() as u64, Ordering::Relaxed);
            for sink in &mut inner.sinks {
                let _ = sink.write_all(&frame).and_then(|()| sink.flush());
            }
            inner.done = true;
            inner.sinks.clear(); // hang up: the stream is complete
        }
        // Only the index removal touches the scheduler lock.
        let mut state = shared.state.lock().unwrap();
        if let Some(indexed) = state.index.get(&batch.req) {
            if Arc::ptr_eq(indexed, &batch) {
                state.index.remove(&batch.req);
            }
        }
    }
}
