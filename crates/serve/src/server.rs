//! The experiment server: listener, bounded queue, batching scheduler,
//! worker pool, and the deadline/drain watchdog.
//!
//! The server is deliberately generic: it knows the wire protocol, the
//! scheduling policy (coalesce equal [`RunRequest`]s, bound the queue,
//! stream frames as they are produced), and nothing about experiments.
//! The experiment side is injected as a [`Runner`] — `mg serve` (in
//! `mg-bench`) wires in the real registry, a shared warm prep pool, and a
//! per-cell progress observer; tests wire in cheap stubs.
//!
//! # Scheduling
//!
//! * Each accepted connection carries exactly one [`Request`].
//! * `Run` requests are keyed by their full [`RunRequest`] value. A
//!   request equal to one that is queued or running **attaches** to it:
//!   the new client first receives a replay of every frame the batch has
//!   already emitted, then the live stream — so late joiners see the
//!   identical byte sequence. One execution serves all attached clients.
//! * New keys are enqueued; if the bounded queue is full the client gets
//!   a terminal [`Response::Busy`] instead (documented backpressure — the
//!   client retries later).
//! * Worker threads pop batches FIFO and run them through the
//!   [`Runner`], broadcasting progress frames as the runner emits them
//!   and a terminal [`Response::Done`] / [`Response::Error`] at the end.
//!   A runner (or injected fault) that panics is contained: the batch is
//!   answered with [`Response::Error`] and the worker thread survives.
//! * `Shutdown { drain: true }` stops accepting new runs (they get
//!   [`Response::Busy`]), finishes queued work under
//!   [`ServerConfig::drain_deadline`], then returns from
//!   [`Server::serve`]; `drain: false` abandons the queue, answering
//!   queued clients with [`Response::Error`].
//!
//! # Deadlines and slow clients
//!
//! A watchdog thread (ticking every few tens of milliseconds) enforces
//! the optional per-request budgets: a batch queued longer than
//! [`ServerConfig::queue_deadline`] or running longer than
//! [`ServerConfig::run_deadline`] is answered with the terminal
//! [`Response::Expired`] and detached (an expired *run* keeps executing
//! — threads are never killed — but its clients are released and its
//! slot in the request index is freed). A client that stops reading
//! mid-broadcast fails its write after
//! [`ServerConfig::slow_client_timeout`] and is evicted from the batch
//! without stalling the other subscribers; the eviction is counted in
//! `evicted_slow_clients`.

use crate::protocol::{
    read_hello, Request, Response, RunRequest, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use mg_fault::{points, FaultPlan, FaultyStream};
use mg_isa::wire::{self, read_frame};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Frame sink handed to a [`Runner`]: every response emitted through it
/// is broadcast to all clients attached to the batch, in emission order.
pub type EmitFn = Arc<dyn Fn(Response) + Send + Sync>;

/// A completed run: the experiment's exit status and its rendered
/// payload (sent to clients as [`Response::Done`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Process-style exit status (`Report::status`).
    pub status: i32,
    /// The rendered report, byte-identical to `mg run`'s stdout for the
    /// same arguments.
    pub payload: String,
}

/// Executes one validated run request, emitting progress frames through
/// the provided [`EmitFn`] and returning the terminal outcome (`Err` is
/// sent to clients as [`Response::Error`]).
pub type Runner = Arc<dyn Fn(&RunRequest, EmitFn) -> Result<RunOutcome, String> + Send + Sync>;

/// Extra `(name, value)` counter pairs appended to [`Response::Stats`]
/// (e.g. the CLI's warm-prep-pool counters).
pub type StatsExtra = Arc<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// Callback an idle worker consults for work from *other* servers (see
/// [`Server::set_steal_source`]). Returns the next batch worth stealing,
/// or `None` when every peer queue is empty.
pub type StealSource = Arc<dyn Fn() -> Option<StolenBatch> + Send + Sync>;

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads executing batches concurrently.
    pub workers: usize,
    /// Bound on queued (not yet running) batches; beyond it new keys get
    /// [`Response::Busy`].
    pub max_queue: usize,
    /// Per-connection socket I/O timeout: covers reading the request
    /// from a client that connects but never sends it.
    pub io_timeout: Duration,
    /// Maximum time a batch may wait in the queue before it is expired
    /// with [`Response::Expired`] (`phase: "queue"`). `None` (the
    /// default) disables the budget.
    pub queue_deadline: Option<Duration>,
    /// Maximum time a batch may *run* before its clients are answered
    /// with [`Response::Expired`] (`phase: "run"`) and detached. The
    /// runner itself is not killed — its result is discarded. `None`
    /// disables the budget.
    pub run_deadline: Option<Duration>,
    /// How long a draining shutdown waits for queued work before
    /// expiring whatever is left (`phase: "drain"`).
    pub drain_deadline: Duration,
    /// Write timeout on client sinks during broadcast: a client that
    /// stops reading fails its write after this and is evicted from the
    /// batch, instead of stalling the broadcast for the full
    /// [`ServerConfig::io_timeout`].
    pub slow_client_timeout: Duration,
    /// Deterministic fault schedule (see [`mg_fault`]): when set, every
    /// accepted connection is wrapped in a [`FaultyStream`] and worker
    /// closures consult the plan's `serve.worker.panic` point. `None`
    /// (the default) adds no hooks on the hot path beyond this option
    /// check.
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional extra counters for [`Response::Stats`].
    pub stats_extra: Option<StatsExtra>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            max_queue: 16,
            io_timeout: Duration::from_secs(30),
            queue_deadline: None,
            run_deadline: None,
            drain_deadline: Duration::from_secs(10),
            slow_client_timeout: Duration::from_secs(5),
            faults: None,
            stats_extra: None,
        }
    }
}

/// A client attached to a batch: the write half of its connection plus
/// the protocol version it negotiated, so every frame can be encoded in
/// the client's dialect ([`Response::for_version`]).
struct ClientSink {
    stream: Box<dyn Write + Send>,
    version: u32,
}

/// One coalesced run: the request, the clients attached to it, and the
/// frames already emitted (for replay to late joiners).
struct Batch {
    req: RunRequest,
    enqueued_at: Instant,
    inner: Mutex<BatchInner>,
}

#[derive(Default)]
struct BatchInner {
    sinks: Vec<ClientSink>,
    /// Emitted frames are kept as decoded [`Response`]s, not bytes:
    /// replay re-encodes per joiner so v2 and v3 clients each get their
    /// own dialect of the same stream.
    emitted: Vec<Response>,
    started_at: Option<Instant>,
    done: bool,
}

/// Encodes `resp` as one frame. A payload over the frame-size bound
/// degrades to an encoded [`Response::Error`] naming the overflow — a
/// runner-provided oversized payload must not panic a worker thread (and
/// poison its batch) in a daemon whose runners are injected by callers.
fn encode_frame(resp: &Response) -> Vec<u8> {
    let mut frame = Vec::new();
    if wire::write_frame(&mut frame, resp).is_err() {
        frame.clear();
        let fallback = Response::Error {
            message: format!(
                "response frame exceeds the {}-byte limit; see docs/PROTOCOL.md",
                wire::MAX_FRAME_LEN
            ),
        };
        wire::write_frame(&mut frame, &fallback).expect("the fallback error frame is small");
    }
    frame
}

/// Per-broadcast memo of `resp` encoded for each client dialect seen so
/// far (at most one entry per supported protocol version).
fn frame_for<'a>(
    cache: &'a mut Vec<(u32, Vec<u8>)>,
    resp: &Response,
    version: u32,
) -> &'a [u8] {
    let idx = match cache.iter().position(|(v, _)| *v == version) {
        Some(i) => i,
        None => {
            cache.push((version, encode_frame(&resp.for_version(version))));
            cache.len() - 1
        }
    };
    &cache[idx].1
}

/// Whether a sink write error means "client reads too slowly" (socket
/// write timeout) rather than "client hung up".
fn is_slow_client(kind: std::io::ErrorKind) -> bool {
    matches!(kind, std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

impl Batch {
    /// Broadcasts `resp` to every attached sink (encoded once per client
    /// dialect), recording it for replay. Dead sinks (client hung up)
    /// are dropped silently; sinks whose write times out are evicted and
    /// counted in `evicted_slow_clients`.
    fn broadcast(&self, resp: &Response, shared: &Shared) {
        let mut inner = self.inner.lock().unwrap();
        inner.emitted.push(resp.clone());
        let mut cache: Vec<(u32, Vec<u8>)> = Vec::new();
        inner.sinks.retain_mut(|s| {
            let frame = frame_for(&mut cache, resp, s.version);
            match s.stream.write_all(frame).and_then(|()| s.stream.flush()) {
                Ok(()) => true,
                Err(e) => {
                    if is_slow_client(e.kind()) {
                        shared.evicted_slow_clients.fetch_add(1, Ordering::Relaxed);
                    }
                    false
                }
            }
        });
    }

    /// Delivers `resp` as this batch's terminal frame and seals it: the
    /// frame joins the replay log, delivery is attempted to every sink,
    /// `done` is set, and the sinks are dropped (the stream is
    /// complete). Returns `None` when another path (worker vs watchdog
    /// vs shutdown) already finished the batch, otherwise the number of
    /// sinks delivery was attempted to.
    fn finish(&self, resp: &Response, shared: &Shared, count_served: bool) -> Option<usize> {
        let mut inner = self.inner.lock().unwrap();
        if inner.done {
            return None;
        }
        inner.emitted.push(resp.clone());
        let subscribers = inner.sinks.len();
        if count_served {
            // Count *before* writing: the first successful write wakes a
            // client, which may immediately query stats — the counter
            // must already include this batch's subscribers by then.
            // (Sinks that died earlier were already dropped by their
            // failed broadcast, so this is the set delivery is attempted
            // to.)
            shared.served.fetch_add(subscribers as u64, Ordering::Relaxed);
        }
        let mut cache: Vec<(u32, Vec<u8>)> = Vec::new();
        for s in &mut inner.sinks {
            let frame = frame_for(&mut cache, resp, s.version);
            if let Err(e) = s.stream.write_all(frame).and_then(|()| s.stream.flush()) {
                if is_slow_client(e.kind()) {
                    shared.evicted_slow_clients.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        inner.done = true;
        inner.sinks.clear(); // hang up: the stream is complete
        Some(subscribers)
    }
}

struct SchedState {
    queue: VecDeque<Arc<Batch>>,
    /// Queued **and running** batches, so duplicates attach to in-flight
    /// work too; entries leave when their terminal frame has been sent.
    index: HashMap<RunRequest, Arc<Batch>>,
}

struct Shared {
    runner: Runner,
    experiments: Vec<String>,
    cfg: ServerConfig,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    /// Set on `Shutdown`: no new runs are accepted (they get `Busy`).
    stop: AtomicBool,
    /// Set when the accept loop may exit: immediately on a non-draining
    /// shutdown, or once the drain completes (or its deadline passes).
    drain_done: AtomicBool,
    /// Tells the watchdog thread to exit, after the workers are joined.
    watchdog_stop: AtomicBool,
    /// When the draining shutdown began (for the drain deadline).
    drain_started: Mutex<Option<Instant>>,
    /// Terminal frames delivered to run clients (one per client still
    /// attached at completion).
    served: AtomicU64,
    /// Requests that attached to an existing batch instead of enqueueing.
    batched: AtomicU64,
    /// Requests rejected with `Busy`.
    busy_rejections: AtomicU64,
    /// Batches answered with `Expired` (queue, run, or drain deadline).
    expired: AtomicU64,
    /// Sinks evicted from a broadcast because their write timed out.
    evicted_slow_clients: AtomicU64,
    /// Runner invocations that panicked (contained; batch got `Error`).
    worker_panics: AtomicU64,
    /// Batches completed with `Done` after shutdown began.
    drained_requests: AtomicU64,
    /// Batches this server's workers stole from peer queues (see
    /// [`Server::set_steal_source`]).
    steals: AtomicU64,
    /// Installed by [`Server::set_steal_source`]; idle workers consult
    /// it between timed waits on `work_ready`.
    steal_source: Mutex<Option<StealSource>>,
}

impl Shared {
    fn stats_pairs(&self) -> Vec<(String, u64)> {
        let (depth, in_flight) = {
            let state = self.state.lock().unwrap();
            (state.queue.len() as u64, state.index.len() as u64)
        };
        let mut pairs = vec![
            ("served".to_string(), self.served.load(Ordering::Relaxed)),
            ("batched".to_string(), self.batched.load(Ordering::Relaxed)),
            ("busy_rejections".to_string(), self.busy_rejections.load(Ordering::Relaxed)),
            ("queue_depth".to_string(), depth),
            ("in_flight".to_string(), in_flight),
            ("expired".to_string(), self.expired.load(Ordering::Relaxed)),
            (
                "evicted_slow_clients".to_string(),
                self.evicted_slow_clients.load(Ordering::Relaxed),
            ),
            ("worker_panics".to_string(), self.worker_panics.load(Ordering::Relaxed)),
            ("drained_requests".to_string(), self.drained_requests.load(Ordering::Relaxed)),
            ("steals".to_string(), self.steals.load(Ordering::Relaxed)),
        ];
        if let Some(extra) = &self.cfg.stats_extra {
            pairs.extend(extra());
        }
        pairs
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound (but not yet serving) experiment server. See the
/// [module docs](self) for the scheduling contract.
///
/// # Example
///
/// An in-process loopback round-trip with a stub runner (the real
/// experiment registry is wired in by `mg serve`):
///
/// ```
/// use mg_serve::{Client, Request, Response, RunOutcome, RunRequest, Server, ServerConfig};
/// use std::sync::Arc;
///
/// let runner = Arc::new(|req: &RunRequest, _emit: mg_serve::EmitFn| {
///     Ok(RunOutcome { status: 0, payload: format!("ran {}\n", req.experiment) })
/// });
/// let server = Server::bind(
///     "127.0.0.1:0",                    // any free port
///     vec!["echo".to_string()],         // the experiment registry
///     runner,
///     ServerConfig::default(),
/// )
/// .unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
///
/// let client = Client::tcp(addr.to_string());
/// let reply = client.request(&Request::Run(RunRequest::new("echo")), |_| {}).unwrap();
/// assert_eq!(reply, Response::Done { status: 0, payload: "ran echo\n".to_string() });
///
/// client.request(&Request::Shutdown { drain: true }, |_| {}).unwrap();
/// handle.join().unwrap().unwrap();
/// ```
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds a TCP server on `addr` (e.g. `"127.0.0.1:0"` for any free
    /// port). `experiments` is the set of run-request names the server
    /// accepts; anything else is rejected with [`Response::Error`]
    /// before queueing.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        experiments: Vec<String>,
        runner: Runner,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            shared: Shared::new(experiments, runner, cfg),
        })
    }

    /// Binds a Unix-domain-socket server at `path`. An existing entry at
    /// the path is removed only when it is a **stale socket** (a socket
    /// nothing answers on): a live daemon's socket refuses with
    /// `AddrInUse`, and a non-socket file refuses with `AlreadyExists` —
    /// binding never deletes unrelated data.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the path holds a non-socket file, `AddrInUse`
    /// if another server is answering on it, plus any I/O error from
    /// binding the listener.
    #[cfg(unix)]
    pub fn bind_unix(
        path: impl AsRef<Path>,
        experiments: Vec<String>,
        runner: Runner,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        use std::io::{Error, ErrorKind};
        let path = path.as_ref();
        match std::fs::symlink_metadata(path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt;
                if !meta.file_type().is_socket() {
                    return Err(Error::new(
                        ErrorKind::AlreadyExists,
                        format!(
                            "{} exists and is not a socket; refusing to remove it",
                            path.display()
                        ),
                    ));
                }
                if UnixStream::connect(path).is_ok() {
                    return Err(Error::new(
                        ErrorKind::AddrInUse,
                        format!("a server is already answering on {}", path.display()),
                    ));
                }
                std::fs::remove_file(path)?; // stale socket from a dead server
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Server {
            listener: Listener::Unix(UnixListener::bind(path)?),
            shared: Shared::new(experiments, runner, cfg),
        })
    }

    /// The bound TCP address (`None` for Unix-socket servers); use with
    /// port `0` to discover the assigned port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// Runs the accept loop on the calling thread until a
    /// [`Request::Shutdown`] arrives and (for `drain: true`) the queue
    /// has drained, then returns.
    ///
    /// # Errors
    ///
    /// None currently: per-connection errors are handled in place and
    /// transient accept errors (aborted handshakes, fd exhaustion) are
    /// retried with a short backoff rather than stopping the server.
    /// The `Result` return is kept so future fatal conditions have a
    /// channel.
    pub fn serve(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        let mut workers = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let watchdog = {
            let shared = Arc::clone(&shared);
            let endpoint = listener.self_endpoint();
            std::thread::spawn(move || watchdog_loop(&shared, &endpoint))
        };
        let mut handlers = Vec::new();
        loop {
            let accepted: std::io::Result<Box<dyn Conn>> = match &listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            };
            let conn = match accepted {
                Ok(conn) => conn,
                // A long-running daemon must survive transient accept
                // failures (a peer resetting mid-handshake, a burst
                // exhausting fds) — dying here would orphan every
                // queued batch. Back off briefly and keep accepting;
                // the loop still exits promptly on shutdown.
                Err(_) if shared.drain_done.load(Ordering::SeqCst) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            };
            if shared.drain_done.load(Ordering::SeqCst) {
                break; // the shutdown/drain-completion wake-up connection
            }
            conn.set_io_timeout(shared.cfg.io_timeout);
            // Fault injection wraps the whole connection, so the request
            // read path and the response sink both see the plan's
            // `serve.read.*` / `serve.write.*` points.
            let conn: Box<dyn Conn> = match &shared.cfg.faults {
                Some(plan) => Box::new(FaultyStream::new(conn, Arc::clone(plan))),
                None => conn,
            };
            // Reap finished handler threads so a long-lived daemon's
            // bookkeeping stays proportional to *live* connections, not
            // to every connection ever accepted.
            handlers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            let shared = Arc::clone(&shared);
            let endpoint = listener.self_endpoint();
            handlers.push(std::thread::spawn(move || {
                handle_connection(conn, &shared, &endpoint);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        shared.work_ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        shared.watchdog_stop.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        Ok(())
    }

    /// Spawns [`Server::serve`] on a background thread and returns its
    /// handle (convenience for tests and in-process use).
    pub fn spawn(self) -> std::thread::JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.serve())
    }

    /// A [`ShardHandle`] on this server's scheduler, for peers to
    /// inspect and steal from.
    pub fn shard_handle(&self) -> ShardHandle {
        ShardHandle { shared: Arc::clone(&self.shared) }
    }

    /// Installs the steal source this server's idle workers consult: a
    /// worker finding its own queue empty calls `source` and, when it
    /// returns a [`StolenBatch`], executes it in place (with the owning
    /// server's runner and counters) instead of sleeping. Workers
    /// without a source block on their queue as before; with one they
    /// poll it between short timed waits. Call before [`Server::serve`]
    /// / [`Server::spawn`].
    pub fn set_steal_source(&self, source: StealSource) {
        *self.shared.steal_source.lock().unwrap() = Some(source);
    }
}

impl Shared {
    fn new(experiments: Vec<String>, runner: Runner, cfg: ServerConfig) -> Arc<Shared> {
        Arc::new(Shared {
            runner,
            experiments,
            cfg,
            state: Mutex::new(SchedState { queue: VecDeque::new(), index: HashMap::new() }),
            work_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            drain_done: AtomicBool::new(false),
            watchdog_stop: AtomicBool::new(false),
            drain_started: Mutex::new(None),
            served: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted_slow_clients: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            drained_requests: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            steal_source: Mutex::new(None),
        })
    }
}

/// A batch popped from one server's queue for execution on another
/// server's worker (see [`ShardHandle::steal`]). Opaque: it carries the
/// batch *and* the owning server's state, so the thief runs it with the
/// owner's runner and settles the owner's counters and request index —
/// attached clients cannot tell their batch was stolen.
pub struct StolenBatch {
    owner: Arc<Shared>,
    batch: Arc<Batch>,
}

/// A cheap handle on a running [`Server`]'s scheduler, for cross-server
/// coordination (the `mg-cluster` work-stealing layer). Obtained from
/// [`Server::shard_handle`]; stays valid after the server shuts down
/// (every operation then just observes an empty queue).
#[derive(Clone)]
pub struct ShardHandle {
    shared: Arc<Shared>,
}

impl ShardHandle {
    /// Batches queued (not yet running) right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Pops the most recently queued batch for execution elsewhere, or
    /// `None` when the queue is empty. LIFO on purpose: the oldest
    /// batches are what the owner's own workers pop next, so stealing
    /// from the back minimises contention with them. The batch stays in
    /// the owner's request index until its terminal frame — late
    /// duplicates keep attaching to it while it runs on the thief.
    pub fn steal(&self) -> Option<StolenBatch> {
        let batch = self.shared.state.lock().unwrap().queue.pop_back()?;
        Some(StolenBatch { owner: Arc::clone(&self.shared), batch })
    }

    /// The server's live counter pairs, identical to what a
    /// [`Request::Stats`] connection would see.
    pub fn stats_pairs(&self) -> Vec<(String, u64)> {
        self.shared.stats_pairs()
    }
}

/// How a handler reaches its own server to unblock the accept loop on
/// shutdown.
enum SelfEndpoint {
    Tcp(Option<SocketAddr>),
    #[cfg(unix)]
    Unix(Option<std::path::PathBuf>),
}

impl Listener {
    fn self_endpoint(&self) -> SelfEndpoint {
        match self {
            Listener::Tcp(l) => SelfEndpoint::Tcp(l.local_addr().ok()),
            #[cfg(unix)]
            Listener::Unix(l) => SelfEndpoint::Unix(
                l.local_addr().ok().and_then(|a| a.as_pathname().map(Path::to_path_buf)),
            ),
        }
    }
}

impl SelfEndpoint {
    /// Makes one throwaway connection so a blocked `accept` observes the
    /// stop flag.
    fn wake(&self) {
        match self {
            SelfEndpoint::Tcp(Some(addr)) => {
                let _ = TcpStream::connect(addr);
            }
            SelfEndpoint::Tcp(None) => {}
            #[cfg(unix)]
            SelfEndpoint::Unix(Some(path)) => {
                let _ = UnixStream::connect(path);
            }
            #[cfg(unix)]
            SelfEndpoint::Unix(None) => {}
        }
    }
}

/// A connection stream: readable for the request, then converted into a
/// write-only sink.
trait Conn: std::io::Read + Write + Send {
    fn into_sink(self: Box<Self>) -> Box<dyn Write + Send>;

    /// Bounds every read and write on the stream (see
    /// [`ServerConfig::io_timeout`]).
    fn set_io_timeout(&self, timeout: Duration);

    /// Tightens only the write bound (see
    /// [`ServerConfig::slow_client_timeout`]), applied once the stream
    /// becomes a broadcast sink.
    fn set_write_deadline(&self, timeout: Duration);
}

impl Conn for TcpStream {
    fn into_sink(self: Box<Self>) -> Box<dyn Write + Send> {
        self
    }

    fn set_io_timeout(&self, timeout: Duration) {
        let _ = self.set_read_timeout(Some(timeout));
        let _ = self.set_write_timeout(Some(timeout));
    }

    fn set_write_deadline(&self, timeout: Duration) {
        let _ = self.set_write_timeout(Some(timeout));
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn into_sink(self: Box<Self>) -> Box<dyn Write + Send> {
        self
    }

    fn set_io_timeout(&self, timeout: Duration) {
        let _ = self.set_read_timeout(Some(timeout));
        let _ = self.set_write_timeout(Some(timeout));
    }

    fn set_write_deadline(&self, timeout: Duration) {
        let _ = self.set_write_timeout(Some(timeout));
    }
}

impl Conn for FaultyStream<Box<dyn Conn>> {
    fn into_sink(self: Box<Self>) -> Box<dyn Write + Send> {
        self // keeps injecting write faults as a sink
    }

    fn set_io_timeout(&self, timeout: Duration) {
        self.get_ref().set_io_timeout(timeout);
    }

    fn set_write_deadline(&self, timeout: Duration) {
        self.get_ref().set_write_deadline(timeout);
    }
}

/// Best-effort single-frame reply on a stream we are about to drop.
fn reply(stream: &mut dyn Write, resp: &Response) {
    let frame = encode_frame(resp);
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
}

fn handle_connection(mut conn: Box<dyn Conn>, shared: &Shared, endpoint: &SelfEndpoint) {
    let version = match read_hello(&mut conn) {
        Ok(v) => v,
        Err(_) => return, // not a protocol client; nothing to say
    };
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        reply(
            &mut *conn,
            &Response::Error {
                message: format!(
                    "protocol version mismatch: client {version}, server speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                ),
            },
        );
        return;
    }
    let request = match read_frame::<Request>(&mut conn) {
        Ok(r) => r,
        // A malformed frame deserves a protocol-level answer; a
        // transport-level failure (reset, EOF mid-frame) does not —
        // the peer is gone or the stream is broken, and a terminal
        // Error frame here would read as a non-retryable request
        // failure to a client that merely hit a torn connection.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            reply(&mut *conn, &Response::Error { message: format!("bad request frame: {e}") });
            return;
        }
        Err(_) => return,
    };
    match request {
        Request::Ping => reply(&mut *conn, &Response::Pong { protocol: PROTOCOL_VERSION }),
        Request::Stats => reply(&mut *conn, &Response::Stats { pairs: shared.stats_pairs() }),
        Request::Shutdown { drain } => {
            reply(&mut *conn, &Response::Done { status: 0, payload: "shutting down".into() });
            let already_stopping = shared.stop.swap(true, Ordering::SeqCst);
            if drain {
                if !already_stopping {
                    *shared.drain_started.lock().unwrap() = Some(Instant::now());
                }
                // The watchdog flips `drain_done` once the queue and the
                // in-flight index are empty (or the drain deadline
                // passes).
            } else {
                // Abandon the queue: queued clients are answered now,
                // running batches finish on their workers.
                let abandoned: Vec<Arc<Batch>> = {
                    let mut state = shared.state.lock().unwrap();
                    let drained: Vec<Arc<Batch>> = state.queue.drain(..).collect();
                    for b in &drained {
                        if let Some(indexed) = state.index.get(&b.req) {
                            if Arc::ptr_eq(indexed, b) {
                                state.index.remove(&b.req);
                            }
                        }
                    }
                    drained
                };
                for b in abandoned {
                    b.finish(
                        &Response::Error { message: "server is shutting down".into() },
                        shared,
                        false,
                    );
                }
                shared.drain_done.store(true, Ordering::SeqCst);
            }
            shared.work_ready.notify_all();
            endpoint.wake();
        }
        Request::Run(req) => handle_run(conn, shared, req, version),
    }
}

fn handle_run(conn: Box<dyn Conn>, shared: &Shared, req: RunRequest, version: u32) {
    conn.set_write_deadline(shared.cfg.slow_client_timeout);
    let mut sink = ClientSink { stream: conn.into_sink(), version };
    if !shared.experiments.iter().any(|e| e == &req.experiment) {
        reply(
            &mut *sink.stream,
            &Response::Error { message: format!("unknown experiment {:?}", req.experiment) },
        );
        return;
    }
    loop {
        // The stop check must happen under the state lock: workers exit
        // on (queue empty && stop), both read under the same lock, so a
        // batch can never be enqueued after the last worker has decided
        // to exit.
        let mut state = shared.state.lock().unwrap();
        if shared.stop.load(Ordering::SeqCst) {
            // Shutting down (possibly draining): refuse new work with
            // the same terminal the full queue uses, so clients retry
            // against the replacement daemon instead of erroring out.
            let depth = state.queue.len() as u64;
            drop(state);
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            reply(
                &mut *sink.stream,
                &Response::Busy { depth, capacity: shared.cfg.max_queue as u64 },
            );
            return;
        }
        // Attach to an equal queued/running batch: replay its frames,
        // then receive the live stream. The scheduler lock is released
        // first — replaying to a slow client may block up to the socket
        // timeout and must only stall this batch (its `inner` lock), not
        // the whole daemon.
        if let Some(batch) = state.index.get(&req).map(Arc::clone) {
            drop(state);
            let mut inner = batch.inner.lock().unwrap();
            if inner.done {
                // Completed while unlocked; the worker is about to drop
                // (or just dropped) the index entry — retry as new.
                drop(inner);
                std::thread::yield_now();
                continue;
            }
            let mut alive = true;
            for resp in &inner.emitted {
                let frame = encode_frame(&resp.for_version(sink.version));
                if sink.stream.write_all(&frame).and_then(|()| sink.stream.flush()).is_err() {
                    alive = false;
                    break;
                }
            }
            if alive {
                inner.sinks.push(sink);
            }
            shared.batched.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if state.queue.len() >= shared.cfg.max_queue {
            let depth = state.queue.len() as u64;
            drop(state);
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            reply(
                &mut *sink.stream,
                &Response::Busy { depth, capacity: shared.cfg.max_queue as u64 },
            );
            return;
        }
        let position = state.queue.len() as u64;
        let batch = Arc::new(Batch {
            req: req.clone(),
            enqueued_at: Instant::now(),
            inner: Mutex::new(BatchInner { sinks: vec![sink], ..Default::default() }),
        });
        // Record `Queued` before the batch becomes visible to workers,
        // so it is always the stream's first frame (and is replayed to
        // joiners). The write happens under the scheduler lock, but it
        // is one small frame into a freshly accepted socket's empty
        // send buffer — it cannot block on the peer.
        batch.broadcast(&Response::Queued { position }, shared);
        state.queue.push_back(Arc::clone(&batch));
        state.index.insert(req, Arc::clone(&batch));
        drop(state);
        shared.work_ready.notify_one();
        return;
    }
}

/// How long a worker with an installed steal source sleeps between
/// consulting it when both its own queue and every peer queue are empty.
const STEAL_POLL: Duration = Duration::from_millis(10);

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (owner, batch) = 'acquire: {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(batch) = state.queue.pop_front() {
                    break 'acquire (Arc::clone(shared), batch);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let source = shared.steal_source.lock().unwrap().clone();
                match source {
                    Some(src) => {
                        // The source locks *other* servers' schedulers;
                        // holding our own here while a peer's thief
                        // holds theirs and locks ours would deadlock.
                        drop(state);
                        if let Some(StolenBatch { owner, batch }) = src() {
                            shared.steals.fetch_add(1, Ordering::Relaxed);
                            break 'acquire (owner, batch);
                        }
                        state = shared.state.lock().unwrap();
                        // Timed wait: peer queues fill without signalling
                        // our condvar, so re-poll the source periodically.
                        state = shared.work_ready.wait_timeout(state, STEAL_POLL).unwrap().0;
                    }
                    None => state = shared.work_ready.wait(state).unwrap(),
                }
            }
        };
        run_batch(&owner, &batch);
    }
}

/// Executes one batch to its terminal frame against `owner` — the
/// server the batch was accepted by, which is *not* the popping worker's
/// server when the batch was stolen. Every side effect (runner, fault
/// point, counters, index cleanup) lands on the owner, so stealing is
/// invisible to clients and to the owner's stats invariants.
fn run_batch(owner: &Arc<Shared>, batch: &Arc<Batch>) {
    batch.inner.lock().unwrap().started_at = Some(Instant::now());
    let emit: EmitFn = {
        let batch = Arc::clone(batch);
        let owner = Arc::clone(owner);
        Arc::new(move |resp: Response| batch.broadcast(&resp, &owner))
    };
    // Contain runner panics: the batch is answered with an `Error`
    // frame (replayed to every joiner) and the worker thread
    // survives to take the next batch. The `serve.worker.panic`
    // fault point fires *inside* the guard, exercising exactly this
    // path.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = &owner.cfg.faults {
            if plan.fires(points::WORKER_PANIC) {
                panic!("injected fault: worker panic");
            }
        }
        (owner.runner)(&batch.req, emit)
    }));
    let terminal = match outcome {
        Ok(Ok(RunOutcome { status, payload })) => {
            Response::Done { status: status as i64, payload }
        }
        Ok(Err(message)) => Response::Error { message },
        Err(panic) => {
            owner.worker_panics.fetch_add(1, Ordering::Relaxed);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Response::Error { message: format!("worker panicked: {msg}") }
        }
    };
    // Terminal delivery needs only the batch's own lock: an
    // attacher that still finds the index entry afterwards locks
    // `inner`, sees `done`, and retries as a fresh request. Writing
    // to client sockets while holding the scheduler lock would let
    // one slow client stall every connection on the daemon.
    let delivered = batch.finish(&terminal, owner, true);
    if delivered.is_some()
        && matches!(terminal, Response::Done { .. })
        && owner.stop.load(Ordering::SeqCst)
    {
        owner.drained_requests.fetch_add(1, Ordering::Relaxed);
    }
    // Only the index removal touches the scheduler lock.
    let mut state = owner.state.lock().unwrap();
    if let Some(indexed) = state.index.get(&batch.req) {
        if Arc::ptr_eq(indexed, batch) {
            state.index.remove(&batch.req);
        }
    }
}

/// Watchdog tick. Deadline precision is ± one tick; the budgets this
/// enforces are tens of milliseconds and up.
const WATCHDOG_TICK: Duration = Duration::from_millis(25);

/// Enforces [`ServerConfig::queue_deadline`] /
/// [`ServerConfig::run_deadline`] / [`ServerConfig::drain_deadline`] and
/// detects drain completion. Runs until [`Server::serve`] is about to
/// return.
fn watchdog_loop(shared: &Shared, endpoint: &SelfEndpoint) {
    loop {
        std::thread::sleep(WATCHDOG_TICK);
        if shared.watchdog_stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        let draining = shared.stop.load(Ordering::SeqCst);
        let drain_expired = draining
            && shared
                .drain_started
                .lock()
                .unwrap()
                .is_some_and(|t| now.duration_since(t) > shared.cfg.drain_deadline);
        let mut to_expire: Vec<(Arc<Batch>, Response)> = Vec::new();
        {
            let mut state = shared.state.lock().unwrap();
            // Queue-phase budgets; a passed drain deadline expires
            // whatever is still queued regardless of its age.
            if shared.cfg.queue_deadline.is_some() || drain_expired {
                let mut kept = VecDeque::new();
                while let Some(b) = state.queue.pop_front() {
                    let waited = now.duration_since(b.enqueued_at);
                    let over_queue =
                        shared.cfg.queue_deadline.is_some_and(|budget| waited > budget);
                    if !(over_queue || drain_expired) {
                        kept.push_back(b);
                        continue;
                    }
                    let (phase, budget) = if over_queue {
                        ("queue", shared.cfg.queue_deadline.unwrap())
                    } else {
                        ("drain", shared.cfg.drain_deadline)
                    };
                    if let Some(indexed) = state.index.get(&b.req) {
                        if Arc::ptr_eq(indexed, &b) {
                            state.index.remove(&b.req);
                        }
                    }
                    to_expire.push((
                        b,
                        Response::Expired {
                            phase: phase.into(),
                            waited_ms: waited.as_millis() as u64,
                            budget_ms: budget.as_millis() as u64,
                        },
                    ));
                }
                state.queue = kept;
            }
            // Run-phase budgets: release the clients and free the index
            // slot; the runner itself keeps executing (threads are
            // never killed) and its result is discarded.
            if let Some(budget) = shared.cfg.run_deadline {
                let over: Vec<(Arc<Batch>, Duration)> = state
                    .index
                    .values()
                    .filter_map(|b| {
                        let inner = b.inner.lock().unwrap();
                        let started = inner.started_at?;
                        let ran = now.duration_since(started);
                        (!inner.done && ran > budget).then(|| (Arc::clone(b), ran))
                    })
                    .collect();
                for (b, ran) in over {
                    state.index.remove(&b.req);
                    to_expire.push((
                        b,
                        Response::Expired {
                            phase: "run".into(),
                            waited_ms: ran.as_millis() as u64,
                            budget_ms: budget.as_millis() as u64,
                        },
                    ));
                }
            }
            // Drain completion: nothing queued, nothing in flight.
            if draining
                && !shared.drain_done.load(Ordering::SeqCst)
                && to_expire.is_empty()
                && state.queue.is_empty()
                && state.index.is_empty()
            {
                shared.drain_done.store(true, Ordering::SeqCst);
                endpoint.wake();
            }
        }
        for (batch, resp) in to_expire {
            if batch.finish(&resp, shared, false).is_some() {
                shared.expired.fetch_add(1, Ordering::Relaxed);
            }
        }
        if drain_expired && !shared.drain_done.load(Ordering::SeqCst) {
            shared.drain_done.store(true, Ordering::SeqCst);
            shared.work_ready.notify_all();
            endpoint.wake();
        }
    }
}
