//! The thin wire client (`mg client` is a CLI shell over this).

use crate::protocol::{send_hello, Request, Response};
use mg_isa::wire::{read_frame, write_frame};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where the server lives.
#[derive(Clone, Debug)]
enum Endpoint {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A client for one server endpoint. Connections are per-request: each
/// [`Client::request`] opens a connection, sends the handshake and one
/// request frame, and reads response frames to the terminal one.
///
/// # Example
///
/// A loopback ping against an in-process server:
///
/// ```
/// use mg_serve::{Client, Request, Response, RunOutcome, Server, ServerConfig};
/// use std::sync::Arc;
///
/// let runner = Arc::new(|_req: &mg_serve::RunRequest, _emit: mg_serve::EmitFn| {
///     Ok(RunOutcome { status: 0, payload: String::new() })
/// });
/// let server = Server::bind("127.0.0.1:0", vec![], runner, ServerConfig::default()).unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
///
/// let client = Client::tcp(addr.to_string());
/// assert_eq!(client.ping().unwrap(), mg_serve::PROTOCOL_VERSION);
///
/// client.request(&Request::Shutdown { drain: true }, |_| {}).unwrap();
/// handle.join().unwrap().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Client {
    endpoint: Endpoint,
}

/// Capped exponential backoff with deterministic jitter, used by
/// [`Client::request_with_retry`].
///
/// The jitter is a pure function of `(jitter_seed, attempt)` — an
/// xorshift step, no wall clock, no global RNG — so a retry schedule
/// replays exactly under the same seed (the property `mg chaos` leans
/// on). Each failed attempt `i` (0-based) sleeps
/// `min(backoff_ms · 2^i, max_backoff_ms)` scaled by a jitter factor in
/// `[0.5, 1.0)`.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; `1` means no retries).
    pub attempts: u32,
    /// Base backoff before the second attempt, in milliseconds.
    pub backoff_ms: u64,
    /// Cap on a single backoff sleep, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 3, backoff_ms: 50, max_backoff_ms: 2_000, jitter_seed: 0 }
    }
}

impl RetryPolicy {
    /// The sleep before attempt `attempt + 1` (0-based failed attempt).
    pub fn delay(&self, attempt: u32) -> std::time::Duration {
        let exp = self.backoff_ms.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.max_backoff_ms);
        // A splitmix64 finalizer over (seed, attempt) → jitter in
        // [0.5, 1). Full avalanche, so adjacent seeds diverge (a
        // plain xorshift state seeded with `seed ^ ...` loses the
        // seed's low bits to the zero-state guard).
        let mut x = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let jitter_permille = 500 + (x % 500);
        std::time::Duration::from_millis(
            (u128::from(capped) * u128::from(jitter_permille) / 1000) as u64,
        )
    }
}

impl Client {
    /// A client for a TCP server at `addr` (`host:port`).
    pub fn tcp(addr: impl Into<String>) -> Client {
        Client { endpoint: Endpoint::Tcp(addr.into()) }
    }

    /// A client for a Unix-domain-socket server at `path`.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Client {
        Client { endpoint: Endpoint::Unix(path.into()) }
    }

    /// Sends `request` and reads the response stream: `on_event` sees
    /// every non-terminal frame ([`Response::Queued`],
    /// [`Response::Cell`]) in order, and the terminal frame is returned.
    ///
    /// # Errors
    ///
    /// Any I/O or frame-decoding error, including the server hanging up
    /// before a terminal frame.
    pub fn request(
        &self,
        request: &Request,
        mut on_event: impl FnMut(&Response),
    ) -> std::io::Result<Response> {
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                self.exchange(stream, request, &mut on_event)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                self.exchange(stream, request, &mut on_event)
            }
        }
    }

    fn exchange(
        &self,
        mut stream: impl Read + Write,
        request: &Request,
        on_event: &mut impl FnMut(&Response),
    ) -> std::io::Result<Response> {
        send_hello(&mut stream)?;
        write_frame(&mut stream, request)?;
        loop {
            let resp = read_frame::<Response>(&mut stream)?;
            if resp.is_terminal() {
                return Ok(resp);
            }
            on_event(&resp);
        }
    }

    /// [`Client::request`] under `policy`: failed connects, mid-stream
    /// I/O errors, **and** terminal [`Response::Busy`] replies are all
    /// retried (with the policy's capped, jittered backoff) until the
    /// attempt budget runs out.
    ///
    /// Resumption is idempotent: because equal requests coalesce
    /// server-side and the batch replays its emitted frames to a
    /// re-connecting client, a retried stream repeats the frames already
    /// seen — they are deduplicated *by position* (the first `n`
    /// non-terminal frames of the replay are skipped when `n` were
    /// already forwarded), so `on_event` sees each frame exactly once
    /// even when the connection dies mid-stream.
    ///
    /// # Errors
    ///
    /// The last attempt's I/O error once the budget is exhausted.
    pub fn request_with_retry(
        &self,
        request: &Request,
        policy: &RetryPolicy,
        mut on_event: impl FnMut(&Response),
    ) -> std::io::Result<Response> {
        let attempts = policy.attempts.max(1);
        let mut forwarded = 0usize;
        let mut attempt = 0u32;
        loop {
            let mut seen = 0usize;
            let result = self.request(request, |resp| {
                seen += 1;
                if seen > forwarded {
                    forwarded = seen;
                    on_event(resp);
                }
            });
            match result {
                Ok(Response::Busy { .. }) if attempt + 1 < attempts => {}
                Ok(terminal) => return Ok(terminal),
                Err(_) if attempt + 1 < attempts => {}
                Err(e) => return Err(e),
            }
            std::thread::sleep(policy.delay(attempt));
            attempt += 1;
        }
    }

    /// Pings the server and returns its protocol version.
    ///
    /// # Errors
    ///
    /// Any I/O error, or [`std::io::ErrorKind::InvalidData`] if the
    /// terminal frame is not a [`Response::Pong`].
    pub fn ping(&self) -> std::io::Result<u32> {
        match self.request(&Request::Ping, |_| {})? {
            Response::Pong { protocol } => Ok(protocol),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Pong, got {other:?}"),
            )),
        }
    }
}
