//! The thin wire client (`mg client` is a CLI shell over this).

use crate::protocol::{send_hello, Request, Response};
use mg_isa::wire::{read_frame, write_frame};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where the server lives.
#[derive(Clone, Debug)]
enum Endpoint {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A client for one server endpoint. Connections are per-request: each
/// [`Client::request`] opens a connection, sends the handshake and one
/// request frame, and reads response frames to the terminal one.
///
/// # Example
///
/// A loopback ping against an in-process server:
///
/// ```
/// use mg_serve::{Client, Request, Response, RunOutcome, Server, ServerConfig};
/// use std::sync::Arc;
///
/// let runner = Arc::new(|_req: &mg_serve::RunRequest, _emit: mg_serve::EmitFn| {
///     Ok(RunOutcome { status: 0, payload: String::new() })
/// });
/// let server = Server::bind("127.0.0.1:0", vec![], runner, ServerConfig::default()).unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
///
/// let client = Client::tcp(addr.to_string());
/// assert_eq!(client.ping().unwrap(), mg_serve::PROTOCOL_VERSION);
///
/// client.request(&Request::Shutdown, |_| {}).unwrap();
/// handle.join().unwrap().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Client {
    endpoint: Endpoint,
}

impl Client {
    /// A client for a TCP server at `addr` (`host:port`).
    pub fn tcp(addr: impl Into<String>) -> Client {
        Client { endpoint: Endpoint::Tcp(addr.into()) }
    }

    /// A client for a Unix-domain-socket server at `path`.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Client {
        Client { endpoint: Endpoint::Unix(path.into()) }
    }

    /// Sends `request` and reads the response stream: `on_event` sees
    /// every non-terminal frame ([`Response::Queued`],
    /// [`Response::Cell`]) in order, and the terminal frame is returned.
    ///
    /// # Errors
    ///
    /// Any I/O or frame-decoding error, including the server hanging up
    /// before a terminal frame.
    pub fn request(
        &self,
        request: &Request,
        mut on_event: impl FnMut(&Response),
    ) -> std::io::Result<Response> {
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                self.exchange(stream, request, &mut on_event)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                self.exchange(stream, request, &mut on_event)
            }
        }
    }

    fn exchange(
        &self,
        mut stream: impl Read + Write,
        request: &Request,
        on_event: &mut impl FnMut(&Response),
    ) -> std::io::Result<Response> {
        send_hello(&mut stream)?;
        write_frame(&mut stream, request)?;
        loop {
            let resp = read_frame::<Response>(&mut stream)?;
            if resp.is_terminal() {
                return Ok(resp);
            }
            on_event(&resp);
        }
    }

    /// Pings the server and returns its protocol version.
    ///
    /// # Errors
    ///
    /// Any I/O error, or [`std::io::ErrorKind::InvalidData`] if the
    /// terminal frame is not a [`Response::Pong`].
    pub fn ping(&self) -> std::io::Result<u32> {
        match self.request(&Request::Ping, |_| {})? {
            Response::Pong { protocol } => Ok(protocol),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Pong, got {other:?}"),
            )),
        }
    }
}
