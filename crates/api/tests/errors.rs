//! The API's no-panic contract: every malformed request and every
//! misbehaving extension comes back across the `Session` boundary as a
//! typed [`MgError`] with the right kind — never a panic, never a
//! poisoned session.

use mg_api::{
    CellSpec, InputSelector, MgError, MgErrorKind, NamedPolicy, Policy, PolicySelector,
    RewriteStyle, RunSpec, Session, SimConfig, Suite, WorkloadSource,
};
use mg_isa::{Memory, Program};
use mg_workloads::Input;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn kind(result: Result<mg_api::RunOutcome, MgError>) -> MgErrorKind {
    match result {
        Err(e) => e.kind(),
        Ok(_) => panic!("expected an error"),
    }
}

fn baseline_spec() -> RunSpec {
    RunSpec::new().quick(true).cell(CellSpec::baseline(SimConfig::baseline()))
}

#[test]
fn invalid_workload_id_is_invalid_spec() {
    let session = Session::default();
    let err = session.run(&baseline_spec().workloads(["nonesuch"])).unwrap_err();
    assert_eq!(err.kind(), MgErrorKind::InvalidSpec);
    assert!(err.to_string().contains("nonesuch"), "names the offender: {err}");
    assert_eq!(err.exit_code(), 64);
}

#[test]
fn unknown_policy_name_is_invalid_spec() {
    let session = Session::default();
    let spec = RunSpec::new().workloads(["crc32"]).quick(true).cell(CellSpec::mini_graph(
        PolicySelector::Named("galactic".into()),
        RewriteStyle::NopPadded,
        SimConfig::mg_integer_memory(),
    ));
    let err = session.run(&spec).unwrap_err();
    assert_eq!(err.kind(), MgErrorKind::InvalidSpec);
    assert!(err.to_string().contains("galactic"));
    // A registered preset under that name resolves the same spec.
    let session = Session::builder()
        .register_policy(Arc::new(NamedPolicy::new("galactic", Policy::integer_memory())))
        .build();
    assert!(session.resolve_policy(&PolicySelector::Named("galactic".into())).is_ok());
}

#[test]
fn malformed_input_selector_is_invalid_spec() {
    let session = Session::default();
    let spec = baseline_spec().input(InputSelector::Named("gigantic".into()));
    assert_eq!(kind(session.run(&spec)), MgErrorKind::InvalidSpec);
}

#[test]
fn empty_specs_are_invalid() {
    let session = Session::default();
    assert_eq!(kind(session.run(&RunSpec::new())), MgErrorKind::InvalidSpec, "no cells");
    let no_names = baseline_spec().workloads(Vec::<String>::new());
    assert_eq!(kind(session.run(&no_names)), MgErrorKind::InvalidSpec, "no workloads");
}

#[test]
fn unsatisfiable_policies_are_selection_errors() {
    let session = Session::default();
    for bad in [
        Policy::default().with_max_size(1), // nothing of size < 2 is a mini-graph
        Policy::default().with_capacity(0), // an MGT holding no templates
    ] {
        let spec = RunSpec::new().workloads(["crc32"]).quick(true).cell(CellSpec::mini_graph(
            PolicySelector::Explicit(bad),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        ));
        assert_eq!(kind(session.run(&spec)), MgErrorKind::Selection);
    }
}

/// A source whose build reports a typed failure: the session must pass
/// the source's own kind through, not reclassify it.
struct FailingSource;

impl WorkloadSource for FailingSource {
    fn name(&self) -> &str {
        "fails.to.build"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn build(&self, _input: &Input) -> Result<(Program, Memory), MgError> {
        Err(MgError::parse("the toy workload's source text is unparseable"))
    }
}

#[test]
fn failing_source_build_keeps_its_error_kind() {
    let session = Session::builder().register_workload(Arc::new(FailingSource)).build();
    let err = session.run(&baseline_spec().workloads(["fails.to.build"])).unwrap_err();
    assert_eq!(err.kind(), MgErrorKind::Parse, "source-chosen kind preserved: {err}");
}

/// A source that panics mid-build — the "poisoned `PrepPool` entry"
/// scenario: the pool slot the panic interrupted must stay retryable
/// and every attempt must surface as a typed error, not a panic.
struct PanickingSource {
    attempts: AtomicU64,
}

impl WorkloadSource for PanickingSource {
    fn name(&self) -> &str {
        "panics.in.build"
    }
    fn suite(&self) -> Suite {
        Suite::MiBench
    }
    fn build(&self, _input: &Input) -> Result<(Program, Memory), MgError> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        panic!("synthetic panic inside an out-of-tree workload source");
    }
}

#[test]
fn panicking_source_returns_exec_error_and_pool_stays_usable() {
    let source = Arc::new(PanickingSource { attempts: AtomicU64::new(0) });
    let session = Session::builder()
        .register_workload(Arc::clone(&source) as Arc<dyn WorkloadSource>)
        .build();
    let spec = baseline_spec().workloads(["panics.in.build"]);

    // Quiet the default panic hook for the intentional panics; restore
    // it no matter how the assertions go.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let first = session.run(&spec);
    let second = session.run(&spec);
    let healthy = session
        .run(&baseline_spec().workloads(["crc32"]).input(InputSelector::Named("tiny".into())));
    std::panic::set_hook(hook);

    for attempt in [first, second] {
        let err = attempt.expect_err("panicking source cannot produce a matrix");
        assert_eq!(err.kind(), MgErrorKind::Exec, "panic surfaced as Exec: {err}");
        assert!(err.to_string().contains("panic"), "names the panic: {err}");
    }
    assert_eq!(source.attempts.load(Ordering::Relaxed), 2, "slot retried, not wedged");
    assert_eq!(session.pool().prepared(), 1, "the pool still prepares healthy workloads");
    let healthy = healthy.expect("an unrelated workload still runs on the same session");
    assert_eq!(healthy.rows.len(), 1);
    assert!(healthy.rows[0].stats[0].cycles > 0);
}

/// The streaming observer hook: cells arrive while the matrix runs and
/// the deterministic outcome is unaffected.
#[test]
fn observer_streams_every_cell() {
    let session = Session::default();
    let spec = RunSpec::new()
        .workloads(["crc32", "bitcount"])
        .input(InputSelector::Named("tiny".into()))
        .quick(true)
        .cell(CellSpec::baseline(SimConfig::baseline()))
        .cell(CellSpec::mini_graph(
            PolicySelector::Named("intmem".into()),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        ));
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let outcome = session
        .run_with_observer(&spec, Arc::new(move |cell| sink.lock().unwrap().push(cell.clone())))
        .expect("runs");
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 4, "one CellResult per matrix cell");
    assert_eq!(outcome.rows.len(), 2);
    assert_eq!(outcome.labels, vec!["baseline".to_string(), "mg".to_string()]);
    for row in &outcome.rows {
        let streamed = seen
            .iter()
            .find(|c| c.workload == row.workload && c.label == "baseline")
            .expect("baseline cell streamed");
        assert_eq!(streamed.cycles, row.stats[0].cycles, "streamed == deterministic matrix");
    }
}
