//! The unified error hierarchy of the embeddable API.
//!
//! Every failure a [`Session`](crate::session::Session) can produce is an
//! [`MgError`], classified by pipeline stage ([`MgErrorKind`]) and
//! carrying the lower layer's error as its [`std::error::Error::source`]:
//! an `ExecError` raised in `mg-isa`'s functional simulator is still
//! reachable from the error an embedding host receives, however many
//! layers it crossed on the way up.
//!
//! The kinds map one-to-one onto documented CLI exit codes
//! ([`MgError::exit_code`]), extending the daemon's `EXIT_BUSY = 75`
//! convention with the neighbouring BSD `sysexits` range — scripts can
//! key retries and diagnostics on the status alone.

use std::error::Error;
use std::fmt;

/// A boxed source error carried inside an [`MgError`].
pub type SourceError = Box<dyn Error + Send + Sync + 'static>;

/// The pipeline stage an [`MgError`] belongs to. `Copy`, ordered, and
/// stable — the exit-code mapping and the serve-side diagnostics key on
/// it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MgErrorKind {
    /// Bytes or text failed to decode: assembler input, wire-codec
    /// payloads, malformed documents.
    Parse,
    /// Functional execution failed: a workload faulted, exceeded its
    /// step budget, or its preparation panicked.
    Exec,
    /// Mini-graph selection was given an unsatisfiable configuration
    /// (e.g. a policy that can admit nothing).
    Selection,
    /// The DISE rewrite produced an image that no longer executes.
    Rewrite,
    /// The persistent artifact cache failed in a way that is not a plain
    /// miss (misses are silent by design).
    Cache,
    /// An I/O failure outside the cache and the wire protocol.
    Io,
    /// The serve wire protocol failed: handshake, framing, version
    /// mismatch, or transport errors.
    Protocol,
    /// A request was structurally invalid: unknown workload, policy,
    /// input, experiment, or format selector, or an empty matrix.
    InvalidSpec,
    /// A deadline expired: the daemon answered `Expired` (queue, run, or
    /// drain budget exhausted), or a retry budget ran out against a
    /// persistently-failing resource.
    Timeout,
}

impl MgErrorKind {
    /// All kinds, in declaration order.
    pub const ALL: [MgErrorKind; 9] = [
        MgErrorKind::Parse,
        MgErrorKind::Exec,
        MgErrorKind::Selection,
        MgErrorKind::Rewrite,
        MgErrorKind::Cache,
        MgErrorKind::Io,
        MgErrorKind::Protocol,
        MgErrorKind::InvalidSpec,
        MgErrorKind::Timeout,
    ];

    /// The stable lower-case label (used in diagnostics and docs).
    pub fn label(self) -> &'static str {
        match self {
            MgErrorKind::Parse => "parse",
            MgErrorKind::Exec => "exec",
            MgErrorKind::Selection => "selection",
            MgErrorKind::Rewrite => "rewrite",
            MgErrorKind::Cache => "cache",
            MgErrorKind::Io => "io",
            MgErrorKind::Protocol => "protocol",
            MgErrorKind::InvalidSpec => "invalid-spec",
            MgErrorKind::Timeout => "timeout",
        }
    }

    /// The documented CLI exit status for this kind (see `mg help` and
    /// `docs/API.md`). Extends `EXIT_BUSY = 75` (`EX_TEMPFAIL`, reserved
    /// for the daemon's backpressure reply) with the surrounding BSD
    /// `sysexits` range; `75` is deliberately not produced by any kind.
    pub fn exit_code(self) -> i32 {
        match self {
            MgErrorKind::InvalidSpec => 64, // EX_USAGE
            MgErrorKind::Parse => 65,       // EX_DATAERR
            MgErrorKind::Exec => 70,        // EX_SOFTWARE
            MgErrorKind::Selection => 71,
            MgErrorKind::Rewrite => 72,
            MgErrorKind::Cache => 73,
            MgErrorKind::Io => 74,       // EX_IOERR
            MgErrorKind::Protocol => 76, // EX_PROTOCOL
            MgErrorKind::Timeout => 77,  // EX_NOPERM's slot is free in our range
        }
    }
}

impl fmt::Display for MgErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The message-plus-source payload every [`MgError`] variant carries.
#[derive(Debug)]
pub struct Context {
    /// Human-readable description of the failure.
    pub message: String,
    source: Option<SourceError>,
}

impl Context {
    fn new(message: impl Into<String>) -> Context {
        Context { message: message.into(), source: None }
    }
}

/// A failure of the mini-graphs pipeline, classified by stage.
///
/// Construct with the per-kind constructors ([`MgError::invalid_spec`],
/// [`MgError::exec`], …), chain an underlying cause with
/// [`MgError::with_source`], and branch on [`MgError::kind`]. The CLI
/// maps kinds to exit codes through [`MgError::exit_code`].
#[derive(Debug)]
pub enum MgError {
    /// See [`MgErrorKind::Parse`].
    Parse(Context),
    /// See [`MgErrorKind::Exec`].
    Exec(Context),
    /// See [`MgErrorKind::Selection`].
    Selection(Context),
    /// See [`MgErrorKind::Rewrite`].
    Rewrite(Context),
    /// See [`MgErrorKind::Cache`].
    Cache(Context),
    /// See [`MgErrorKind::Io`].
    Io(Context),
    /// See [`MgErrorKind::Protocol`].
    Protocol(Context),
    /// See [`MgErrorKind::InvalidSpec`].
    InvalidSpec(Context),
    /// See [`MgErrorKind::Timeout`].
    Timeout(Context),
}

macro_rules! constructors {
    ($(($ctor:ident, $variant:ident)),* $(,)?) => {
        $(
            #[doc = concat!("Creates an [`MgError::", stringify!($variant), "`] with `message`.")]
            pub fn $ctor(message: impl Into<String>) -> MgError {
                MgError::$variant(Context::new(message))
            }
        )*
    };
}

impl MgError {
    constructors![
        (parse, Parse),
        (exec, Exec),
        (selection, Selection),
        (rewrite, Rewrite),
        (cache, Cache),
        (io, Io),
        (protocol, Protocol),
        (invalid_spec, InvalidSpec),
        (timeout, Timeout),
    ];

    /// Attaches the underlying cause (available through
    /// [`Error::source`]).
    pub fn with_source(mut self, source: impl Error + Send + Sync + 'static) -> MgError {
        self.context_mut().source = Some(Box::new(source));
        self
    }

    /// Attaches an already-boxed cause.
    pub fn with_boxed_source(mut self, source: SourceError) -> MgError {
        self.context_mut().source = Some(source);
        self
    }

    /// The stage this error belongs to.
    pub fn kind(&self) -> MgErrorKind {
        match self {
            MgError::Parse(_) => MgErrorKind::Parse,
            MgError::Exec(_) => MgErrorKind::Exec,
            MgError::Selection(_) => MgErrorKind::Selection,
            MgError::Rewrite(_) => MgErrorKind::Rewrite,
            MgError::Cache(_) => MgErrorKind::Cache,
            MgError::Io(_) => MgErrorKind::Io,
            MgError::Protocol(_) => MgErrorKind::Protocol,
            MgError::InvalidSpec(_) => MgErrorKind::InvalidSpec,
            MgError::Timeout(_) => MgErrorKind::Timeout,
        }
    }

    /// The documented CLI exit status ([`MgErrorKind::exit_code`]).
    pub fn exit_code(&self) -> i32 {
        self.kind().exit_code()
    }

    /// The human-readable message (without the source chain).
    pub fn message(&self) -> &str {
        &self.context().message
    }

    fn context(&self) -> &Context {
        match self {
            MgError::Parse(c)
            | MgError::Exec(c)
            | MgError::Selection(c)
            | MgError::Rewrite(c)
            | MgError::Cache(c)
            | MgError::Io(c)
            | MgError::Protocol(c)
            | MgError::InvalidSpec(c)
            | MgError::Timeout(c) => c,
        }
    }

    fn context_mut(&mut self) -> &mut Context {
        match self {
            MgError::Parse(c)
            | MgError::Exec(c)
            | MgError::Selection(c)
            | MgError::Rewrite(c)
            | MgError::Cache(c)
            | MgError::Io(c)
            | MgError::Protocol(c)
            | MgError::InvalidSpec(c)
            | MgError::Timeout(c) => c,
        }
    }
}

impl fmt::Display for MgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.context().message)
    }
}

impl Error for MgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.context().source.as_deref().map(|s| s as &(dyn Error + 'static))
    }
}

impl From<mg_isa::wire::WireError> for MgError {
    fn from(e: mg_isa::wire::WireError) -> MgError {
        MgError::parse(format!("wire decode failed: {e}")).with_source(e)
    }
}

impl From<mg_isa::exec::ExecError> for MgError {
    fn from(e: mg_isa::exec::ExecError) -> MgError {
        MgError::exec(format!("functional execution failed: {e}")).with_source(e)
    }
}

impl From<std::io::Error> for MgError {
    fn from(e: std::io::Error) -> MgError {
        MgError::io(e.to_string()).with_source(e)
    }
}

impl From<mg_harness::HarnessError> for MgError {
    fn from(e: mg_harness::HarnessError) -> MgError {
        use mg_harness::HarnessError as H;
        match e {
            H::UnknownWorkload { .. } => MgError::invalid_spec(e.to_string()).with_source(e),
            H::Build { workload, source } => {
                // A workload source authored against this API reports its
                // own MgError; pass it through unwrapped so the caller
                // sees the kind the source chose.
                match source.downcast::<MgError>() {
                    Ok(inner) => *inner,
                    Err(source) => MgError::exec(format!(
                        "building workload {workload:?} failed: {source}"
                    ))
                    .with_boxed_source(source),
                }
            }
            H::Exec { .. } | H::Panicked { .. } | H::Exhausted { .. } => {
                MgError::exec(e.to_string()).with_source(e)
            }
            H::Rewrite { .. } => MgError::rewrite(e.to_string()).with_source(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_distinct_exit_codes() {
        let mut codes: Vec<i32> = MgErrorKind::ALL.iter().map(|k| k.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), MgErrorKind::ALL.len(), "exit codes collide");
        assert!(!codes.contains(&75), "75 is reserved for the daemon's Busy reply");
        assert!(codes.iter().all(|c| (64..=78).contains(c)), "stay in the sysexits range");
    }

    #[test]
    fn source_chain_survives_wrapping() {
        let root = std::io::Error::other("disk on fire");
        let err = MgError::cache("cache write failed").with_source(root);
        assert_eq!(err.kind(), MgErrorKind::Cache);
        assert_eq!(err.exit_code(), 73);
        let source = err.source().expect("chained");
        assert!(source.to_string().contains("disk on fire"));
    }

    #[test]
    fn harness_build_errors_pass_nested_mg_errors_through() {
        let inner = MgError::invalid_spec("bad toy workload");
        let harness =
            mg_harness::HarnessError::Build { workload: "toy".into(), source: Box::new(inner) };
        let out = MgError::from(harness);
        assert_eq!(out.kind(), MgErrorKind::InvalidSpec, "inner kind preserved");
        assert_eq!(out.message(), "bad toy workload");
    }

    #[test]
    fn wire_and_exec_conversions_classify() {
        assert_eq!(
            MgError::from(mg_isa::wire::WireError::Truncated).kind(),
            MgErrorKind::Parse
        );
        assert_eq!(
            MgError::from(mg_isa::exec::ExecError::StepLimit(7)).kind(),
            MgErrorKind::Exec
        );
    }
}
