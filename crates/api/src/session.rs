//! The session: the one object every consumer of the pipeline drives.
//!
//! A [`Session`] owns the operational state the paper's pipeline needs
//! beyond the request itself — the persistent artifact-cache root, the
//! shared warm-prep pool, quick-mode and trace budgets, a thread bound,
//! and the extension registries ([`WorkloadSource`],
//! [`SelectionPolicy`]). Requests ([`RunSpec`]) are resolved and
//! executed against that state; every failure comes back as a typed
//! [`MgError`], never a panic.
//!
//! Sessions are cheap to clone (the pool and registries are shared
//! behind `Arc`s), so one session can serve many threads: the `mg
//! serve` daemon clones one session into every worker, which is exactly
//! how all requests end up sharing one warm prep per workload.

use crate::error::MgError;
use crate::extend::{SelectionPolicy, WorkloadSource};
use crate::spec::{
    CellResult, ImageSpec, InputSelector, PolicySelector, RowOutcome, RunObserver, RunOutcome,
    RunSpec, WorkloadSelector,
};
use mg_core::Policy;
use mg_harness::{
    BuildError, CellDone, Engine, EngineBuilder, ExtraSource, PrepCache, PrepPool, Run,
};
use mg_workloads::Input;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configures and builds a [`Session`]. See [`Session::builder`].
pub struct SessionBuilder {
    quick: Option<bool>,
    fuse: Option<bool>,
    threads: Option<usize>,
    trace_budget: Option<u64>,
    cache_dir: Option<PathBuf>,
    cache_fallback_dir: Option<PathBuf>,
    pool: Option<Arc<PrepPool>>,
    sources: Vec<Arc<dyn WorkloadSource>>,
    policies: Vec<Arc<dyn SelectionPolicy>>,
    fault_plan: Option<Arc<mg_fault::FaultPlan>>,
}

impl SessionBuilder {
    fn new() -> SessionBuilder {
        SessionBuilder {
            quick: None,
            fuse: None,
            threads: None,
            trace_budget: None,
            cache_dir: None,
            cache_fallback_dir: None,
            pool: None,
            sources: Vec::new(),
            policies: Vec::new(),
            fault_plan: None,
        }
    }

    /// Forces quick mode on or off for every run of the session
    /// (default: inherit the `MG_QUICK` environment, overridable per
    /// [`RunSpec`]).
    pub fn quick(mut self, quick: bool) -> SessionBuilder {
        self.quick = Some(quick);
        self
    }

    /// Forces fused sweep execution on or off for every run of the
    /// session (default: on unless `MG_NO_FUSE` is set; overridable per
    /// [`RunSpec`]). Purely a throughput switch — results are
    /// bit-identical either way.
    pub fn fuse(mut self, fuse: bool) -> SessionBuilder {
        self.fuse = Some(fuse);
        self
    }

    /// Caps worker threads (default: available parallelism /
    /// `MG_THREADS`).
    pub fn threads(mut self, threads: usize) -> SessionBuilder {
        self.threads = Some(threads.max(1));
        self
    }

    /// Overrides the recorded-trace budget in ops (default: derived
    /// from quick mode).
    pub fn trace_budget(mut self, ops: u64) -> SessionBuilder {
        self.trace_budget = Some(ops);
        self
    }

    /// Enables the persistent artifact cache at its default root
    /// (`$MG_CACHE_DIR` or `target/mg-cache`). Off by default — library
    /// embeddings stay hermetic; the `mg` binaries turn it on.
    /// `MG_NO_CACHE=1` remains an operational kill switch.
    pub fn cache(self, enabled: bool) -> SessionBuilder {
        if enabled {
            self.cache_dir(PrepCache::default_root())
        } else {
            SessionBuilder { cache_dir: None, ..self }
        }
    }

    /// Enables the persistent artifact cache rooted at `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> SessionBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Chains a shared read-through cache root behind the session's
    /// primary root: a primary miss falls through to `dir` (and a hit
    /// there repopulates the primary), stores land in both roots. This
    /// is the `mg cluster` cache topology — each shard's session keeps a
    /// private primary root in front of one shared root, so artifacts
    /// computed by any shard are visible to all without write
    /// contention on the hot path. No effect unless a primary root is
    /// enabled via [`SessionBuilder::cache`] /
    /// [`SessionBuilder::cache_dir`].
    pub fn cache_fallback_dir(mut self, dir: impl Into<PathBuf>) -> SessionBuilder {
        self.cache_fallback_dir = Some(dir.into());
        self
    }

    /// Shares an existing warm-prep pool instead of creating a fresh
    /// one (e.g. to share preps across several sessions).
    pub fn pool(mut self, pool: Arc<PrepPool>) -> SessionBuilder {
        self.pool = Some(pool);
        self
    }

    /// Registers an out-of-tree workload (see [`WorkloadSource`]).
    /// Among registrations the last one with a given name wins; names
    /// shadowed by the built-in registry resolve to the registry.
    pub fn register_workload(mut self, source: Arc<dyn WorkloadSource>) -> SessionBuilder {
        self.sources.retain(|s| s.name() != source.name());
        self.sources.push(source);
        self
    }

    /// Registers a named selection-policy preset (see
    /// [`SelectionPolicy`]). Last registration of a name wins; built-in
    /// names win over registrations.
    pub fn register_policy(mut self, policy: Arc<dyn SelectionPolicy>) -> SessionBuilder {
        self.policies.retain(|p| p.name() != policy.name());
        self.policies.push(policy);
        self
    }

    /// Arms deterministic fault injection for the session's preparation
    /// machinery (see [`mg_fault::FaultPlan`]): the pool's
    /// `harness.prep.panic` point and the cache's `harness.cache.*`
    /// points fire under the plan. Chaos-testing machinery (`mg chaos`)
    /// — production embeddings never set this.
    pub fn fault_plan(mut self, plan: Arc<mg_fault::FaultPlan>) -> SessionBuilder {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the session. Infallible: selector validation happens per
    /// request, where the offending name is known.
    pub fn build(self) -> Session {
        let pool = self.pool.unwrap_or_default();
        if self.fault_plan.is_some() {
            pool.set_fault_plan(self.fault_plan.clone());
        }
        Session {
            quick: self.quick,
            fuse: self.fuse,
            threads: self.threads,
            trace_budget: self.trace_budget,
            cache_dir: self.cache_dir,
            cache_fallback_dir: self.cache_fallback_dir,
            pool,
            sources: Arc::new(self.sources),
            policies: Arc::new(self.policies),
            fault_plan: self.fault_plan,
        }
    }
}

/// A configured entry point to the pipeline (see the module docs).
#[derive(Clone)]
pub struct Session {
    quick: Option<bool>,
    fuse: Option<bool>,
    threads: Option<usize>,
    trace_budget: Option<u64>,
    cache_dir: Option<PathBuf>,
    cache_fallback_dir: Option<PathBuf>,
    pool: Arc<PrepPool>,
    sources: Arc<Vec<Arc<dyn WorkloadSource>>>,
    policies: Arc<Vec<Arc<dyn SelectionPolicy>>>,
    fault_plan: Option<Arc<mg_fault::FaultPlan>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("quick", &self.quick)
            .field("fuse", &self.fuse)
            .field("threads", &self.threads)
            .field("trace_budget", &self.trace_budget)
            .field("cache_dir", &self.cache_dir)
            .field("cache_fallback_dir", &self.cache_fallback_dir)
            .field("pooled_preps", &self.pool.len())
            .field("workload_sources", &self.sources.len())
            .field("policies", &self.policies.len())
            .field("fault_plan", &self.fault_plan.as_ref().map(|p| p.seed()))
            .finish()
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::builder().build()
    }
}

impl Session {
    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's warm-prep pool (shared by every engine the session
    /// builds; its `prepared`/`reused` counters are the daemon's
    /// sharing metrics).
    pub fn pool(&self) -> &Arc<PrepPool> {
        &self.pool
    }

    /// The persistent artifact-cache root, if caching is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// The shared read-through cache root, if one is chained (see
    /// [`SessionBuilder::cache_fallback_dir`]).
    pub fn cache_fallback_dir(&self) -> Option<&Path> {
        self.cache_fallback_dir.as_deref()
    }

    /// The session-wide quick-mode override, if any.
    pub fn quick(&self) -> Option<bool> {
        self.quick
    }

    /// The session-wide fused-sweep override, if any.
    pub fn fuse(&self) -> Option<bool> {
        self.fuse
    }

    /// The session-wide thread bound, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Every workload name the session can resolve: the registry, then
    /// session-registered sources (shadowed names omitted).
    pub fn workload_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            mg_workloads::all().iter().map(|w| w.name.to_string()).collect();
        for s in self.sources.iter() {
            if !names.iter().any(|n| n == s.name()) {
                names.push(s.name().to_string());
            }
        }
        names
    }

    /// An engine builder carrying the session state: pool, registered
    /// sources, cache root, quick/thread/budget overrides. The CLI's
    /// `RunArgs` and the serve runner both start from here — this is
    /// the shared code path that keeps their outputs identical.
    pub fn engine_builder(&self) -> EngineBuilder {
        let mut b = Engine::builder().pool(Arc::clone(&self.pool));
        for source in self.sources.iter() {
            b = b.extra_source(extra_source(source));
        }
        if let Some(dir) = &self.cache_dir {
            b = b.cache_dir(dir);
        }
        if let Some(dir) = &self.cache_fallback_dir {
            b = b.cache_fallback_dir(dir);
        }
        if let Some(q) = self.quick {
            b = b.quick(q);
        }
        if let Some(fu) = self.fuse {
            b = b.fuse(fu);
        }
        if let Some(t) = self.threads {
            b = b.threads(t);
        }
        if let Some(ops) = self.trace_budget {
            b = b.trace_budget(ops);
        }
        if let Some(plan) = &self.fault_plan {
            b = b.fault_plan(Arc::clone(plan));
        }
        b
    }

    /// Resolves an input selector.
    ///
    /// # Errors
    ///
    /// [`MgError::InvalidSpec`] for an unknown input name.
    pub fn resolve_input(&self, selector: &InputSelector) -> Result<Input, MgError> {
        match selector {
            InputSelector::Explicit(i) => Ok(*i),
            InputSelector::Named(name) => InputSelector::resolve_named(name).ok_or_else(|| {
                MgError::invalid_spec(format!(
                    "unknown input {name:?} (reference|alternative|tiny)"
                ))
            }),
        }
    }

    /// Resolves a policy selector: built-in presets, then
    /// session-registered [`SelectionPolicy`] names; the result is
    /// validated for satisfiability.
    ///
    /// # Errors
    ///
    /// [`MgError::InvalidSpec`] for an unknown name,
    /// [`MgError::Selection`] for a policy that can admit nothing.
    pub fn resolve_policy(&self, selector: &PolicySelector) -> Result<Policy, MgError> {
        let policy = match selector {
            PolicySelector::Explicit(p) => p.clone(),
            PolicySelector::Named(name) => match name.as_str() {
                "default" => Policy::default(),
                "integer" => Policy::integer(),
                "integer_memory" | "intmem" => Policy::integer_memory(),
                _ => self
                    .policies
                    .iter()
                    .rev()
                    .find(|p| p.name() == name)
                    .map(|p| p.policy())
                    .ok_or_else(|| {
                        MgError::invalid_spec(format!(
                            "unknown policy {name:?} (default|integer|integer_memory, or a \
                             session-registered preset)"
                        ))
                    })?,
            },
        };
        if policy.max_size < 2 {
            return Err(MgError::selection(format!(
                "policy max_size {} admits no mini-graph (minimum legal size is 2)",
                policy.max_size
            )));
        }
        if policy.capacity == 0 {
            return Err(MgError::selection(
                "policy capacity 0 selects nothing (the MGT holds no templates)",
            ));
        }
        Ok(policy)
    }

    /// Resolves the selection *algorithm* a policy selector denotes:
    /// built-in preset names and explicit policies run the paper's
    /// greedy selector; a session-registered [`SelectionPolicy`] name
    /// runs whatever its [`SelectionPolicy::selector`] returns (greedy
    /// unless overridden — see
    /// [`SelectorPolicy`](crate::extend::SelectorPolicy)).
    ///
    /// Infallible by design: an unknown name means "no registration
    /// overrides the default", and name validity itself is
    /// [`Session::resolve_policy`]'s job.
    pub fn resolve_selector(
        &self,
        selector: &PolicySelector,
    ) -> std::sync::Arc<dyn mg_core::Selector> {
        if let PolicySelector::Named(name) = selector {
            // Mirror resolve_policy's precedence: built-in names never
            // fall through to registrations.
            let builtin =
                matches!(name.as_str(), "default" | "integer" | "integer_memory" | "intmem");
            if !builtin {
                if let Some(p) = self.policies.iter().rev().find(|p| p.name() == name.as_str())
                {
                    return p.selector();
                }
            }
        }
        std::sync::Arc::new(mg_core::GreedySelector)
    }

    /// Runs a spec and returns the deterministic matrix.
    ///
    /// # Errors
    ///
    /// [`MgError::InvalidSpec`] for unresolvable selectors (checked
    /// before any preparation starts), and whatever preparation or
    /// execution raises — all typed, never a panic.
    pub fn run(&self, spec: &RunSpec) -> Result<RunOutcome, MgError> {
        self.run_inner(spec, None)
    }

    /// [`Session::run`] with a streaming per-cell observer (called from
    /// worker threads in completion order).
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_with_observer(
        &self,
        spec: &RunSpec,
        observer: RunObserver,
    ) -> Result<RunOutcome, MgError> {
        self.run_inner(spec, Some(observer))
    }

    fn run_inner(
        &self,
        spec: &RunSpec,
        observer: Option<RunObserver>,
    ) -> Result<RunOutcome, MgError> {
        if spec.cells.is_empty() {
            return Err(MgError::invalid_spec("run spec has no cells"));
        }
        // Resolve every selector before any preparation runs: an invalid
        // spec must fail fast, not after minutes of profiling.
        let input = self.resolve_input(&spec.input)?;
        let runs: Vec<Run> = spec
            .cells
            .iter()
            .map(|c| -> Result<Run, MgError> {
                Ok(match &c.image {
                    ImageSpec::Baseline => Run::baseline(c.cfg.clone()),
                    ImageSpec::MiniGraph { policy, style } => {
                        Run::mini_graph(self.resolve_policy(policy)?, *style, c.cfg.clone())
                    }
                }
                .label(c.label.clone()))
            })
            .collect::<Result<_, _>>()?;
        let mut b = self.engine_builder().input(input);
        if let Some(q) = spec.quick {
            b = b.quick(q);
        }
        if let Some(fu) = spec.fuse {
            b = b.fuse(fu);
        }
        b = match &spec.workloads {
            WorkloadSelector::All => b,
            WorkloadSelector::Suite(s) => b.suite(*s),
            WorkloadSelector::Names(names) => {
                if names.is_empty() {
                    return Err(MgError::invalid_spec("run spec names no workloads"));
                }
                b.try_workloads(names)?
            }
        };
        if let Some(observer) = observer {
            b = b.observer(Arc::new(move |cell: &CellDone| {
                observer(&CellResult {
                    workload: cell.workload.clone(),
                    label: cell.label.clone(),
                    cycles: cell.cycles,
                    ops: cell.ops,
                });
            }));
        }
        let engine = b.try_build()?;
        let matrix = engine.try_run(&runs)?;
        Ok(RunOutcome {
            labels: matrix.labels,
            rows: matrix
                .rows
                .iter()
                .map(|r| RowOutcome {
                    workload: r.prep.name.clone(),
                    suite: r.prep.suite,
                    stats: r.stats.clone(),
                })
                .collect(),
        })
    }
}

/// Adapts a registered [`WorkloadSource`] to the harness's
/// [`ExtraSource`] shape.
fn extra_source(source: &Arc<dyn WorkloadSource>) -> ExtraSource {
    let owned = Arc::clone(source);
    ExtraSource {
        name: source.name().to_string(),
        suite: source.suite(),
        stable_id: source.stable_id(),
        build: Arc::new(move |input: &Input| {
            owned.build(input).map_err(|e| Box::new(e) as BuildError)
        }),
    }
}
