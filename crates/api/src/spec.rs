//! Typed request and result values of the session API.
//!
//! A [`RunSpec`] names *what* to run — workloads, input data set, and a
//! list of (image, machine-configuration) cells — entirely through
//! selectors, so a spec can be built from untrusted strings (a CLI
//! argv, a wire request) and validated in one place:
//! [`Session::run`](crate::session::Session::run) resolves every
//! selector before any preparation starts and reports the first
//! offender as [`MgError::InvalidSpec`](crate::error::MgError).
//!
//! Results come back as a [`RunOutcome`] — the full deterministic
//! matrix — while [`CellResult`] values stream through the optional
//! [`RunObserver`] in completion order as workers finish cells.

use mg_core::{Policy, RewriteStyle};
use mg_uarch::{SimConfig, SimStats};
use mg_workloads::{Input, Suite};
use std::sync::Arc;

/// Which workloads a run covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadSelector {
    /// Every registered workload, plus every session-registered
    /// [`WorkloadSource`](crate::extend::WorkloadSource).
    All,
    /// Every workload of one suite.
    Suite(Suite),
    /// Exactly the named workloads, in order (registry names first,
    /// then session-registered sources).
    Names(Vec<String>),
}

/// Which input data set a run uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputSelector {
    /// A named preset: `"reference"`, `"alternative"`, or `"tiny"`.
    Named(String),
    /// An explicit seed + scale.
    Explicit(Input),
}

impl InputSelector {
    /// The reference-input selector (the default).
    pub fn reference() -> InputSelector {
        InputSelector::Explicit(Input::reference())
    }

    /// Resolves a preset input name (`None` for an unknown one) — the
    /// one name table the CLI, the daemon, and
    /// [`Session::resolve_input`](crate::session::Session::resolve_input)
    /// all share.
    pub fn resolve_named(name: &str) -> Option<Input> {
        match name {
            "reference" => Some(Input::reference()),
            "alternative" => Some(Input::alternative()),
            "tiny" => Some(Input::tiny()),
            _ => None,
        }
    }
}

/// Which selection policy a mini-graph cell uses.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySelector {
    /// A named preset: `"default"`, `"integer"`, `"integer_memory"` /
    /// `"intmem"`, or any session-registered
    /// [`SelectionPolicy`](crate::extend::SelectionPolicy).
    Named(String),
    /// An explicit policy value (still validated for satisfiability).
    Explicit(Policy),
}

/// The image one cell simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum ImageSpec {
    /// The original program.
    Baseline,
    /// The program rewritten with the mini-graphs `policy` selects.
    MiniGraph {
        /// The selection policy.
        policy: PolicySelector,
        /// Nop-padded or compressed rewrite.
        style: RewriteStyle,
    },
}

/// One column of the requested matrix: an image under a machine
/// configuration.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Display label (defaults to `"baseline"` / `"mg"`).
    pub label: String,
    /// The image under test.
    pub image: ImageSpec,
    /// The machine configuration.
    pub cfg: SimConfig,
}

impl CellSpec {
    /// A baseline-image cell under `cfg`.
    pub fn baseline(cfg: SimConfig) -> CellSpec {
        CellSpec { label: "baseline".into(), image: ImageSpec::Baseline, cfg }
    }

    /// A mini-graph cell: select under `policy`, rewrite with `style`,
    /// simulate under `cfg`.
    pub fn mini_graph(policy: PolicySelector, style: RewriteStyle, cfg: SimConfig) -> CellSpec {
        CellSpec { label: "mg".into(), image: ImageSpec::MiniGraph { policy, style }, cfg }
    }

    /// Sets the display label.
    pub fn label(mut self, label: impl Into<String>) -> CellSpec {
        self.label = label.into();
        self
    }
}

/// A complete run request: workloads × cells on one input.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Which workloads to run.
    pub workloads: WorkloadSelector,
    /// Which input data set.
    pub input: InputSelector,
    /// Per-spec quick-mode override (`None` inherits the session).
    pub quick: Option<bool>,
    /// Per-spec fused-sweep override (`None` inherits the session /
    /// `MG_NO_FUSE` default). Purely a throughput switch: results are
    /// bit-identical either way.
    pub fuse: Option<bool>,
    /// The matrix columns, in order. Must be non-empty.
    pub cells: Vec<CellSpec>,
}

impl RunSpec {
    /// An empty spec over every workload on the reference input; add
    /// cells with [`RunSpec::cell`].
    pub fn new() -> RunSpec {
        RunSpec {
            workloads: WorkloadSelector::All,
            input: InputSelector::reference(),
            quick: None,
            fuse: None,
            cells: Vec::new(),
        }
    }

    /// Restricts the spec to the named workloads.
    pub fn workloads<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> RunSpec {
        self.workloads = WorkloadSelector::Names(names.into_iter().map(Into::into).collect());
        self
    }

    /// Selects the input data set.
    pub fn input(mut self, input: InputSelector) -> RunSpec {
        self.input = input;
        self
    }

    /// Overrides quick mode for this spec.
    pub fn quick(mut self, quick: bool) -> RunSpec {
        self.quick = Some(quick);
        self
    }

    /// Overrides fused sweep execution for this spec (see
    /// [`mg_harness::fused`]).
    pub fn fuse(mut self, fuse: bool) -> RunSpec {
        self.fuse = Some(fuse);
        self
    }

    /// Appends a matrix column.
    pub fn cell(mut self, cell: CellSpec) -> RunSpec {
        self.cells.push(cell);
        self
    }
}

impl Default for RunSpec {
    fn default() -> RunSpec {
        RunSpec::new()
    }
}

/// One completed matrix cell, streamed to a [`RunObserver`] in
/// completion order while the matrix runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellResult {
    /// Workload name of the cell's row.
    pub workload: String,
    /// Label of the cell's [`CellSpec`].
    pub label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed fetched operations.
    pub ops: u64,
}

/// Per-cell streaming hook, called from worker threads in completion
/// order (the deterministic [`RunOutcome`] is unaffected).
pub type RunObserver = Arc<dyn Fn(&CellResult) + Send + Sync>;

/// One workload's row of a [`RunOutcome`]: its stats per cell, in spec
/// order.
#[derive(Clone, Debug)]
pub struct RowOutcome {
    /// Workload name.
    pub workload: String,
    /// Owning suite.
    pub suite: Suite,
    /// One result per [`CellSpec`], in the order given in the
    /// [`RunSpec`].
    pub stats: Vec<SimStats>,
}

impl RowOutcome {
    /// Speedup of cell `of` relative to cell `over` (IPC ratio over
    /// original program instructions, as in the paper's figures).
    pub fn speedup_over(&self, over: usize, of: usize) -> f64 {
        mg_harness::speedup(&self.stats[over], &self.stats[of])
    }
}

/// A completed deterministic matrix: rows follow workload order,
/// columns the spec's cell order. Bit-identical for parallel and
/// sequential execution.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The cell labels, in column order.
    pub labels: Vec<String>,
    /// One row per workload.
    pub rows: Vec<RowOutcome>,
}

impl RunOutcome {
    /// The row for a named workload.
    pub fn row(&self, workload: &str) -> Option<&RowOutcome> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Rows grouped by suite, preserving row order.
    pub fn by_suite(&self) -> Vec<(Suite, Vec<&RowOutcome>)> {
        Suite::ALL
            .iter()
            .map(|&s| (s, self.rows.iter().filter(|r| r.suite == s).collect()))
            .collect()
    }
}
