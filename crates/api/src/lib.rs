//! Typed, embeddable session API over the mini-graphs pipeline.
//!
//! The paper's pipeline — profile → mini-graph enumeration/selection →
//! DISE rewrite → cycle-exact simulation — used to be reachable only
//! through the `mg` binary. This crate is the **library-first** surface
//! all entry points now share: the `mg` CLI, the `mg serve` daemon, and
//! any out-of-tree embedder drive the same [`Session`], so behaviour
//! (and bytes) cannot diverge between them.
//!
//! * [`Session`] / [`SessionBuilder`] — owns cache root, warm-prep
//!   pool, quick-mode and trace budgets, thread bounds, and the
//!   extension registries. Cheap to clone; share across threads.
//! * [`RunSpec`] → [`RunOutcome`] — typed requests built from
//!   selectors ([`WorkloadSelector`], [`InputSelector`],
//!   [`PolicySelector`]) and validated before any work starts;
//!   deterministic matrix results, plus streaming [`CellResult`]s
//!   through a [`RunObserver`].
//! * [`MgError`] — the unified error hierarchy ([`MgErrorKind`]:
//!   `Parse`, `Exec`, `Selection`, `Rewrite`, `Cache`, `Io`,
//!   `Protocol`, `InvalidSpec`) with end-to-end source chaining and a
//!   documented exit-code mapping. No call across this boundary panics.
//! * [`WorkloadSource`] / [`SelectionPolicy`] — object-safe extension
//!   traits: register out-of-tree workloads and policy presets without
//!   forking `mg_workloads`.
//!
//! The full guide — session lifecycle, error taxonomy, extension
//! contracts, and the stability policy backed by the CI public-API
//! drift gate — lives in `docs/API.md`. `examples/embed.rs` (in the
//! workspace root) is the canonical external consumer.
//!
//! # Example
//!
//! ```
//! use mg_api::{CellSpec, PolicySelector, RunSpec, Session};
//! use mg_core::RewriteStyle;
//! use mg_uarch::SimConfig;
//!
//! let session = Session::builder().quick(true).build();
//! let spec = RunSpec::new()
//!     .workloads(["crc32"])
//!     .cell(CellSpec::baseline(SimConfig::baseline()))
//!     .cell(CellSpec::mini_graph(
//!         PolicySelector::Named("integer_memory".into()),
//!         RewriteStyle::NopPadded,
//!         SimConfig::mg_integer_memory(),
//!     ));
//! let outcome = session.run(&spec)?;
//! assert!(outcome.row("crc32").unwrap().speedup_over(0, 1) > 0.0);
//! # Ok::<(), mg_api::MgError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod error;
pub mod extend;
pub mod session;
pub mod spec;

pub use error::{MgError, MgErrorKind, SourceError};
pub use extend::{NamedPolicy, SelectionPolicy, SelectorPolicy, WorkloadSource};
pub use session::{Session, SessionBuilder};
pub use spec::{
    CellResult, CellSpec, ImageSpec, InputSelector, PolicySelector, RowOutcome, RunObserver,
    RunOutcome, RunSpec, WorkloadSelector,
};

// The foreign types a spec is built from, re-exported so an embedder
// can drive a session without naming the underlying crates.
pub use mg_core::{GreedySelector, Policy, RewriteStyle, SelectInputs, Selector};
pub use mg_harness::PrepPool;
pub use mg_uarch::{SimConfig, SimStats};
pub use mg_workloads::{Input, Suite};
