//! Extension points: how out-of-tree crates plug workloads and
//! selection policies into a [`Session`](crate::session::Session)
//! without forking `mg_workloads::all` or the policy presets.
//!
//! Both traits are **object-safe**; registrations are `Arc<dyn …>`
//! values handed to the session builder. See `docs/API.md` for the
//! stability contract (in short: the traits only grow defaulted
//! methods).

use crate::error::MgError;
use mg_core::{GreedySelector, Policy, Selector};
use mg_isa::{Memory, Program};
use mg_workloads::{Input, Suite};
use std::sync::Arc;

/// An out-of-tree workload: a named, suite-classified program builder
/// the session can prepare and run exactly like a registry kernel.
///
/// # Identity contract
///
/// [`WorkloadSource::stable_id`] keys the warm-prep pool and the
/// persistent artifact cache. It must change whenever the source's
/// built program or initial memory changes for a given [`Input`] —
/// version it like `mg_workloads::REGISTRY_VERSION` versions the
/// registry. (The cache additionally fingerprints the built images, so
/// a stale id degrades to recomputation, never to a wrong artifact;
/// the pool, which shares in-process, has no such second fence.)
pub trait WorkloadSource: Send + Sync {
    /// Workload name, resolvable through
    /// [`WorkloadSelector::Names`](crate::spec::WorkloadSelector::Names).
    /// Names shadowed by the built-in registry resolve to the registry.
    fn name(&self) -> &str;

    /// The suite the workload reports under.
    fn suite(&self) -> Suite;

    /// Stable identity for pool and cache keys (see the trait docs).
    /// Defaults to `custom/<name>@r1`; bump the revision when behaviour
    /// changes.
    fn stable_id(&self) -> String {
        format!("custom/{}@r1", self.name())
    }

    /// Builds the program and its initial memory for `input`.
    ///
    /// # Errors
    ///
    /// Any [`MgError`]; the session propagates it (kind preserved) to
    /// the caller that requested this workload.
    fn build(&self, input: &Input) -> Result<(Program, Memory), MgError>;
}

/// A named selection-policy preset: how out-of-tree crates extend the
/// built-in policy names (`"integer"`, `"integer_memory"`, `"default"`)
/// that [`PolicySelector::Named`](crate::spec::PolicySelector::Named)
/// resolves.
pub trait SelectionPolicy: Send + Sync {
    /// The preset's name. Built-in names win on collision.
    fn name(&self) -> &str;

    /// The concrete policy configuration the name denotes.
    fn policy(&self) -> Policy;

    /// The selection *algorithm* the preset runs under its policy.
    /// Defaults to the paper's greedy selector; presets built from
    /// `mg_policy` selectors (tree tiling, loop-weighted greedy, exact
    /// DP) override this — see [`SelectorPolicy`] and `docs/API.md`.
    /// A non-default selector's artifacts are cached under its
    /// [`Selector::id`], so overriding never collides with cached
    /// greedy artifacts.
    fn selector(&self) -> Arc<dyn Selector> {
        Arc::new(GreedySelector)
    }
}

/// A [`SelectionPolicy`] built from a name and a [`Policy`] value — the
/// common case, so hosts don't need a struct per preset.
pub struct NamedPolicy {
    name: String,
    policy: Policy,
}

impl NamedPolicy {
    /// Creates a preset mapping `name` to `policy`.
    pub fn new(name: impl Into<String>, policy: Policy) -> NamedPolicy {
        NamedPolicy { name: name.into(), policy }
    }
}

impl SelectionPolicy for NamedPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn policy(&self) -> Policy {
        self.policy.clone()
    }
}

/// A [`SelectionPolicy`] pairing a policy configuration with a
/// non-default selection algorithm — the bridge between `mg_policy`
/// selectors and session policy names.
pub struct SelectorPolicy {
    name: String,
    policy: Policy,
    selector: Arc<dyn Selector>,
}

impl SelectorPolicy {
    /// Creates a preset mapping `name` to `policy` selected by
    /// `selector`.
    pub fn new(
        name: impl Into<String>,
        policy: Policy,
        selector: Arc<dyn Selector>,
    ) -> SelectorPolicy {
        SelectorPolicy { name: name.into(), policy, selector }
    }
}

impl SelectionPolicy for SelectorPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn policy(&self) -> Policy {
        self.policy.clone()
    }

    fn selector(&self) -> Arc<dyn Selector> {
        Arc::clone(&self.selector)
    }
}
