//! IR → toy-ISA code generation.
//!
//! # Memory map (compiled programs)
//!
//! | region | address | contents |
//! |---|---|---|
//! | [`RESULT_ADDR`] | `0x8000` | final checksum (same slot the registry kernels use) |
//! | [`OUT_COUNT_ADDR`] | `0x8008` | number of `out` values emitted |
//! | [`OUT_BASE`] | `0x1_0000` | the `out` stream, one `u64` per value |
//! | [`SPILL_BASE`] | `0x1_8000` | spill slots + per-procedure return-address slots |
//! | [`GLOBALS_BASE`] | `0x1_c000` | scalar globals, declaration order |
//! | [`ARRAYS_BASE`] | `0x20_0000` | arrays, packed in declaration order |
//!
//! # Register conventions
//!
//! `r1..r15` are the allocatable pool (see
//! [`RegallocConfig`]). `r16` holds the
//! running checksum, `r17` the output-stream cursor, `r20` the
//! spill-area base, `r21`/`r22` carry `__divmod` arguments and results,
//! `r23`–`r25` and `r29`/`r30` are `__divmod` internals, `r26` is the
//! call return-address register, `r27`/`r29` are codegen scratch, `r28`
//! is the `__divmod` return address, and `r31` is the zero register.
//! Calls clobber the whole pool (no save/restore convention); the
//! allocator spills anything live across one.
//!
//! Procedures are laid out first and `main` last, so the image entry
//! point is a nonzero instruction index resolved via
//! [`Asm::finish_at`].

use crate::ast::Module;
use crate::ir::{lower, BinIr, IrInst, IrModule, Term, UnIr, VReg};
use crate::regalloc::{allocate, RegallocConfig};
use crate::LangError;
use mg_isa::{reg, Asm, Memory, Program, Reg};
use mg_workloads::Input;
use std::collections::BTreeMap;

/// Where the final checksum is stored (matches the registry kernels).
pub const RESULT_ADDR: u64 = 0x8000;
/// Where the emitted-output count is stored.
pub const OUT_COUNT_ADDR: u64 = 0x8008;
/// Base of the output stream (one `u64` per `out`).
pub const OUT_BASE: u64 = 0x1_0000;
/// Base of the spill area (spill slots and return-address slots).
pub const SPILL_BASE: u64 = 0x1_8000;
/// Base of scalar global storage.
pub const GLOBALS_BASE: u64 = 0x1_c000;
/// Base of array storage.
pub const ARRAYS_BASE: u64 = 0x20_0000;
/// Capacity of the spill area, in 8-byte slots.
pub const MAX_SPILL_SLOTS: usize = 2048;

/// Checksum multiplier (the FNV-1a 64-bit prime).
pub const CHECKSUM_PRIME: i64 = 0x100_0000_01b3;
/// Checksum initial value (the FNV-1a 64-bit offset basis).
pub const CHECKSUM_INIT: i64 = 0xcbf2_9ce4_8422_2325_u64 as i64;

const R_ACC: Reg = reg(16);
const R_OUT: Reg = reg(17);
const R_SPILL: Reg = reg(20);
const R_DIV_A: Reg = reg(21);
const R_DIV_B: Reg = reg(22);
const R_DIV_Q: Reg = reg(23);
const R_DIV_R: Reg = reg(24);
const R_DIV_I: Reg = reg(25);
const R_RA: Reg = reg(26);
const R_T1: Reg = reg(27);
const R_DIV_RA: Reg = reg(28);
const R_T2: Reg = reg(29);
const R_DIV_SB: Reg = reg(30);

/// Compilation statistics (surfaced by `mg compile`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// Instructions in the final image.
    pub insts: usize,
    /// Virtual registers across all procedures (after spill rewriting).
    pub vregs: u32,
    /// Spilled virtual registers across all procedures.
    pub spills: usize,
    /// Procedure count (including `main`).
    pub procs: usize,
    /// Whether the shared `__divmod` routine was emitted.
    pub uses_divmod: bool,
}

/// A compiled `.mgl` program: the image plus its initial data.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The program image; `entry` points at `main`.
    pub program: Program,
    /// Initial memory cells (globals and array initializers).
    pub mem_init: Vec<(u64, i64)>,
    /// Compilation statistics.
    pub stats: CompileStats,
}

impl Compiled {
    /// Builds the initial data memory for a run.
    pub fn memory(&self) -> Memory {
        let mut mem = Memory::new();
        for &(addr, v) in &self.mem_init {
            mem.write_u64(addr, v as u64);
        }
        mem
    }
}

/// Architectural observables read back from an executed memory image:
/// everything a program can communicate, per the memory map above.
/// Deliberately excludes the spill region — return-address slots hold
/// instruction indices, which legitimately shift when an image is
/// rewritten in the mini-graph rewriter's compressed style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The final checksum word at [`RESULT_ADDR`].
    pub checksum: i64,
    /// The `out` stream, in emission order.
    pub outputs: Vec<i64>,
    /// Final value of every global, declaration order.
    pub globals: Vec<i64>,
    /// Final contents of every array, declaration order.
    pub arrays: Vec<Vec<i64>>,
}

/// Reads the architectural observables of `module` out of an executed
/// memory image.
pub fn observe(module: &Module, mem: &Memory) -> Observation {
    let checksum = mem.read_u64(RESULT_ADDR) as i64;
    let count = mem.read_u64(OUT_COUNT_ADDR) as usize;
    let outputs = (0..count).map(|i| mem.read_u64(OUT_BASE + 8 * i as u64) as i64).collect();
    let globals = (0..module.globals.len())
        .map(|i| mem.read_u64(GLOBALS_BASE + 8 * i as u64) as i64)
        .collect();
    let mut arrays = Vec::new();
    let mut base = ARRAYS_BASE;
    for a in &module.arrays {
        arrays.push((0..a.len).map(|i| mem.read_u64(base + 8 * i as u64) as i64).collect());
        base += 8 * a.len as u64;
    }
    Observation { checksum, outputs, globals, arrays }
}

/// Compiles a semantically-checked module for `input`.
///
/// # Errors
///
/// Returns [`LangError::Codegen`] if the program needs more spill slots
/// than [`MAX_SPILL_SLOTS`] or more array storage than the memory map
/// provides.
pub fn compile(m: &Module, input: &Input, cfg: &RegallocConfig) -> Result<Compiled, LangError> {
    let mut ir = lower(m, input);
    compile_ir(m, &mut ir, cfg)
}

fn compile_ir(
    m: &Module,
    ir: &mut IrModule,
    cfg: &RegallocConfig,
) -> Result<Compiled, LangError> {
    // Array placement: packed from ARRAYS_BASE in declaration order.
    let mut array_base = Vec::with_capacity(ir.array_lens.len());
    let mut next = ARRAYS_BASE;
    for &len in &ir.array_lens {
        array_base.push(next);
        next += 8 * len as u64;
    }

    // Allocate registers per procedure, then lay out the spill area:
    // one return-address slot per non-main procedure plus each
    // procedure's private spill range. No recursion (sema), so one
    // static activation per procedure suffices.
    let allocs: Vec<_> = ir.procs.iter_mut().map(|p| allocate(p, cfg)).collect();
    let mut ra_slot = vec![usize::MAX; ir.procs.len()];
    let mut spill_base = vec![0usize; ir.procs.len()];
    let mut next_slot = 0usize;
    for (i, a) in allocs.iter().enumerate() {
        if i != ir.main {
            ra_slot[i] = next_slot;
            next_slot += 1;
        }
        spill_base[i] = next_slot;
        next_slot += a.spill_slots;
    }
    if next_slot > MAX_SPILL_SLOTS {
        return Err(LangError::Codegen(format!(
            "needs {next_slot} spill slots; the spill area holds {MAX_SPILL_SLOTS}"
        )));
    }

    let mut asm = Asm::new();
    // Non-main procedures first, `main` last: the entry point is a
    // nonzero index, resolved below via `finish_at`.
    let order: Vec<usize> =
        (0..ir.procs.len()).filter(|&i| i != ir.main).chain([ir.main]).collect();
    for &pi in &order {
        emit_proc(
            &mut asm,
            ir,
            pi,
            &allocs[pi].colors,
            &array_base,
            ra_slot[pi],
            spill_base[pi],
        );
    }
    if ir.uses_divmod {
        emit_divmod(&mut asm);
    }

    let program = asm
        .finish_at(format!("fn${}", ir.procs[ir.main].name))
        .map_err(|e| LangError::Codegen(format!("assembly failed: {e}")))?;

    let mut mem_init = Vec::new();
    for (i, g) in m.globals.iter().enumerate() {
        if g.init != 0 {
            mem_init.push((GLOBALS_BASE + 8 * i as u64, g.init));
        }
    }
    for (ai, a) in m.arrays.iter().enumerate() {
        for (i, &v) in a.init.iter().enumerate() {
            if v != 0 {
                mem_init.push((array_base[ai] + 8 * i as u64, v));
            }
        }
    }

    let stats = CompileStats {
        insts: program.insts.len(),
        vregs: ir.procs.iter().map(|p| p.num_vregs).sum(),
        spills: allocs.iter().map(|a| a.spilled).sum(),
        procs: ir.procs.len(),
        uses_divmod: ir.uses_divmod,
    };
    Ok(Compiled { program, mem_init, stats })
}

fn emit_proc(
    asm: &mut Asm,
    ir: &IrModule,
    pi: usize,
    colors: &BTreeMap<VReg, usize>,
    array_base: &[u64],
    ra_slot: usize,
    spill_base: usize,
) {
    let p = &ir.procs[pi];
    let is_main = pi == ir.main;
    let r = |v: VReg| -> Reg { reg(1 + colors[&v] as u8) };
    let blabel = |b: usize| format!("{}${}", p.name, b);

    asm.label(&format!("fn${}", p.name));
    if is_main {
        asm.li(R_ACC, CHECKSUM_INIT);
        asm.li(R_OUT, OUT_BASE as i64);
        asm.li(R_SPILL, SPILL_BASE as i64);
    } else {
        // Save the return address: the body may call, clobbering r26.
        asm.stq(R_RA, 8 * ra_slot as i64, R_SPILL);
    }

    for (bi, b) in p.blocks.iter().enumerate() {
        asm.label(&blabel(bi));
        for inst in &b.insts {
            emit_inst(asm, ir, inst, &r, array_base, spill_base);
        }
        match b.term {
            Term::Jump(t) => {
                if t != bi + 1 {
                    asm.br(blabel(t));
                }
            }
            Term::Branch { cond, t, f } => {
                asm.bne(r(cond), blabel(t));
                if f != bi + 1 {
                    asm.br(blabel(f));
                }
            }
            Term::Ret => {
                if is_main {
                    // out count = (cursor - OUT_BASE) / 8, then the
                    // checksum, then halt.
                    asm.subq(R_OUT, OUT_BASE as i64, R_T1);
                    asm.srl(R_T1, 3, R_T1);
                    asm.stq(R_T1, OUT_COUNT_ADDR as i64, Reg::ZERO);
                    asm.stq(R_ACC, RESULT_ADDR as i64, Reg::ZERO);
                    asm.halt();
                } else {
                    asm.ldq(R_RA, 8 * ra_slot as i64, R_SPILL);
                    asm.ret(R_RA);
                }
            }
        }
    }
}

fn emit_inst(
    asm: &mut Asm,
    ir: &IrModule,
    inst: &IrInst,
    r: &dyn Fn(VReg) -> Reg,
    array_base: &[u64],
    spill_base: usize,
) {
    match *inst {
        IrInst::Const { d, value } => {
            asm.li(r(d), value);
        }
        IrInst::Un { op, d, a } => {
            match op {
                UnIr::Neg => asm.subq(Reg::ZERO, r(a), r(d)),
                UnIr::BitNot => asm.ornot(Reg::ZERO, r(a), r(d)),
                UnIr::IsZero => asm.cmpeq(r(a), 0, r(d)),
            };
        }
        IrInst::Bin { op, d, a, b } => {
            let (ra, rb, rd) = (r(a), r(b), r(d));
            match op {
                BinIr::Add => asm.addq(ra, rb, rd),
                BinIr::Sub => asm.subq(ra, rb, rd),
                BinIr::Mul => asm.mulq(ra, rb, rd),
                BinIr::And => asm.and(ra, rb, rd),
                BinIr::Or => asm.bis(ra, rb, rd),
                BinIr::Xor => asm.xor(ra, rb, rd),
                BinIr::Shl => asm.sll(ra, rb, rd),
                BinIr::Shr => asm.sra(ra, rb, rd),
                BinIr::CmpEq => asm.cmpeq(ra, rb, rd),
                BinIr::CmpLt => asm.cmplt(ra, rb, rd),
                BinIr::CmpLe => asm.cmple(ra, rb, rd),
                BinIr::Div | BinIr::Rem => {
                    asm.mov(ra, R_DIV_A);
                    asm.mov(rb, R_DIV_B);
                    asm.bsr(R_DIV_RA, "$divmod");
                    asm.mov(if op == BinIr::Div { R_DIV_A } else { R_DIV_B }, rd)
                }
            };
        }
        IrInst::Copy { d, a } => {
            if r(d) != r(a) {
                asm.mov(r(a), r(d));
            }
        }
        IrInst::LoadGlobal { d, idx } => {
            asm.ldq(r(d), (GLOBALS_BASE + 8 * idx as u64) as i64, Reg::ZERO);
        }
        IrInst::StoreGlobal { idx, a } => {
            asm.stq(r(a), (GLOBALS_BASE + 8 * idx as u64) as i64, Reg::ZERO);
        }
        IrInst::LoadArr { d, arr, idx } => {
            let mask = ir.array_lens[arr] as i64 - 1;
            asm.and(r(idx), mask, R_T1);
            asm.s8addq(R_T1, array_base[arr] as i64, R_T1);
            asm.ldq(r(d), 0, R_T1);
        }
        IrInst::StoreArr { arr, idx, a } => {
            let mask = ir.array_lens[arr] as i64 - 1;
            asm.and(r(idx), mask, R_T1);
            asm.s8addq(R_T1, array_base[arr] as i64, R_T1);
            asm.stq(r(a), 0, R_T1);
        }
        IrInst::Call { proc } => {
            asm.bsr(R_RA, format!("fn${}", ir.procs[proc].name));
        }
        IrInst::Out { a } => {
            asm.stq(r(a), 0, R_OUT);
            asm.addq(R_OUT, 8, R_OUT);
            asm.mulq(R_ACC, CHECKSUM_PRIME, R_ACC);
            asm.xor(R_ACC, r(a), R_ACC);
        }
        IrInst::LoadSpill { d, slot } => {
            asm.ldq(r(d), 8 * (spill_base + slot) as i64, R_SPILL);
        }
        IrInst::StoreSpill { slot, a } => {
            asm.stq(r(a), 8 * (spill_base + slot) as i64, R_SPILL);
        }
    }
}

/// The shared signed divide/remainder routine. Arguments in `r21`
/// (dividend) and `r22` (divisor); returns quotient in `r21`, remainder
/// in `r22`; return address in `r28`. Implements restoring division on
/// magnitudes with truncated-division sign rules, matching
/// [`crate::interp::sdiv`]/[`crate::interp::srem`] exactly — including
/// `x / 0 == 0`, `x % 0 == x`, and `MIN / -1 == MIN`. Clobbers only
/// reserved registers, so allocatable values survive the call.
fn emit_divmod(asm: &mut Asm) {
    asm.label("$divmod");
    asm.bne(R_DIV_B, "$divmod_nz");
    // Divide by zero: q = 0, rem = a.
    asm.mov(R_DIV_A, R_DIV_B);
    asm.li(R_DIV_A, 0);
    asm.ret(R_DIV_RA);
    asm.label("$divmod_nz");
    // Sign flags, then magnitudes. abs(MIN) wraps to MIN, whose bit
    // pattern is exactly the unsigned magnitude 2^63 — correct here.
    asm.cmplt(R_DIV_A, Reg::ZERO, R_T2);
    asm.cmplt(R_DIV_B, Reg::ZERO, R_DIV_SB);
    asm.beq(R_T2, "$divmod_apos");
    asm.subq(Reg::ZERO, R_DIV_A, R_DIV_A);
    asm.label("$divmod_apos");
    asm.beq(R_DIV_SB, "$divmod_bpos");
    asm.subq(Reg::ZERO, R_DIV_B, R_DIV_B);
    asm.label("$divmod_bpos");
    // Restoring division, 64 iterations, bit 63 down to 0.
    asm.li(R_DIV_Q, 0);
    asm.li(R_DIV_R, 0);
    asm.li(R_DIV_I, 63);
    asm.label("$divmod_loop");
    asm.sll(R_DIV_R, 1, R_DIV_R);
    asm.srl(R_DIV_A, R_DIV_I, R_T1);
    asm.and(R_T1, 1, R_T1);
    asm.bis(R_DIV_R, R_T1, R_DIV_R);
    asm.cmpule(R_DIV_B, R_DIV_R, R_T1);
    asm.beq(R_T1, "$divmod_skip");
    asm.subq(R_DIV_R, R_DIV_B, R_DIV_R);
    asm.li(R_T1, 1);
    asm.sll(R_T1, R_DIV_I, R_T1);
    asm.bis(R_DIV_Q, R_T1, R_DIV_Q);
    asm.label("$divmod_skip");
    asm.subq(R_DIV_I, 1, R_DIV_I);
    asm.bge(R_DIV_I, "$divmod_loop");
    // Signs: quotient negates when signs differ, remainder follows the
    // dividend (truncated division).
    asm.xor(R_T2, R_DIV_SB, R_T1);
    asm.beq(R_T1, "$divmod_qpos");
    asm.subq(Reg::ZERO, R_DIV_Q, R_DIV_Q);
    asm.label("$divmod_qpos");
    asm.beq(R_T2, "$divmod_rpos");
    asm.subq(Reg::ZERO, R_DIV_R, R_DIV_R);
    asm.label("$divmod_rpos");
    asm.mov(R_DIV_Q, R_DIV_A);
    asm.mov(R_DIV_R, R_DIV_B);
    asm.ret(R_DIV_RA);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mg_isa::exec::{run_to_halt, CpuState};

    fn run_src(src: &str, input: &Input) -> (Vec<i64>, i64) {
        let m = parse(src).unwrap();
        crate::sema::check(&m).unwrap();
        let c = compile(&m, input, &RegallocConfig::default()).unwrap();
        let mut cpu = CpuState::new(c.program.entry);
        let mut mem = c.memory();
        run_to_halt(&c.program, &mut cpu, &mut mem, None, 10_000_000).unwrap();
        let n = mem.read_u64(OUT_COUNT_ADDR) as usize;
        let outs =
            (0..n).map(|i| mem.read_u64(OUT_BASE + 8 * i as u64) as i64).collect::<Vec<_>>();
        (outs, mem.read_u64(RESULT_ADDR) as i64)
    }

    #[test]
    fn compiled_matches_interpreter() {
        let src = "var g = 5; arr t[8] = { 1, 2, 3 };\
                   proc bump { g = g + t[2]; }\
                   proc main { call bump; let i = 0; while (i < 4) { out(g * i); i = i + 1; } }";
        let m = parse(src).unwrap();
        crate::sema::check(&m).unwrap();
        let input = Input::tiny();
        let want = crate::interp::run(&m, &input, 1_000_000).unwrap();
        let (outs, sum) = run_src(src, &input);
        assert_eq!(outs, want.outputs);
        assert_eq!(sum, want.checksum);
    }

    #[test]
    fn divmod_routine_edges() {
        let src = "var m = -9223372036854775808;\
                   proc main { out(5 / 0); out(5 % 0); out(m / -1); out(m % -1);\
                               out(-7 / 2); out(-7 % 2); out(7 / -2); out(7 % -2); }";
        let (outs, _) = run_src(src, &Input::tiny());
        assert_eq!(outs, vec![0, 5, i64::MIN, 0, -3, -1, -3, 1]);
    }

    #[test]
    fn entry_points_at_main() {
        let src = "proc helper { } proc main { out(1); }";
        let m = parse(src).unwrap();
        crate::sema::check(&m).unwrap();
        let c = compile(&m, &Input::tiny(), &RegallocConfig::default()).unwrap();
        assert_ne!(c.program.entry, 0, "main is laid out after helper");
    }
}
