//! Use/def and live-variable analysis over the IR, plus interference
//! graph construction.
//!
//! Classic backward dataflow to a fixpoint:
//! `live_out[b] = ∪ live_in[succ]`,
//! `live_in[b] = use[b] ∪ (live_out[b] − def[b])`.
//! Everything iterates in deterministic (`BTree`) order so allocation —
//! and therefore the emitted image — is bit-stable across runs.

use crate::ir::{IrInst, IrProc, Term, VReg};
use std::collections::BTreeSet;

/// Virtual registers read by `inst`, pushed into `out`.
pub fn uses(inst: &IrInst, out: &mut Vec<VReg>) {
    match *inst {
        IrInst::Const { .. } | IrInst::LoadGlobal { .. } | IrInst::LoadSpill { .. } => {}
        IrInst::Un { a, .. } | IrInst::Copy { a, .. } => out.push(a),
        IrInst::Bin { a, b, .. } => {
            out.push(a);
            out.push(b);
        }
        IrInst::StoreGlobal { a, .. } | IrInst::Out { a } | IrInst::StoreSpill { a, .. } => {
            out.push(a)
        }
        IrInst::LoadArr { idx, .. } => out.push(idx),
        IrInst::StoreArr { idx, a, .. } => {
            out.push(idx);
            out.push(a);
        }
        IrInst::Call { .. } => {}
    }
}

/// The virtual register written by `inst`, if any.
pub fn def(inst: &IrInst) -> Option<VReg> {
    match *inst {
        IrInst::Const { d, .. }
        | IrInst::Un { d, .. }
        | IrInst::Bin { d, .. }
        | IrInst::Copy { d, .. }
        | IrInst::LoadGlobal { d, .. }
        | IrInst::LoadArr { d, .. }
        | IrInst::LoadSpill { d, .. } => Some(d),
        IrInst::StoreGlobal { .. }
        | IrInst::StoreArr { .. }
        | IrInst::Call { .. }
        | IrInst::Out { .. }
        | IrInst::StoreSpill { .. } => None,
    }
}

/// Per-block live-variable sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live-in set per block.
    pub live_in: Vec<BTreeSet<VReg>>,
    /// Live-out set per block.
    pub live_out: Vec<BTreeSet<VReg>>,
}

/// Computes per-block liveness for `proc`.
pub fn analyze(proc: &IrProc) -> Liveness {
    let n = proc.blocks.len();
    // Per-block gen (upward-exposed uses) and kill (defs).
    let mut gen = vec![BTreeSet::new(); n];
    let mut kill = vec![BTreeSet::new(); n];
    let mut scratch = Vec::new();
    for (i, b) in proc.blocks.iter().enumerate() {
        for inst in &b.insts {
            scratch.clear();
            uses(inst, &mut scratch);
            for &u in &scratch {
                if !kill[i].contains(&u) {
                    gen[i].insert(u);
                }
            }
            if let Some(d) = def(inst) {
                kill[i].insert(d);
            }
        }
        if let Term::Branch { cond, .. } = b.term {
            if !kill[i].contains(&cond) {
                gen[i].insert(cond);
            }
        }
    }

    let mut live_in = vec![BTreeSet::new(); n];
    let mut live_out = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out = BTreeSet::new();
            for s in proc.blocks[i].term.succs() {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = gen[i].clone();
            inn.extend(out.difference(&kill[i]).copied());
            if out != live_out[i] || inn != live_in[i] {
                changed = true;
                live_out[i] = out;
                live_in[i] = inn;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// The interference graph plus the set of vregs live across a call.
#[derive(Clone, Debug, Default)]
pub struct Interference {
    /// Adjacency: for each vreg, the vregs it interferes with.
    pub edges: std::collections::BTreeMap<VReg, BTreeSet<VReg>>,
    /// Vregs live across at least one [`IrInst::Call`] site. These must
    /// not live in machine registers (calls clobber the whole
    /// allocatable file), so the allocator spills them first.
    pub live_across_call: BTreeSet<VReg>,
}

impl Interference {
    fn touch(&mut self, v: VReg) {
        self.edges.entry(v).or_default();
    }

    fn add_edge(&mut self, a: VReg, b: VReg) {
        if a != b {
            self.edges.entry(a).or_default().insert(b);
            self.edges.entry(b).or_default().insert(a);
        }
    }

    /// Degree of `v` (0 for unknown vregs).
    pub fn degree(&self, v: VReg) -> usize {
        self.edges.get(&v).map_or(0, |s| s.len())
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: VReg, b: VReg) -> bool {
        self.edges.get(&a).is_some_and(|s| s.contains(&b))
    }
}

/// Builds the interference graph for `proc`, walking each block
/// backward from its live-out set.
pub fn interference(proc: &IrProc, live: &Liveness) -> Interference {
    let mut g = Interference::default();
    let mut scratch = Vec::new();
    for (i, b) in proc.blocks.iter().enumerate() {
        let mut live_now = live.live_out[i].clone();
        if let Term::Branch { cond, .. } = b.term {
            live_now.insert(cond);
        }
        for inst in b.insts.iter().rev() {
            if let Some(d) = def(inst) {
                g.touch(d);
                for &l in &live_now {
                    g.add_edge(d, l);
                }
                live_now.remove(&d);
            }
            if matches!(inst, IrInst::Call { .. }) {
                g.live_across_call.extend(live_now.iter().copied());
            }
            scratch.clear();
            uses(inst, &mut scratch);
            for &u in &scratch {
                g.touch(u);
                live_now.insert(u);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrBlock;

    fn v(i: u32) -> VReg {
        VReg(i)
    }

    #[test]
    fn diamond_liveness() {
        // b0: v0 = 1; branch v0 -> b1 / b2
        // b1: v1 = v0   -> b3
        // b2: v2 = v0   -> b3
        // b3: out v0; ret
        let proc = IrProc {
            name: "t".into(),
            blocks: vec![
                IrBlock {
                    insts: vec![IrInst::Const { d: v(0), value: 1 }],
                    term: Term::Branch { cond: v(0), t: 1, f: 2 },
                },
                IrBlock { insts: vec![IrInst::Copy { d: v(1), a: v(0) }], term: Term::Jump(3) },
                IrBlock { insts: vec![IrInst::Copy { d: v(2), a: v(0) }], term: Term::Jump(3) },
                IrBlock { insts: vec![IrInst::Out { a: v(0) }], term: Term::Ret },
            ],
            num_vregs: 3,
        };
        let live = analyze(&proc);
        assert!(live.live_out[0].contains(&v(0)), "v0 flows through the diamond");
        assert!(live.live_in[3].contains(&v(0)));
        assert!(!live.live_out[3].contains(&v(0)), "dead after final use");
        assert!(live.live_in[0].is_empty(), "entry needs nothing");
    }

    #[test]
    fn loop_liveness_reaches_fixpoint() {
        // b0: v0 = 10 -> b1
        // b1: v1 = v0 (use across back edge); branch v1 -> b1 / b2
        // b2: ret
        let proc = IrProc {
            name: "t".into(),
            blocks: vec![
                IrBlock {
                    insts: vec![IrInst::Const { d: v(0), value: 10 }],
                    term: Term::Jump(1),
                },
                IrBlock {
                    insts: vec![IrInst::Copy { d: v(1), a: v(0) }],
                    term: Term::Branch { cond: v(1), t: 1, f: 2 },
                },
                IrBlock { insts: vec![], term: Term::Ret },
            ],
            num_vregs: 2,
        };
        let live = analyze(&proc);
        assert!(live.live_out[1].contains(&v(0)), "back edge keeps v0 live around the loop");
    }
}
