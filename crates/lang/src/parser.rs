//! Recursive-descent parser for `.mgl` source.
//!
//! Grammar (see `DESIGN.md` §10 for the full sketch):
//!
//! ```text
//! module  := (global | array | proc)*
//! global  := "var" IDENT "=" INT ";"
//! array   := "arr" IDENT "[" INT "]" ("=" "{" INT ("," INT)* "}")? ";"
//! proc    := "proc" IDENT "{" stmt* "}"
//! stmt    := "let" IDENT "=" expr ";"
//!          | IDENT "=" expr ";"
//!          | IDENT "[" expr "]" "=" expr ";"
//!          | "if" "(" expr ")" block ("else" block)?
//!          | "while" "(" expr ")" block
//!          | "call" IDENT ";"
//!          | "out" "(" expr ")" ";"
//! ```
//!
//! Expression precedence, loosest first: `||`, `&&`, comparisons, `|`,
//! `^`, `&`, shifts, additive, multiplicative, unary, primary.
//! Unary minus on a literal folds into the literal, so the
//! pretty-printer/parser round-trip is exact.

use crate::ast::{ArrayDecl, BinOp, Expr, Global, Module, Proc, Stmt, UnOp};
use crate::lexer::{lex, SpannedTok, Tok};
use crate::LangError;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

/// Parses `.mgl` source into an unchecked [`Module`] AST.
///
/// # Errors
///
/// Returns [`LangError::Parse`] with a 1-based line number on any
/// lexical or syntactic error. Semantic checks (name resolution,
/// recursion, array sizes) live in [`crate::sema::check`].
pub fn parse(src: &str) -> Result<Module, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut m = Module { globals: Vec::new(), arrays: Vec::new(), procs: Vec::new() };
    while !p.at_end() {
        if p.eat_kw("var") {
            let name = p.ident()?;
            p.expect("=")?;
            let init = p.int_literal()?;
            p.expect(";")?;
            m.globals.push(Global { name, init });
        } else if p.eat_kw("arr") {
            let name = p.ident()?;
            p.expect("[")?;
            let len = p.int_literal()?;
            p.expect("]")?;
            let mut init = Vec::new();
            if p.eat("=") {
                p.expect("{")?;
                loop {
                    init.push(p.int_literal()?);
                    if !p.eat(",") {
                        break;
                    }
                }
                p.expect("}")?;
            }
            if len < 0 {
                return Err(p.err(format!("array `{name}` has negative length")));
            }
            m.arrays.push(ArrayDecl { name, len: len as usize, init });
            p.expect(";")?;
        } else if p.eat_kw("proc") {
            let name = p.ident()?;
            p.expect("{")?;
            let body = p.block_body()?;
            m.procs.push(Proc { name, body });
        } else {
            return Err(p.err("expected `var`, `arr`, or `proc`".to_string()));
        }
    }
    Ok(m)
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(1, |t| t.line)
    }

    fn err(&self, msg: String) -> LangError {
        let got = match self.toks.get(self.pos) {
            Some(t) => format!("{:?}", t.tok),
            None => "end of input".to_string(),
        };
        LangError::Parse { line: self.line(), msg: format!("{msg} (found {got})") }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(w)) if *w == k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<(), LangError> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`")))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek() {
            Some(Tok::Ident(_)) => match self.bump() {
                Some(Tok::Ident(n)) => Ok(n),
                _ => unreachable!(),
            },
            _ => Err(self.err("expected identifier".to_string())),
        }
    }

    /// A literal in declaration position: an integer, optionally negated.
    fn int_literal(&mut self) -> Result<i64, LangError> {
        let neg = self.eat("-");
        match self.bump() {
            Some(Tok::Int(v)) => Ok(if neg { v.wrapping_neg() } else { v }),
            _ => {
                self.pos -= 1;
                Err(self.err("expected integer literal".to_string()))
            }
        }
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut body = Vec::new();
        while !self.eat("}") {
            if self.at_end() {
                return Err(self.err("unterminated block".to_string()));
            }
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect("{")?;
        self.block_body()
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect("=")?;
            let value = self.expr()?;
            self.expect(";")?;
            return Ok(Stmt::Let { name, value });
        }
        if self.eat_kw("if") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let then_body = self.block()?;
            let else_body = if self.eat_kw("else") { self.block()? } else { Vec::new() };
            return Ok(Stmt::If { cond, then_body, else_body });
        }
        if self.eat_kw("while") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("call") {
            let proc = self.ident()?;
            self.expect(";")?;
            return Ok(Stmt::Call { proc });
        }
        if self.eat_kw("out") {
            self.expect("(")?;
            let value = self.expr()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(Stmt::Out { value });
        }
        let name = self.ident()?;
        if self.eat("[") {
            let index = self.expr()?;
            self.expect("]")?;
            self.expect("=")?;
            let value = self.expr()?;
            self.expect(";")?;
            return Ok(Stmt::Store { arr: name, index, value });
        }
        self.expect("=")?;
        let value = self.expr()?;
        self.expect(";")?;
        Ok(Stmt::Assign { name, value })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary(0)
    }

    /// Precedence levels, loosest first.
    fn level_ops(level: usize) -> &'static [(&'static str, BinOp)] {
        const LEVELS: [&[(&str, BinOp)]; 9] = [
            &[("||", BinOp::LOr)],
            &[("&&", BinOp::LAnd)],
            &[
                ("==", BinOp::Eq),
                ("!=", BinOp::Ne),
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        LEVELS[level]
    }

    fn binary(&mut self, level: usize) -> Result<Expr, LangError> {
        if level == 9 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        'outer: loop {
            for &(sym, op) in Self::level_ops(level) {
                if self.eat(sym) {
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::Bin { op, a: Box::new(lhs), b: Box::new(rhs) };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.eat("-") {
            let a = self.unary()?;
            // Fold so `-5` and the pretty-printed form of `Lit(-5)`
            // parse to the same AST.
            return Ok(match a {
                Expr::Lit(v) => Expr::Lit(v.wrapping_neg()),
                other => Expr::Un { op: UnOp::Neg, a: Box::new(other) },
            });
        }
        if self.eat("~") {
            let a = self.unary()?;
            return Ok(Expr::Un { op: UnOp::BitNot, a: Box::new(a) });
        }
        if self.eat("!") {
            let a = self.unary()?;
            return Ok(Expr::Un { op: UnOp::Not, a: Box::new(a) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Lit(v))
            }
            Some(Tok::Ident(n)) => {
                self.pos += 1;
                if n == "__seed" {
                    return Ok(Expr::Seed);
                }
                if n == "__scale" {
                    return Ok(Expr::Scale);
                }
                if self.eat("[") {
                    let index = self.expr()?;
                    self.expect("]")?;
                    return Ok(Expr::Index { arr: n, index: Box::new(index) });
                }
                Ok(Expr::Var(n))
            }
            _ => Err(self.err("expected expression".to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let m = parse("proc main { let x = 1 + 2 * 3; }").unwrap();
        let Stmt::Let { value, .. } = &m.procs[0].body[0] else { panic!() };
        assert_eq!(value.to_string(), "(1 + (2 * 3))");

        let m = parse("proc main { let x = 1 < 2 && 3 < 4; }").unwrap();
        let Stmt::Let { value, .. } = &m.procs[0].body[0] else { panic!() };
        assert_eq!(value.to_string(), "((1 < 2) && (3 < 4))");
    }

    #[test]
    fn negative_literal_folding() {
        let m = parse("proc main { let x = -5; let y = -(5 + 1); }").unwrap();
        let Stmt::Let { value, .. } = &m.procs[0].body[0] else { panic!() };
        assert_eq!(*value, Expr::Lit(-5));
        let Stmt::Let { value, .. } = &m.procs[0].body[1] else { panic!() };
        assert!(matches!(value, Expr::Un { op: UnOp::Neg, .. }));
    }

    #[test]
    fn declarations_round_trip() {
        let src =
            "var g = -3;\narr t[8] = { 1, 2, 3 };\nproc main {\n    out((g + t[0]));\n}\n";
        let m = parse(src).unwrap();
        assert_eq!(m.to_source(), src);
        assert_eq!(parse(&m.to_source()).unwrap(), m);
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse("proc main {\n let = 3;\n}").unwrap_err();
        let LangError::Parse { line, .. } = e else { panic!() };
        assert_eq!(line, 2);
    }
}
