//! A small non-SSA register IR and the AST → IR lowering.
//!
//! Each procedure becomes a control-flow graph of basic blocks over
//! virtual registers ([`VReg`]). Scalar globals live in memory (loaded
//! into a fresh vreg per use, stored per def), so only locals and
//! expression temporaries compete for machine registers. Short-circuit
//! `&&`/`||` lower to control flow here, so later stages never see them.
//!
//! Lowering is parameterized by the workload [`Input`]: `__seed` and
//! `__scale` become constants, which makes every compiled image a pure
//! function of (source, input) — exactly what the content-hashed
//! workload identity in [`crate::source`] needs.

use crate::ast::{BinOp, Expr, Module, Stmt, UnOp};
use mg_workloads::Input;
use std::collections::BTreeMap;
use std::fmt;

/// A virtual register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Unary IR operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnIr {
    /// `d = 0 - a` (wrapping).
    Neg,
    /// `d = !a` (bitwise complement).
    BitNot,
    /// `d = (a == 0) as i64`.
    IsZero,
}

/// Binary IR operations. `Gt`/`Ge`/`Ne` from the AST are normalized
/// away during lowering (operand swap / `IsZero` of `CmpEq`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinIr {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Truncated signed divide (`x / 0 == 0`).
    Div,
    /// Signed remainder (`x % 0 == x`).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (count masked to 6 bits).
    Shl,
    /// Arithmetic right shift (count masked to 6 bits).
    Shr,
    /// Equality, 0/1.
    CmpEq,
    /// Signed less-than, 0/1.
    CmpLt,
    /// Signed less-or-equal, 0/1.
    CmpLe,
}

/// One IR instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrInst {
    /// `d = value`.
    Const {
        /// Destination.
        d: VReg,
        /// Immediate value.
        value: i64,
    },
    /// `d = op a`.
    Un {
        /// Operation.
        op: UnIr,
        /// Destination.
        d: VReg,
        /// Operand.
        a: VReg,
    },
    /// `d = a op b`.
    Bin {
        /// Operation.
        op: BinIr,
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `d = a`.
    Copy {
        /// Destination.
        d: VReg,
        /// Source.
        a: VReg,
    },
    /// `d = globals[idx]` (memory load).
    LoadGlobal {
        /// Destination.
        d: VReg,
        /// Global index (declaration order).
        idx: usize,
    },
    /// `globals[idx] = a` (memory store).
    StoreGlobal {
        /// Global index (declaration order).
        idx: usize,
        /// Value.
        a: VReg,
    },
    /// `d = arrays[arr][idx mod len]` (memory load; index wraps).
    LoadArr {
        /// Destination.
        d: VReg,
        /// Array index (declaration order).
        arr: usize,
        /// Element index vreg.
        idx: VReg,
    },
    /// `arrays[arr][idx mod len] = a` (memory store; index wraps).
    StoreArr {
        /// Array index (declaration order).
        arr: usize,
        /// Element index vreg.
        idx: VReg,
        /// Value.
        a: VReg,
    },
    /// Invoke procedure `proc`. Clobbers every allocatable machine
    /// register, so any vreg live across this must live in a spill slot.
    Call {
        /// Callee procedure index.
        proc: usize,
    },
    /// Emit `a` to the output stream and fold it into the checksum.
    Out {
        /// Value.
        a: VReg,
    },
    /// `d = spill[slot]` — inserted by the register allocator.
    LoadSpill {
        /// Destination.
        d: VReg,
        /// Procedure-local spill slot.
        slot: usize,
    },
    /// `spill[slot] = a` — inserted by the register allocator.
    StoreSpill {
        /// Procedure-local spill slot.
        slot: usize,
        /// Value.
        a: VReg,
    },
}

/// A block terminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Term {
    /// Unconditional jump to a block index.
    Jump(usize),
    /// Branch: to `t` if `cond != 0`, else to `f`.
    Branch {
        /// Condition vreg.
        cond: VReg,
        /// Taken successor.
        t: usize,
        /// Fall-through successor.
        f: usize,
    },
    /// Return from the procedure (or halt, for `main`).
    Ret,
}

impl Term {
    /// Successor block indices.
    pub fn succs(&self) -> Vec<usize> {
        match *self {
            Term::Jump(t) => vec![t],
            Term::Branch { t, f, .. } => vec![t, f],
            Term::Ret => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrBlock {
    /// Instructions, in order.
    pub insts: Vec<IrInst>,
    /// Terminator.
    pub term: Term,
}

/// A procedure in IR form. Block 0 is the entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrProc {
    /// Procedure name.
    pub name: String,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<IrBlock>,
    /// Number of virtual registers in use (ids `0..num_vregs`).
    pub num_vregs: u32,
}

/// A lowered module.
#[derive(Clone, Debug)]
pub struct IrModule {
    /// Procedures; `main` is at index [`IrModule::main`].
    pub procs: Vec<IrProc>,
    /// Index of `main` in [`IrModule::procs`].
    pub main: usize,
    /// Array lengths, in declaration order (for codegen masking).
    pub array_lens: Vec<usize>,
    /// Whether any `Div`/`Rem` survives lowering (codegen emits the
    /// shared `__divmod` routine only if so).
    pub uses_divmod: bool,
}

struct Lowerer<'m> {
    globals: BTreeMap<&'m str, usize>,
    arrays: BTreeMap<&'m str, usize>,
    procs: BTreeMap<&'m str, usize>,
    input: Input,
    blocks: Vec<IrBlock>,
    cur: usize,
    next_vreg: u32,
    /// Innermost-first scope stack mapping source names to vregs.
    scopes: Vec<BTreeMap<String, VReg>>,
    uses_divmod: bool,
}

/// Lowers a semantically-checked module (see [`crate::sema::check`])
/// to IR, with `__seed`/`__scale` resolved against `input`.
pub fn lower(m: &Module, input: &Input) -> IrModule {
    let globals: BTreeMap<&str, usize> =
        m.globals.iter().enumerate().map(|(i, g)| (g.name.as_str(), i)).collect();
    let arrays: BTreeMap<&str, usize> =
        m.arrays.iter().enumerate().map(|(i, a)| (a.name.as_str(), i)).collect();
    let procs: BTreeMap<&str, usize> =
        m.procs.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();
    let main = procs["main"];
    let mut uses_divmod = false;
    let lowered = m
        .procs
        .iter()
        .map(|p| {
            let mut lw = Lowerer {
                globals: globals.clone(),
                arrays: arrays.clone(),
                procs: procs.clone(),
                input: *input,
                blocks: vec![IrBlock { insts: Vec::new(), term: Term::Ret }],
                cur: 0,
                next_vreg: 0,
                scopes: vec![BTreeMap::new()],
                uses_divmod: false,
            };
            lw.body(&p.body);
            lw.blocks[lw.cur].term = Term::Ret;
            uses_divmod |= lw.uses_divmod;
            IrProc { name: p.name.clone(), blocks: lw.blocks, num_vregs: lw.next_vreg }
        })
        .collect();
    IrModule {
        procs: lowered,
        main,
        array_lens: m.arrays.iter().map(|a| a.len).collect(),
        uses_divmod,
    }
}

impl<'m> Lowerer<'m> {
    fn fresh(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn emit(&mut self, inst: IrInst) {
        self.blocks[self.cur].insts.push(inst);
    }

    /// Appends a new open block and returns its index.
    fn new_block(&mut self) -> usize {
        self.blocks.push(IrBlock { insts: Vec::new(), term: Term::Ret });
        self.blocks.len() - 1
    }

    fn set_term(&mut self, b: usize, term: Term) {
        self.blocks[b].term = term;
    }

    fn lookup(&self, name: &str) -> Option<VReg> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn body(&mut self, body: &'m [Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &'m Stmt) {
        match s {
            Stmt::Let { name, value } => {
                let v = self.expr(value);
                // Bind to a dedicated vreg (not the expression temp) so
                // later assignments through shadowing scopes stay simple.
                let slot = self.fresh();
                self.emit(IrInst::Copy { d: slot, a: v });
                self.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), slot);
            }
            Stmt::Assign { name, value } => {
                let v = self.expr(value);
                match self.lookup(name) {
                    Some(slot) => self.emit(IrInst::Copy { d: slot, a: v }),
                    None => {
                        let idx = self.globals[name.as_str()];
                        self.emit(IrInst::StoreGlobal { idx, a: v });
                    }
                }
            }
            Stmt::Store { arr, index, value } => {
                let idx = self.expr(index);
                let val = self.expr(value);
                let a = self.arrays[arr.as_str()];
                self.emit(IrInst::StoreArr { arr: a, idx, a: val });
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = self.expr(cond);
                let head = self.cur;
                let then_b = self.new_block();
                self.cur = then_b;
                self.scopes.push(BTreeMap::new());
                self.body(then_body);
                self.scopes.pop();
                let then_end = self.cur;
                let else_b = self.new_block();
                self.cur = else_b;
                self.scopes.push(BTreeMap::new());
                self.body(else_body);
                self.scopes.pop();
                let else_end = self.cur;
                let join = self.new_block();
                self.set_term(head, Term::Branch { cond: c, t: then_b, f: else_b });
                self.set_term(then_end, Term::Jump(join));
                self.set_term(else_end, Term::Jump(join));
                self.cur = join;
            }
            Stmt::While { cond, body } => {
                let pre = self.cur;
                let head = self.new_block();
                self.set_term(pre, Term::Jump(head));
                self.cur = head;
                let c = self.expr(cond);
                let cond_end = self.cur;
                let body_b = self.new_block();
                self.cur = body_b;
                self.scopes.push(BTreeMap::new());
                self.body(body);
                self.scopes.pop();
                let body_end = self.cur;
                let exit = self.new_block();
                self.set_term(cond_end, Term::Branch { cond: c, t: body_b, f: exit });
                self.set_term(body_end, Term::Jump(head));
                self.cur = exit;
            }
            Stmt::Call { proc } => {
                let p = self.procs[proc.as_str()];
                self.emit(IrInst::Call { proc: p });
            }
            Stmt::Out { value } => {
                let v = self.expr(value);
                self.emit(IrInst::Out { a: v });
            }
        }
    }

    /// Lowers an expression, returning the vreg holding its value.
    fn expr(&mut self, e: &Expr) -> VReg {
        match e {
            Expr::Lit(v) => {
                let d = self.fresh();
                self.emit(IrInst::Const { d, value: *v });
                d
            }
            Expr::Seed => {
                let d = self.fresh();
                self.emit(IrInst::Const { d, value: self.input.seed as i64 });
                d
            }
            Expr::Scale => {
                let d = self.fresh();
                self.emit(IrInst::Const { d, value: self.input.scale as i64 });
                d
            }
            Expr::Var(name) => match self.lookup(name) {
                Some(v) => v,
                None => {
                    let idx = self.globals[name.as_str()];
                    let d = self.fresh();
                    self.emit(IrInst::LoadGlobal { d, idx });
                    d
                }
            },
            Expr::Index { arr, index } => {
                let idx = self.expr(index);
                let a = self.arrays[arr.as_str()];
                let d = self.fresh();
                self.emit(IrInst::LoadArr { d, arr: a, idx });
                d
            }
            Expr::Un { op, a } => {
                let av = self.expr(a);
                let d = self.fresh();
                let op = match op {
                    UnOp::Neg => UnIr::Neg,
                    UnOp::BitNot => UnIr::BitNot,
                    UnOp::Not => UnIr::IsZero,
                };
                self.emit(IrInst::Un { op, d, a: av });
                d
            }
            Expr::Bin { op: BinOp::LAnd, a, b } => self.short_circuit(a, b, true),
            Expr::Bin { op: BinOp::LOr, a, b } => self.short_circuit(a, b, false),
            Expr::Bin { op, a, b } => {
                let (op, swap) = match op {
                    BinOp::Add => (BinIr::Add, false),
                    BinOp::Sub => (BinIr::Sub, false),
                    BinOp::Mul => (BinIr::Mul, false),
                    BinOp::Div => (BinIr::Div, false),
                    BinOp::Rem => (BinIr::Rem, false),
                    BinOp::And => (BinIr::And, false),
                    BinOp::Or => (BinIr::Or, false),
                    BinOp::Xor => (BinIr::Xor, false),
                    BinOp::Shl => (BinIr::Shl, false),
                    BinOp::Shr => (BinIr::Shr, false),
                    BinOp::Eq => (BinIr::CmpEq, false),
                    BinOp::Lt => (BinIr::CmpLt, false),
                    BinOp::Le => (BinIr::CmpLe, false),
                    BinOp::Gt => (BinIr::CmpLt, true),
                    BinOp::Ge => (BinIr::CmpLe, true),
                    BinOp::Ne => {
                        let av = self.expr(a);
                        let bv = self.expr(b);
                        let eq = self.fresh();
                        self.emit(IrInst::Bin { op: BinIr::CmpEq, d: eq, a: av, b: bv });
                        let d = self.fresh();
                        self.emit(IrInst::Un { op: UnIr::IsZero, d, a: eq });
                        return d;
                    }
                    BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
                };
                if matches!(op, BinIr::Div | BinIr::Rem) {
                    self.uses_divmod = true;
                }
                let av = self.expr(a);
                let bv = self.expr(b);
                let d = self.fresh();
                let (x, y) = if swap { (bv, av) } else { (av, bv) };
                self.emit(IrInst::Bin { op, d, a: x, b: y });
                d
            }
        }
    }

    /// Short-circuit `a && b` (`and == true`) or `a || b`: the result
    /// vreg is written on every path, then control joins.
    fn short_circuit(&mut self, a: &Expr, b: &Expr, and: bool) -> VReg {
        let d = self.fresh();
        let av = self.expr(a);
        let head = self.cur;
        let eval_b = self.new_block();
        self.cur = eval_b;
        let bv = self.expr(b);
        // Normalize b to 0/1: d = !!b.
        let nz = self.fresh();
        self.emit(IrInst::Un { op: UnIr::IsZero, d: nz, a: bv });
        self.emit(IrInst::Un { op: UnIr::IsZero, d, a: nz });
        let eval_b_end = self.cur;
        let skip = self.new_block();
        self.cur = skip;
        self.emit(IrInst::Const { d, value: if and { 0 } else { 1 } });
        let join = self.new_block();
        let (t, f) = if and { (eval_b, skip) } else { (skip, eval_b) };
        self.set_term(head, Term::Branch { cond: av, t, f });
        self.set_term(eval_b_end, Term::Jump(join));
        self.set_term(skip, Term::Jump(join));
        self.cur = join;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> IrModule {
        let m = parse(src).unwrap();
        crate::sema::check(&m).unwrap();
        lower(&m, &Input::tiny())
    }

    #[test]
    fn straight_line_shapes() {
        let ir = lower_src("var g = 1; proc main { g = g + 2; out(g); }");
        let main = &ir.procs[ir.main];
        assert_eq!(main.blocks.len(), 1);
        assert!(matches!(main.blocks[0].term, Term::Ret));
        assert!(main.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, IrInst::StoreGlobal { idx: 0, .. })));
        assert!(!ir.uses_divmod);
    }

    #[test]
    fn while_builds_a_loop() {
        let ir = lower_src("proc main { let i = 0; while (i < 3) { i = i + 1; } out(i); }");
        let main = &ir.procs[ir.main];
        // pre, head, body, exit — and the loop edge goes back to head.
        assert!(main.blocks.len() >= 4);
        let back_edges = main
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| b.term.succs().iter().any(|&s| s <= *i))
            .count();
        assert!(back_edges >= 1, "loop produces a back edge");
    }

    #[test]
    fn divmod_flag_and_short_circuit() {
        let ir = lower_src("proc main { out(7 / 2); }");
        assert!(ir.uses_divmod);
        let ir = lower_src("proc main { out(1 && 2); }");
        assert!(!ir.uses_divmod);
        let main = &ir.procs[ir.main];
        assert!(
            main.blocks.len() >= 4,
            "short-circuit lowers to control flow, got {}",
            main.blocks.len()
        );
    }
}
