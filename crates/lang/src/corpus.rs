//! The built-in regression corpus.
//!
//! Each entry is a small hand-written `.mgl` program stressing one corner
//! of the compiler: register pressure, loop shapes, dead code, division
//! edge cases, array traversal, seeded data movement, call-crossing
//! lifetimes, and scope shadowing. The sources live under
//! `tests/corpus/*.mgl` and are embedded at build time so the corpus is
//! available to the library, the test suites, and the CLI without any
//! filesystem discovery.

/// Every corpus program as `(name, source)`, in a fixed canonical order.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("spill", include_str!("../tests/corpus/spill.mgl")),
        ("loops", include_str!("../tests/corpus/loops.mgl")),
        ("deadcode", include_str!("../tests/corpus/deadcode.mgl")),
        ("divmod", include_str!("../tests/corpus/divmod.mgl")),
        ("sieve", include_str!("../tests/corpus/sieve.mgl")),
        ("sort", include_str!("../tests/corpus/sort.mgl")),
        ("calls", include_str!("../tests/corpus/calls.mgl")),
        ("nesting", include_str!("../tests/corpus/nesting.mgl")),
    ]
}

/// Look up a single corpus program by name.
pub fn get(name: &str) -> Option<&'static str> {
    all().into_iter().find(|(n, _)| *n == name).map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_checks() {
        for (name, src) in all() {
            let m = crate::parser::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            crate::sema::check(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn corpus_names_unique() {
        let names: std::collections::BTreeSet<_> = all().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), all().len());
        assert!(get("sieve").is_some());
        assert!(get("nope").is_none());
    }
}
