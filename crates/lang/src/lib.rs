//! mg-lang: a tiny imperative language compiled to the mg simulator ISA.
//!
//! The language has 64-bit integers, fixed-size power-of-two arrays,
//! arithmetic/logic/comparison operators, `if`/`while` control flow, and
//! flat (non-recursive) procedures. A program communicates results by
//! writing an output stream and a running checksum to a fixed memory
//! location, so a compiled image can be compared bit-for-bit against the
//! reference interpreter and against the simulator's mini-graph rewriting
//! pipeline.
//!
//! The crate is organised as a conventional compiler pipeline:
//!
//! | stage | module | output |
//! |---|---|---|
//! | lexing | [`lexer`] | token stream |
//! | parsing | [`parser`] | [`ast::Module`] |
//! | checking | [`sema`] | validated AST |
//! | lowering | [`ir`] | virtual-register CFG |
//! | liveness | [`liveness`] | live sets + interference graph |
//! | allocation | [`regalloc`] | colors + spill slots |
//! | emission | [`codegen`] | [`mg_isa::Program`] image |
//!
//! Alongside the compiler sit a reference AST interpreter ([`interp`])
//! that defines the architectural semantics, a deterministic seeded
//! program generator ([`gen`]) for differential testing, a hand-written
//! regression corpus ([`corpus`]), and a [`mg_api::WorkloadSource`]
//! adapter ([`source`]) that registers compiled programs with the engine
//! under content-hashed stable identities.
//!
//! ```
//! use mg_api::Input;
//!
//! let src = "var g = 0; proc main { g = 6 * 7; out(g); }";
//! let compiled = mg_lang::compile_source(src, &Input::reference()).unwrap();
//! assert!(compiled.stats.insts > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;

pub mod ast;
pub mod codegen;
pub mod corpus;
pub mod gen;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod liveness;
pub mod parser;
pub mod regalloc;
pub mod sema;
pub mod source;

pub use codegen::{compile, CompileStats, Compiled};
pub use interp::{run as interpret, InterpResult};
pub use regalloc::RegallocConfig;
pub use source::LangWorkload;

/// Errors from any stage of the mg-lang pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexing or parsing failed at the given 1-based source line.
    Parse {
        /// 1-based line number of the offending token.
        line: u32,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// The program parsed but failed semantic checking.
    Sema(String),
    /// The reference interpreter rejected the program at runtime
    /// (for example by exceeding its step or output budget).
    Interp(String),
    /// Code generation failed (for example spill-slot exhaustion).
    Codegen(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            LangError::Sema(msg) => write!(f, "semantic error: {msg}"),
            LangError::Interp(msg) => write!(f, "interpreter error: {msg}"),
            LangError::Codegen(msg) => write!(f, "codegen error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

/// Parse, check, and compile `src` in one call with the default register
/// configuration.
pub fn compile_source(src: &str, input: &mg_api::Input) -> Result<Compiled, LangError> {
    let module = parser::parse(src)?;
    sema::check(&module)?;
    codegen::compile(&module, input, &RegallocConfig::default())
}
