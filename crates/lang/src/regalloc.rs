//! Chaitin-style graph-coloring register allocation with spilling.
//!
//! The allocator colors each procedure's interference graph with `K`
//! colors (the allocatable machine registers). When simplification gets
//! stuck, the highest-degree spillable vreg is spilled — every def gains
//! a [`IrInst::StoreSpill`], every use a [`IrInst::LoadSpill`] through a
//! fresh short-lived temporary — and allocation restarts. Vregs live
//! across a [`IrInst::Call`] are spilled eagerly: calls clobber the
//! entire allocatable file (there is no save/restore convention), so
//! register residence across a call is never correct.
//!
//! Spill temporaries are marked unspillable; their live ranges span at
//! most one instruction, so with `K ≥ 3` (two operands and a result)
//! allocation always terminates.

use crate::ir::{IrInst, IrProc, VReg};
use crate::liveness::{analyze, def, interference, uses, Interference};
use std::collections::{BTreeMap, BTreeSet};

/// Allocator configuration.
#[derive(Clone, Copy, Debug)]
pub struct RegallocConfig {
    /// Number of allocatable machine registers (`K`). The default, 15,
    /// matches the codegen pool `r1..r15`. Must be at least 3.
    pub num_regs: usize,
}

impl Default for RegallocConfig {
    fn default() -> RegallocConfig {
        RegallocConfig { num_regs: 15 }
    }
}

/// The result of allocating one procedure.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Color (`0..num_regs`) per surviving vreg.
    pub colors: BTreeMap<VReg, usize>,
    /// Number of procedure-local spill slots used.
    pub spill_slots: usize,
    /// How many original vregs were spilled (diagnostics).
    pub spilled: usize,
}

/// Iteration cap: each round either colors successfully or spills at
/// least one vreg, and the vreg count only grows with short-lived
/// unspillable temps, so this is never reached in practice.
const MAX_ROUNDS: usize = 64;

/// Allocates registers for `proc`, rewriting it in place with spill
/// code as needed.
///
/// # Panics
///
/// Panics if `cfg.num_regs < 3` or if allocation fails to converge
/// (impossible for IR produced by [`crate::ir::lower`]).
pub fn allocate(proc: &mut IrProc, cfg: &RegallocConfig) -> Allocation {
    assert!(cfg.num_regs >= 3, "need at least 3 allocatable registers");
    let k = cfg.num_regs;
    let mut no_spill: BTreeSet<VReg> = BTreeSet::new();
    let mut slots: BTreeMap<VReg, usize> = BTreeMap::new();

    for _ in 0..MAX_ROUNDS {
        let live = analyze(proc);
        let g = interference(proc, &live);

        // Calls clobber every allocatable register: anything live across
        // one goes to memory, all at once, before trying to color.
        let must: Vec<VReg> =
            g.live_across_call.iter().filter(|v| !slots.contains_key(v)).copied().collect();
        if !must.is_empty() {
            for v in must {
                assert!(!no_spill.contains(&v), "spill temp live across a call");
                spill(proc, v, &mut slots, &mut no_spill);
            }
            continue;
        }

        match try_color(&g, k) {
            Ok(colors) => {
                return Allocation { colors, spill_slots: slots.len(), spilled: slots.len() }
            }
            Err(stuck) => {
                // Spill the highest-degree spillable node (ties: lowest
                // id, for determinism) and retry.
                let victim = stuck
                    .iter()
                    .filter(|v| !no_spill.contains(v))
                    .max_by_key(|&&v| (g.degree(v), std::cmp::Reverse(v.0)))
                    .copied()
                    .expect("a spillable node always exists when stuck");
                spill(proc, victim, &mut slots, &mut no_spill);
            }
        }
    }
    panic!("register allocation did not converge in {MAX_ROUNDS} rounds");
}

/// Attempts to color `g` with `k` colors; on failure returns the set of
/// nodes remaining when simplification got stuck.
fn try_color(g: &Interference, k: usize) -> Result<BTreeMap<VReg, usize>, BTreeSet<VReg>> {
    let mut degree: BTreeMap<VReg, usize> =
        g.edges.iter().map(|(&v, s)| (v, s.len())).collect();
    let mut remaining: BTreeSet<VReg> = degree.keys().copied().collect();
    let mut stack = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let pick = remaining.iter().find(|&&v| degree[&v] < k).copied();
        match pick {
            Some(v) => {
                remaining.remove(&v);
                stack.push(v);
                for n in &g.edges[&v] {
                    if let Some(d) = degree.get_mut(n) {
                        *d = d.saturating_sub(1);
                    }
                }
            }
            None => return Err(remaining),
        }
    }
    let mut colors = BTreeMap::new();
    while let Some(v) = stack.pop() {
        let taken: BTreeSet<usize> =
            g.edges[&v].iter().filter_map(|n| colors.get(n).copied()).collect();
        let c = (0..k).find(|c| !taken.contains(c)).expect("simplify guarantees a color");
        colors.insert(v, c);
    }
    Ok(colors)
}

/// Rewrites `proc` so `v` lives in a spill slot: defs store through it,
/// uses reload into fresh unspillable temps.
fn spill(
    proc: &mut IrProc,
    v: VReg,
    slots: &mut BTreeMap<VReg, usize>,
    no_spill: &mut BTreeSet<VReg>,
) {
    let slot = slots.len();
    slots.insert(v, slot);
    let mut scratch = Vec::new();
    for b in &mut proc.blocks {
        let old = std::mem::take(&mut b.insts);
        let mut out = Vec::with_capacity(old.len() + 4);
        for mut inst in old {
            scratch.clear();
            uses(&inst, &mut scratch);
            if scratch.contains(&v) {
                let t = VReg(proc.num_vregs);
                proc.num_vregs += 1;
                no_spill.insert(t);
                out.push(IrInst::LoadSpill { d: t, slot });
                rename_uses(&mut inst, v, t);
            }
            let defines = def(&inst) == Some(v);
            out.push(inst);
            if defines {
                out.push(IrInst::StoreSpill { slot, a: v });
            }
        }
        b.insts = out;
        // A branch condition is a use too: reload before the terminator.
        if let crate::ir::Term::Branch { cond, t, f } = b.term {
            if cond == v {
                let tmp = VReg(proc.num_vregs);
                proc.num_vregs += 1;
                no_spill.insert(tmp);
                b.insts.push(IrInst::LoadSpill { d: tmp, slot });
                b.term = crate::ir::Term::Branch { cond: tmp, t, f };
            }
        }
    }
}

fn rename_uses(inst: &mut IrInst, from: VReg, to: VReg) {
    let r = |x: &mut VReg| {
        if *x == from {
            *x = to;
        }
    };
    match inst {
        IrInst::Const { .. }
        | IrInst::LoadGlobal { .. }
        | IrInst::LoadSpill { .. }
        | IrInst::Call { .. } => {}
        IrInst::Un { a, .. } | IrInst::Copy { a, .. } => r(a),
        IrInst::Bin { a, b, .. } => {
            r(a);
            r(b);
        }
        IrInst::StoreGlobal { a, .. } | IrInst::Out { a } | IrInst::StoreSpill { a, .. } => {
            r(a)
        }
        IrInst::LoadArr { idx, .. } => r(idx),
        IrInst::StoreArr { idx, a, .. } => {
            r(idx);
            r(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrBlock, Term};

    fn v(i: u32) -> VReg {
        VReg(i)
    }

    /// Verifies a coloring against a freshly built interference graph.
    fn assert_valid(proc: &IrProc, alloc: &Allocation, k: usize) {
        let live = analyze(proc);
        let g = interference(proc, &live);
        for (&a, ns) in &g.edges {
            assert!(alloc.colors[&a] < k);
            for &b in ns {
                assert_ne!(alloc.colors[&a], alloc.colors[&b], "{a} and {b} interfere");
            }
        }
        assert!(g.live_across_call.is_empty(), "nothing may stay live across a call");
    }

    #[test]
    fn spill_under_pressure() {
        // 8 simultaneously-live constants, summed at the end, with
        // only 3 registers: spilling is unavoidable.
        let n = 8u32;
        let mut insts: Vec<IrInst> =
            (0..n).map(|i| IrInst::Const { d: v(i), value: i as i64 }).collect();
        let mut acc = n;
        insts.push(IrInst::Copy { d: v(acc), a: v(0) });
        for i in 1..n {
            let next = acc + 1;
            insts.push(IrInst::Bin {
                op: crate::ir::BinIr::Add,
                d: v(next),
                a: v(acc),
                b: v(i),
            });
            acc = next;
        }
        insts.push(IrInst::Out { a: v(acc) });
        let mut proc = IrProc {
            name: "t".into(),
            blocks: vec![IrBlock { insts, term: Term::Ret }],
            num_vregs: acc + 1,
        };
        let alloc = allocate(&mut proc, &RegallocConfig { num_regs: 3 });
        assert!(alloc.spilled > 0, "pressure forces spills");
        assert_valid(&proc, &alloc, 3);
    }

    #[test]
    fn call_crossing_values_are_spilled() {
        let mut proc = IrProc {
            name: "t".into(),
            blocks: vec![IrBlock {
                insts: vec![
                    IrInst::Const { d: v(0), value: 7 },
                    IrInst::Call { proc: 1 },
                    IrInst::Out { a: v(0) },
                ],
                term: Term::Ret,
            }],
            num_vregs: 1,
        };
        let alloc = allocate(&mut proc, &RegallocConfig::default());
        assert_eq!(alloc.spilled, 1, "v0 crosses the call");
        assert!(
            proc.blocks[0].insts.iter().any(|i| matches!(i, IrInst::StoreSpill { .. })),
            "def stores to the slot"
        );
        assert_valid(&proc, &alloc, 15);
    }

    #[test]
    fn no_pressure_no_spill() {
        let mut proc = IrProc {
            name: "t".into(),
            blocks: vec![IrBlock {
                insts: vec![
                    IrInst::Const { d: v(0), value: 1 },
                    IrInst::Un { op: crate::ir::UnIr::Neg, d: v(1), a: v(0) },
                    IrInst::Out { a: v(1) },
                ],
                term: Term::Ret,
            }],
            num_vregs: 2,
        };
        let alloc = allocate(&mut proc, &RegallocConfig::default());
        assert_eq!(alloc.spilled, 0);
        assert_valid(&proc, &alloc, 15);
    }
}
