//! Abstract syntax for `.mgl` programs, plus the pretty-printer.
//!
//! The language is deliberately small: every value is a 64-bit integer,
//! arrays are fixed-size power-of-two globals, and procedures take no
//! parameters and return nothing (they communicate through globals and
//! arrays). See `DESIGN.md` §10 for the grammar sketch.
//!
//! The pretty-printer ([`Module::to_source`]) fully parenthesizes
//! expressions, and [`crate::parser::parse`] folds unary minus applied to
//! a literal into the literal, so `parse(m.to_source()) == m` holds for
//! every module the parser or generator can produce.

use std::fmt;

/// A whole program: globals, arrays, and procedures (one must be `main`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// Scalar globals, in declaration order.
    pub globals: Vec<Global>,
    /// Array declarations, in declaration order.
    pub arrays: Vec<ArrayDecl>,
    /// Procedures, in declaration order.
    pub procs: Vec<Proc>,
}

/// A scalar global variable with a constant initializer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Initial value.
    pub init: i64,
}

/// A fixed-size global array; `len` must be a power of two. Indices wrap
/// modulo `len` (bitwise AND with `len - 1`), so every access is in
/// bounds by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name (its own namespace; may collide with a scalar name).
    pub name: String,
    /// Element count; a power of two in `1..=65536`.
    pub len: usize,
    /// Leading initial values (rest are zero). At most `len` entries.
    pub init: Vec<i64>,
}

/// A procedure: no parameters, no return value, a statement body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proc {
    /// Procedure name; `main` is the entry point.
    pub name: String,
    /// Statement body.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let x = e;` — declares a local in the current lexical scope.
    Let {
        /// Local name (may shadow an outer local or a global).
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `x = e;` — assigns the innermost visible local or a global.
    Assign {
        /// Target name.
        name: String,
        /// Value.
        value: Expr,
    },
    /// `a[i] = e;` — stores into an array (index wraps modulo length).
    Store {
        /// Array name.
        arr: String,
        /// Index expression.
        index: Expr,
        /// Value.
        value: Expr,
    },
    /// `if (c) { … } else { … }` (the `else` arm may be empty).
    If {
        /// Condition; nonzero means true.
        cond: Expr,
        /// Then-arm.
        then_body: Vec<Stmt>,
        /// Else-arm (empty when no `else` was written).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { … }`.
    While {
        /// Loop condition; nonzero means continue.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `call p;` — invokes a procedure.
    Call {
        /// Callee name.
        proc: String,
    },
    /// `out(e);` — appends `e` to the output stream and folds it into
    /// the program checksum.
    Out {
        /// Value to emit.
        value: Expr,
    },
}

/// An expression. All arithmetic is wrapping 64-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// Variable reference (innermost local, else global).
    Var(String),
    /// `a[i]` — array read (index wraps modulo length).
    Index {
        /// Array name.
        arr: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `__seed` — the workload input seed, as an `i64`.
    Seed,
    /// `__scale` — the workload input scale, as an `i64`.
    Scale,
    /// A unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Box<Expr>,
    },
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-e` — wrapping negation.
    Neg,
    /// `~e` — bitwise complement.
    BitNot,
    /// `!e` — logical not: 1 if `e == 0`, else 0.
    Not,
}

/// Binary operators. Comparisons yield 0/1; `&&`/`||` short-circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Truncated signed division; `x / 0 == 0`, `MIN / -1 == MIN`.
    Div,
    /// Signed remainder; `x % 0 == x`, `MIN % -1 == 0`.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift; the count is masked to 6 bits.
    Shl,
    /// Arithmetic right shift; the count is masked to 6 bits.
    Shr,
    /// Equality (0/1).
    Eq,
    /// Inequality (0/1).
    Ne,
    /// Signed less-than (0/1).
    Lt,
    /// Signed less-or-equal (0/1).
    Le,
    /// Signed greater-than (0/1).
    Gt,
    /// Signed greater-or-equal (0/1).
    Ge,
    /// Short-circuit logical AND (0/1).
    LAnd,
    /// Short-circuit logical OR (0/1).
    LOr,
}

impl BinOp {
    /// Source-level spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(n) => f.write_str(n),
            Expr::Index { arr, index } => write!(f, "{arr}[{index}]"),
            Expr::Seed => f.write_str("__seed"),
            Expr::Scale => f.write_str("__scale"),
            Expr::Un { op, a } => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::BitNot => "~",
                    UnOp::Not => "!",
                };
                write!(f, "({sym}{a})")
            }
            Expr::Bin { op, a, b } => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

fn write_body(f: &mut fmt::Formatter<'_>, body: &[Stmt], indent: usize) -> fmt::Result {
    for s in body {
        s.write(f, indent)?;
    }
    Ok(())
}

impl Stmt {
    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "    ".repeat(indent);
        match self {
            Stmt::Let { name, value } => writeln!(f, "{pad}let {name} = {value};"),
            Stmt::Assign { name, value } => writeln!(f, "{pad}{name} = {value};"),
            Stmt::Store { arr, index, value } => {
                writeln!(f, "{pad}{arr}[{index}] = {value};")
            }
            Stmt::If { cond, then_body, else_body } => {
                writeln!(f, "{pad}if ({cond}) {{")?;
                write_body(f, then_body, indent + 1)?;
                if else_body.is_empty() {
                    writeln!(f, "{pad}}}")
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    write_body(f, else_body, indent + 1)?;
                    writeln!(f, "{pad}}}")
                }
            }
            Stmt::While { cond, body } => {
                writeln!(f, "{pad}while ({cond}) {{")?;
                write_body(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::Call { proc } => writeln!(f, "{pad}call {proc};"),
            Stmt::Out { value } => writeln!(f, "{pad}out({value});"),
        }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "var {} = {};", g.name, g.init)?;
        }
        for a in &self.arrays {
            if a.init.is_empty() {
                writeln!(f, "arr {}[{}];", a.name, a.len)?;
            } else {
                let vals: Vec<String> = a.init.iter().map(|v| v.to_string()).collect();
                writeln!(f, "arr {}[{}] = {{ {} }};", a.name, a.len, vals.join(", "))?;
            }
        }
        for p in &self.procs {
            writeln!(f, "proc {} {{", p.name)?;
            write_body(f, &p.body, 1)?;
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

impl Module {
    /// Renders the module back to `.mgl` source. Round-trips through
    /// [`crate::parser::parse`] to an identical AST.
    pub fn to_source(&self) -> String {
        self.to_string()
    }
}
