//! Hand-written lexer for `.mgl` source.
//!
//! Produces a flat token stream with line numbers for diagnostics.
//! Integer literals may be decimal or `0x`-hex; both are parsed as `u64`
//! and reinterpreted as `i64` (so the full bit-pattern range is
//! writable, e.g. `0xffffffffffffffff` is `-1`). Line comments start
//! with `//`.

use crate::LangError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword-free name.
    Ident(String),
    /// Integer literal (bit pattern; see module docs).
    Int(i64),
    /// A keyword: `var`, `arr`, `proc`, `let`, `if`, `else`, `while`,
    /// `call`, or `out`.
    Kw(&'static str),
    /// Punctuation or operator, spelled exactly as in source
    /// (`"("`, `"&&"`, `"<<"`, …).
    Punct(&'static str),
}

/// A token with the 1-based source line it started on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

const KEYWORDS: [&str; 9] = ["var", "arr", "proc", "let", "if", "else", "while", "call", "out"];

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`LangError::Parse`] on an unknown character or a malformed
/// or out-of-range integer literal.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LangError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let err = |line: u32, msg: String| LangError::Parse { line, msg };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let (digits, radix) = if c == b'0' && i + 1 < b.len() && b[i + 1] == b'x' {
                    i += 2;
                    let ds = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    (&src[ds..i], 16)
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    (&src[start..i], 10)
                };
                let v = u64::from_str_radix(digits, radix).map_err(|_| {
                    err(line, format!("bad integer literal `{}`", &src[start..i]))
                })?;
                out.push(SpannedTok { tok: Tok::Int(v as i64), line });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match KEYWORDS.iter().find(|&&k| k == word) {
                    Some(&k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            _ => {
                if !c.is_ascii() {
                    return Err(err(line, format!("unexpected byte 0x{c:02x}")));
                }
                // Longest-match punctuation: two-character operators first.
                let two =
                    if i + 1 < b.len() && b[i + 1].is_ascii() { &src[i..i + 2] } else { "" };
                let p2 = ["||", "&&", "==", "!=", "<=", ">=", "<<", ">>"]
                    .iter()
                    .find(|&&p| p == two)
                    .copied();
                if let Some(p) = p2 {
                    out.push(SpannedTok { tok: Tok::Punct(p), line });
                    i += 2;
                    continue;
                }
                let one = &src[i..i + 1];
                let p1 = [
                    "(", ")", "{", "}", "[", "]", ";", ",", "=", "|", "^", "&", "<", ">", "+",
                    "-", "*", "/", "%", "~", "!",
                ]
                .iter()
                .find(|&&p| p == one)
                .copied();
                match p1 {
                    Some(p) => {
                        out.push(SpannedTok { tok: Tok::Punct(p), line });
                        i += 1;
                    }
                    None => {
                        return Err(err(line, format!("unexpected character `{}`", c as char)))
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_and_lines() {
        let toks = lex("var x = 0x10; // comment\nx = x << 2;").unwrap();
        assert_eq!(toks[0].tok, Tok::Kw("var"));
        assert_eq!(toks[3].tok, Tok::Int(16));
        assert_eq!(toks[5].line, 2, "second statement is on line 2");
        assert!(toks.iter().any(|t| t.tok == Tok::Punct("<<")));
    }

    #[test]
    fn full_range_literals() {
        let toks = lex("18446744073709551615 0xffffffffffffffff").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(-1));
        assert_eq!(toks[1].tok, Tok::Int(-1));
        assert!(lex("99999999999999999999999").is_err(), "overflow is rejected");
    }

    #[test]
    fn unknown_character() {
        assert!(matches!(lex("var x = @;"), Err(LangError::Parse { line: 1, .. })));
    }
}
