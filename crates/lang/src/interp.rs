//! Reference interpreter: architectural-state semantics over the AST.
//!
//! This is the ground truth for differential testing — no IR, no
//! register allocation, no pipeline. It mirrors the language semantics
//! exactly as `DESIGN.md` §10 specifies them (wrapping 64-bit
//! arithmetic, total division, wrapping array indices, short-circuit
//! logicals) and maintains the same FNV-style running checksum the
//! compiled code computes, so results are comparable bit-for-bit.

use crate::ast::{BinOp, Expr, Module, Stmt, UnOp};
use crate::codegen::{CHECKSUM_INIT, CHECKSUM_PRIME};
use crate::LangError;
use mg_workloads::Input;
use std::collections::BTreeMap;

/// Hard cap on emitted outputs; the compiled stream area is finite.
pub const MAX_OUTPUTS: usize = 4000;

/// Architectural results of an interpreted run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterpResult {
    /// Running checksum over every `out` value (see module docs).
    pub checksum: i64,
    /// The `out` stream, in emission order.
    pub outputs: Vec<i64>,
    /// Final global values, in declaration order.
    pub globals: Vec<i64>,
    /// Final array contents, in declaration order.
    pub arrays: Vec<Vec<i64>>,
    /// Statements + expression nodes evaluated (work metric).
    pub steps: u64,
}

struct Interp<'m> {
    m: &'m Module,
    input: Input,
    globals: Vec<i64>,
    global_idx: BTreeMap<&'m str, usize>,
    arrays: Vec<Vec<i64>>,
    array_idx: BTreeMap<&'m str, usize>,
    proc_idx: BTreeMap<&'m str, usize>,
    scopes: Vec<BTreeMap<&'m str, i64>>,
    outputs: Vec<i64>,
    checksum: i64,
    steps: u64,
    max_steps: u64,
}

/// Runs `main` of a semantically-checked module against `input`.
///
/// # Errors
///
/// Returns [`LangError::Interp`] if more than `max_steps` statements and
/// expression nodes execute, or if the program emits more than
/// [`MAX_OUTPUTS`] values.
pub fn run(m: &Module, input: &Input, max_steps: u64) -> Result<InterpResult, LangError> {
    let mut it = Interp {
        m,
        input: *input,
        globals: m.globals.iter().map(|g| g.init).collect(),
        global_idx: m.globals.iter().enumerate().map(|(i, g)| (g.name.as_str(), i)).collect(),
        arrays: m
            .arrays
            .iter()
            .map(|a| {
                let mut v = vec![0i64; a.len];
                v[..a.init.len()].copy_from_slice(&a.init);
                v
            })
            .collect(),
        array_idx: m.arrays.iter().enumerate().map(|(i, a)| (a.name.as_str(), i)).collect(),
        proc_idx: m.procs.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect(),
        scopes: Vec::new(),
        outputs: Vec::new(),
        checksum: CHECKSUM_INIT,
        steps: 0,
        max_steps,
    };
    it.call(it.proc_idx["main"])?;
    Ok(InterpResult {
        checksum: it.checksum,
        outputs: it.outputs,
        globals: it.globals,
        arrays: it.arrays,
        steps: it.steps,
    })
}

/// Total signed division: `x / 0 == 0`, otherwise Rust `wrapping_div`
/// (so `MIN / -1 == MIN`).
pub fn sdiv(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Total signed remainder: `x % 0 == x`, otherwise `wrapping_rem`.
pub fn srem(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        a.wrapping_rem(b)
    }
}

/// One checksum step: `acc' = acc * PRIME ^ v` (wrapping).
pub fn checksum_step(acc: i64, v: i64) -> i64 {
    acc.wrapping_mul(CHECKSUM_PRIME) ^ v
}

impl<'m> Interp<'m> {
    fn tick(&mut self) -> Result<(), LangError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(LangError::Interp(format!(
                "exceeded {} interpreter steps",
                self.max_steps
            )));
        }
        Ok(())
    }

    fn call(&mut self, proc: usize) -> Result<(), LangError> {
        let saved = std::mem::take(&mut self.scopes);
        self.scopes.push(BTreeMap::new());
        // Body is cloned-by-reference via index to appease borrows.
        let body: &'m [Stmt] = &self.m.procs[proc].body;
        self.body(body)?;
        self.scopes = saved;
        Ok(())
    }

    fn body(&mut self, body: &'m [Stmt]) -> Result<(), LangError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn assign(&mut self, name: &'m str, v: i64) {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                *slot = v;
                return;
            }
        }
        let idx = self.global_idx[name];
        self.globals[idx] = v;
    }

    fn stmt(&mut self, s: &'m Stmt) -> Result<(), LangError> {
        self.tick()?;
        match s {
            Stmt::Let { name, value } => {
                let v = self.expr(value)?;
                self.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.as_str(), v);
            }
            Stmt::Assign { name, value } => {
                let v = self.expr(value)?;
                self.assign(name, v);
            }
            Stmt::Store { arr, index, value } => {
                let i = self.expr(index)?;
                let v = self.expr(value)?;
                let a = self.array_idx[arr.as_str()];
                let len = self.arrays[a].len();
                self.arrays[a][(i & (len as i64 - 1)) as usize] = v;
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = self.expr(cond)?;
                self.scopes.push(BTreeMap::new());
                let r = if c != 0 { self.body(then_body) } else { self.body(else_body) };
                self.scopes.pop();
                r?;
            }
            Stmt::While { cond, body } => {
                while self.expr(cond)? != 0 {
                    self.scopes.push(BTreeMap::new());
                    let r = self.body(body);
                    self.scopes.pop();
                    r?;
                    self.tick()?;
                }
            }
            Stmt::Call { proc } => {
                let p = self.proc_idx[proc.as_str()];
                self.call(p)?;
            }
            Stmt::Out { value } => {
                let v = self.expr(value)?;
                if self.outputs.len() >= MAX_OUTPUTS {
                    return Err(LangError::Interp(format!(
                        "program emitted more than {MAX_OUTPUTS} outputs"
                    )));
                }
                self.outputs.push(v);
                self.checksum = checksum_step(self.checksum, v);
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &'m Expr) -> Result<i64, LangError> {
        self.tick()?;
        Ok(match e {
            Expr::Lit(v) => *v,
            Expr::Seed => self.input.seed as i64,
            Expr::Scale => self.input.scale as i64,
            Expr::Var(name) => {
                for s in self.scopes.iter().rev() {
                    if let Some(&v) = s.get(name.as_str()) {
                        return Ok(v);
                    }
                }
                self.globals[self.global_idx[name.as_str()]]
            }
            Expr::Index { arr, index } => {
                let i = self.expr(index)?;
                let a = self.array_idx[arr.as_str()];
                let len = self.arrays[a].len();
                self.arrays[a][(i & (len as i64 - 1)) as usize]
            }
            Expr::Un { op, a } => {
                let v = self.expr(a)?;
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::BitNot => !v,
                    UnOp::Not => (v == 0) as i64,
                }
            }
            Expr::Bin { op: BinOp::LAnd, a, b } => {
                if self.expr(a)? != 0 {
                    (self.expr(b)? != 0) as i64
                } else {
                    0
                }
            }
            Expr::Bin { op: BinOp::LOr, a, b } => {
                if self.expr(a)? != 0 {
                    1
                } else {
                    (self.expr(b)? != 0) as i64
                }
            }
            Expr::Bin { op, a, b } => {
                let x = self.expr(a)?;
                let y = self.expr(b)?;
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => sdiv(x, y),
                    BinOp::Rem => srem(x, y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                    BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                    BinOp::Eq => (x == y) as i64,
                    BinOp::Ne => (x != y) as i64,
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Le => (x <= y) as i64,
                    BinOp::Gt => (x > y) as i64,
                    BinOp::Ge => (x >= y) as i64,
                    BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run_src(src: &str) -> InterpResult {
        let m = parse(src).unwrap();
        crate::sema::check(&m).unwrap();
        run(&m, &Input::tiny(), 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let r = run_src("proc main { out(2 + 3 * 4); out(-7 / 2); out(-7 % 2); }");
        assert_eq!(r.outputs, vec![14, -3, -1], "truncated signed division");
    }

    #[test]
    fn division_edge_cases() {
        let r = run_src(
            "var m = -9223372036854775808;\
             proc main { out(5 / 0); out(5 % 0); out(m / -1); out(m % -1); }",
        );
        assert_eq!(r.outputs, vec![0, 5, i64::MIN, 0]);
    }

    #[test]
    fn loops_procs_and_arrays() {
        let r = run_src(
            "var s = 0; arr t[4];\
             proc fill { let i = 0; while (i < 6) { t[i] = i * i; i = i + 1; } }\
             proc main { call fill; let i = 0; while (i < 4) { s = s + t[i]; i = i + 1; } out(s); }",
        );
        // Indices wrap mod 4: t = [16, 25, 4, 9].
        assert_eq!(r.outputs, vec![16 + 25 + 4 + 9]);
        assert_eq!(r.arrays[0], vec![16, 25, 4, 9]);
    }

    #[test]
    fn short_circuit_skips_effects() {
        // `g / g` would change nothing, but `0 && (1 / 0)` must not
        // even evaluate the division; observable via step counts is
        // fragile, so assert values only.
        let r = run_src("proc main { out(0 && 1); out(2 && 3); out(0 || 0); out(0 || 9); }");
        assert_eq!(r.outputs, vec![0, 1, 0, 1]);
    }

    #[test]
    fn step_budget_is_enforced() {
        let m = parse("proc main { let i = 0; while (i < 100000) { i = i + 1; } }").unwrap();
        assert!(run(&m, &Input::tiny(), 100).is_err());
    }
}
