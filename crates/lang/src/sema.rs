//! Semantic checks over the parsed AST.
//!
//! Everything the later stages assume is validated here, so lowering,
//! the interpreter, and codegen can use plain panics for "impossible"
//! shapes:
//!
//! * exactly one `main`, and every `call` target exists;
//! * the call graph is acyclic (no recursion — there is no stack);
//! * global, array, and procedure names are unique within their
//!   namespaces (scalars and arrays are separate namespaces);
//! * array lengths are powers of two in `1..=65536`, with at most
//!   `len` initializers;
//! * every variable reference resolves to a visible `let` local or a
//!   global, and `let` never redeclares a name already visible in the
//!   same scope (shadowing across scopes is allowed);
//! * the reserved `__seed`/`__scale` names are never declared.

use crate::ast::{Expr, Module, Proc, Stmt};
use crate::LangError;
use std::collections::{BTreeMap, BTreeSet};

/// Largest permitted array length (elements).
pub const MAX_ARRAY_LEN: usize = 65536;

fn err(msg: String) -> LangError {
    LangError::Sema(msg)
}

struct Checker<'m> {
    globals: BTreeSet<&'m str>,
    arrays: BTreeMap<&'m str, usize>,
    procs: BTreeMap<&'m str, usize>,
}

/// Checks `m`; on success the module is safe for [`crate::ir::lower`],
/// [`crate::interp::run`], and [`crate::codegen`].
///
/// # Errors
///
/// Returns [`LangError::Sema`] describing the first violation found.
pub fn check(m: &Module) -> Result<(), LangError> {
    let mut globals = BTreeSet::new();
    for g in &m.globals {
        reserved(&g.name)?;
        if !globals.insert(g.name.as_str()) {
            return Err(err(format!("duplicate global `{}`", g.name)));
        }
    }
    let mut arrays = BTreeMap::new();
    for a in &m.arrays {
        reserved(&a.name)?;
        if arrays.insert(a.name.as_str(), a.len).is_some() {
            return Err(err(format!("duplicate array `{}`", a.name)));
        }
        if a.len == 0 || a.len > MAX_ARRAY_LEN || !a.len.is_power_of_two() {
            return Err(err(format!(
                "array `{}` length {} is not a power of two in 1..={MAX_ARRAY_LEN}",
                a.name, a.len
            )));
        }
        if a.init.len() > a.len {
            return Err(err(format!(
                "array `{}` has {} initializers for {} elements",
                a.name,
                a.init.len(),
                a.len
            )));
        }
    }
    let mut procs = BTreeMap::new();
    for (i, p) in m.procs.iter().enumerate() {
        reserved(&p.name)?;
        if procs.insert(p.name.as_str(), i).is_some() {
            return Err(err(format!("duplicate procedure `{}`", p.name)));
        }
    }
    if !procs.contains_key("main") {
        return Err(err("no `main` procedure".to_string()));
    }

    let ck = Checker { globals, arrays, procs };
    for p in &m.procs {
        let mut scopes: Vec<BTreeSet<&str>> = vec![BTreeSet::new()];
        ck.body(p, &p.body, &mut scopes)?;
    }

    // Reject recursion: depth-first search for a cycle in the call graph.
    let n = m.procs.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    for start in 0..n {
        dfs(m, &ck, start, &mut state)?;
    }
    Ok(())
}

fn dfs(m: &Module, ck: &Checker<'_>, i: usize, state: &mut [u8]) -> Result<(), LangError> {
    if state[i] == 2 {
        return Ok(());
    }
    if state[i] == 1 {
        return Err(err(format!("recursive call cycle through `{}`", m.procs[i].name)));
    }
    state[i] = 1;
    for callee in callees(&m.procs[i].body) {
        let j = ck.procs[callee.as_str()];
        dfs(m, ck, j, state)?;
    }
    state[i] = 2;
    Ok(())
}

fn callees(body: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::Call { proc } => out.push(proc.clone()),
            Stmt::If { then_body, else_body, .. } => {
                out.extend(callees(then_body));
                out.extend(callees(else_body));
            }
            Stmt::While { body, .. } => out.extend(callees(body)),
            _ => {}
        }
    }
    out
}

fn reserved(name: &str) -> Result<(), LangError> {
    if name.starts_with("__") {
        return Err(err(format!("`{name}`: names starting with `__` are reserved")));
    }
    Ok(())
}

impl<'m> Checker<'m> {
    fn visible(&self, scopes: &[BTreeSet<&str>], name: &str) -> bool {
        scopes.iter().any(|s| s.contains(name)) || self.globals.contains(name)
    }

    fn body(
        &self,
        p: &'m Proc,
        body: &'m [Stmt],
        scopes: &mut Vec<BTreeSet<&'m str>>,
    ) -> Result<(), LangError> {
        let at = |msg: String| err(format!("in `{}`: {msg}", p.name));
        for s in body {
            match s {
                Stmt::Let { name, value } => {
                    reserved(name)?;
                    self.expr(p, value, scopes)?;
                    if self.arrays.contains_key(name.as_str()) {
                        return Err(at(format!("`{name}` is already an array name")));
                    }
                    let top = scopes.last_mut().expect("scope stack is never empty");
                    if !top.insert(name.as_str()) {
                        return Err(at(format!("`{name}` redeclared in the same scope")));
                    }
                }
                Stmt::Assign { name, value } => {
                    self.expr(p, value, scopes)?;
                    if !self.visible(scopes, name) {
                        return Err(at(format!("assignment to undeclared `{name}`")));
                    }
                }
                Stmt::Store { arr, index, value } => {
                    self.expr(p, index, scopes)?;
                    self.expr(p, value, scopes)?;
                    if !self.arrays.contains_key(arr.as_str()) {
                        return Err(at(format!("store to unknown array `{arr}`")));
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    self.expr(p, cond, scopes)?;
                    scopes.push(BTreeSet::new());
                    self.body(p, then_body, scopes)?;
                    scopes.pop();
                    scopes.push(BTreeSet::new());
                    self.body(p, else_body, scopes)?;
                    scopes.pop();
                }
                Stmt::While { cond, body } => {
                    self.expr(p, cond, scopes)?;
                    scopes.push(BTreeSet::new());
                    self.body(p, body, scopes)?;
                    scopes.pop();
                }
                Stmt::Call { proc } => {
                    if !self.procs.contains_key(proc.as_str()) {
                        return Err(at(format!("call to unknown procedure `{proc}`")));
                    }
                }
                Stmt::Out { value } => self.expr(p, value, scopes)?,
            }
        }
        Ok(())
    }

    fn expr(&self, p: &Proc, e: &Expr, scopes: &[BTreeSet<&str>]) -> Result<(), LangError> {
        match e {
            Expr::Lit(_) | Expr::Seed | Expr::Scale => Ok(()),
            Expr::Var(name) => {
                if self.visible(scopes, name) {
                    Ok(())
                } else {
                    Err(err(format!("in `{}`: unknown variable `{name}`", p.name)))
                }
            }
            Expr::Index { arr, index } => {
                if !self.arrays.contains_key(arr.as_str()) {
                    return Err(err(format!("in `{}`: unknown array `{arr}`", p.name)));
                }
                self.expr(p, index, scopes)
            }
            Expr::Un { a, .. } => self.expr(p, a, scopes),
            Expr::Bin { a, b, .. } => {
                self.expr(p, a, scopes)?;
                self.expr(p, b, scopes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), LangError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn accepts_well_formed() {
        check_src(
            "var g = 1; arr t[8]; proc f { g = g + 1; } proc main { call f; out(t[g]); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_recursion_and_unknowns() {
        assert!(check_src("proc main { call main; }").is_err(), "self-recursion");
        assert!(
            check_src("proc a { call b; } proc b { call a; } proc main { call a; }").is_err(),
            "mutual recursion"
        );
        assert!(check_src("proc main { x = 1; }").is_err(), "undeclared assignment");
        assert!(check_src("proc main { out(q); }").is_err(), "unknown variable");
        assert!(check_src("proc f { }").is_err(), "missing main");
    }

    #[test]
    fn scoping_rules() {
        check_src("var x = 1; proc main { let x = 2; if (x) { let x = 3; out(x); } }").unwrap();
        assert!(
            check_src("proc main { let x = 1; let x = 2; }").is_err(),
            "same-scope redeclaration"
        );
        assert!(
            check_src("proc main { if (1) { let y = 1; } out(y); }").is_err(),
            "scope exit ends visibility"
        );
    }

    #[test]
    fn array_shape_rules() {
        assert!(check_src("arr t[7]; proc main { }").is_err(), "non-power-of-two");
        assert!(check_src("arr t[0]; proc main { }").is_err(), "zero length");
        assert!(
            check_src("arr t[2] = { 1, 2, 3 }; proc main { }").is_err(),
            "too many initializers"
        );
        assert!(check_src("var __x = 1; proc main { }").is_err(), "reserved name");
    }
}
