//! Deterministic seeded program generator for differential testing.
//!
//! [`generate`] maps a `u64` seed to a well-formed [`Module`]: it
//! always passes [`crate::sema::check`], always terminates (loops are
//! counter-driven with protected induction variables), and keeps its
//! worst-case output count under the compiled stream capacity. Every
//! operator in the language is reachable, including division and
//! remainder by arbitrary (possibly zero) expressions — that corner is
//! exactly what differential testing is for.
//!
//! The same seed always yields the same module (the `rand` shim is a
//! deterministic xorshift64*), so a failing seed printed by the
//! differential suite is a complete reproduction recipe.

use crate::ast::{ArrayDecl, BinOp, Expr, Global, Module, Proc, Stmt, UnOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Gen {
    rng: StdRng,
    /// Lexical scope stack of visible local names.
    scopes: Vec<Vec<String>>,
    /// Loop induction variables (never assignment targets).
    protected: Vec<String>,
    globals: Vec<String>,
    arrays: Vec<(String, usize)>,
    /// Procedures callable from the body being generated.
    callable: Vec<String>,
    next_local: u32,
    loop_depth: u32,
    if_depth: u32,
}

/// Generates a deterministic random module from `seed`.
pub fn generate(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_globals = rng.gen_range(2..=4usize);
    let globals: Vec<Global> = (0..n_globals)
        .map(|i| Global { name: format!("g{i}"), init: literal_value(&mut rng) })
        .collect();
    let n_arrays = rng.gen_range(1..=2usize);
    let arrays: Vec<ArrayDecl> = (0..n_arrays)
        .map(|i| {
            let len = *pick(&mut rng, &[8usize, 16, 32]);
            let n_init = if rng.gen_bool(0.5) { rng.gen_range(0..=len.min(8)) } else { 0 };
            ArrayDecl {
                name: format!("t{i}"),
                len,
                init: (0..n_init).map(|_| literal_value(&mut rng)).collect(),
            }
        })
        .collect();

    let mut g = Gen {
        rng,
        scopes: Vec::new(),
        protected: Vec::new(),
        globals: globals.iter().map(|x| x.name.clone()).collect(),
        arrays: arrays.iter().map(|a| (a.name.clone(), a.len)).collect(),
        callable: Vec::new(),
        next_local: 0,
        loop_depth: 0,
        if_depth: 0,
    };

    let mut procs = Vec::new();
    let n_helpers = g.rng.gen_range(0..=2usize);
    for i in 0..n_helpers {
        let name = format!("h{i}");
        // Helpers never call (keeps worst-case dynamic work small and
        // the call graph trivially acyclic); `main` calls them.
        let body = g.proc_body(false);
        procs.push(Proc { name, body });
    }
    g.callable = procs.iter().map(|p| p.name.clone()).collect();
    let mut main_body = g.proc_body(true);
    // Always observe the final global state.
    for name in g.globals.clone() {
        main_body.push(Stmt::Out { value: Expr::Var(name) });
    }
    procs.push(Proc { name: "main".into(), body: main_body });

    Module { globals, arrays, procs }
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Literal distribution: mostly small, sometimes boundary values.
fn literal_value(rng: &mut StdRng) -> i64 {
    if rng.gen_bool(0.12) {
        *pick(rng, &[i64::MAX, i64::MIN, 0, 1, -1, 63, 64, 0x7fff_ffff, -0x8000_0000, 1 << 40])
    } else {
        rng.gen_range(-16..=16)
    }
}

impl Gen {
    fn fresh_local(&mut self) -> String {
        let n = format!("x{}", self.next_local);
        self.next_local += 1;
        n
    }

    fn visible_locals(&self) -> Vec<&String> {
        self.scopes.iter().flatten().collect()
    }

    fn proc_body(&mut self, allow_calls: bool) -> Vec<Stmt> {
        self.scopes.push(Vec::new());
        self.next_local = 0;
        self.loop_depth = 0;
        self.if_depth = 0;
        let n = self.rng.gen_range(3..=8usize);
        let body = (0..n).map(|_| self.stmt(allow_calls)).collect();
        self.scopes.pop();
        body
    }

    fn block(&mut self, max_stmts: usize, allow_calls: bool) -> Vec<Stmt> {
        self.scopes.push(Vec::new());
        let n = self.rng.gen_range(1..=max_stmts);
        let body = (0..n).map(|_| self.stmt(allow_calls)).collect();
        self.scopes.pop();
        body
    }

    fn stmt(&mut self, allow_calls: bool) -> Stmt {
        loop {
            match self.rng.gen_range(0..10u32) {
                0 | 1 => {
                    let value = self.expr(2);
                    let name = self.fresh_local();
                    self.scopes
                        .last_mut()
                        .expect("scope stack is never empty")
                        .push(name.clone());
                    return Stmt::Let { name, value };
                }
                2 | 3 => {
                    let mut targets: Vec<String> = self
                        .visible_locals()
                        .into_iter()
                        .filter(|n| !self.protected.contains(n))
                        .cloned()
                        .collect();
                    targets.extend(self.globals.iter().cloned());
                    if targets.is_empty() {
                        continue;
                    }
                    let name = pick(&mut self.rng, &targets).clone();
                    return Stmt::Assign { name, value: self.expr(2) };
                }
                4 => {
                    let (arr, _) = pick(&mut self.rng, &self.arrays).clone();
                    return Stmt::Store { arr, index: self.expr(1), value: self.expr(2) };
                }
                5 => {
                    if self.if_depth >= 2 {
                        continue;
                    }
                    self.if_depth += 1;
                    let cond = self.expr(2);
                    let then_body = self.block(3, allow_calls);
                    let else_body = if self.rng.gen_bool(0.5) {
                        self.block(2, allow_calls)
                    } else {
                        vec![]
                    };
                    self.if_depth -= 1;
                    return Stmt::If { cond, then_body, else_body };
                }
                6 => {
                    if self.loop_depth >= 2 {
                        continue;
                    }
                    return self.counted_loop(allow_calls);
                }
                7 => {
                    if !allow_calls || self.callable.is_empty() {
                        continue;
                    }
                    let proc = pick(&mut self.rng, &self.callable).clone();
                    return Stmt::Call { proc };
                }
                _ => return Stmt::Out { value: self.expr(2) },
            }
        }
    }

    /// A guaranteed-terminating loop: `let lN = 0; while (lN < K) {
    /// …; lN = lN + 1; }` with `lN` protected from reassignment.
    fn counted_loop(&mut self, allow_calls: bool) -> Stmt {
        let iters = self.rng.gen_range(1..=4i64);
        let ivar = format!("l{}", self.next_local);
        self.next_local += 1;
        self.scopes.last_mut().expect("scope stack is never empty").push(ivar.clone());
        self.protected.push(ivar.clone());
        self.loop_depth += 1;
        let mut body = self.block(3, allow_calls);
        self.loop_depth -= 1;
        self.protected.pop();
        // The desugared `let` lives inside the `if (1)` block below, so
        // the induction variable is NOT visible to later statements in
        // this scope — drop it from the generator's model too.
        let top = self.scopes.last_mut().expect("scope stack is never empty");
        top.retain(|n| *n != ivar);
        body.push(Stmt::Assign {
            name: ivar.clone(),
            value: Expr::Bin {
                op: BinOp::Add,
                a: Box::new(Expr::Var(ivar.clone())),
                b: Box::new(Expr::Lit(1)),
            },
        });
        let cond = Expr::Bin {
            op: BinOp::Lt,
            a: Box::new(Expr::Var(ivar.clone())),
            b: Box::new(Expr::Lit(iters)),
        };
        // The loop desugars to two statements; wrap them in an `if (1)`
        // so a single Stmt can carry both.
        Stmt::If {
            cond: Expr::Lit(1),
            then_body: vec![
                Stmt::Let { name: ivar, value: Expr::Lit(0) },
                Stmt::While { cond, body },
            ],
            else_body: vec![],
        }
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.25) {
            return self.leaf();
        }
        match self.rng.gen_range(0..10u32) {
            0 => {
                let op = *pick(&mut self.rng, &[UnOp::Neg, UnOp::BitNot, UnOp::Not]);
                let a = self.expr(depth - 1);
                // Fold `-literal` so the pretty-printer round-trip is
                // exact (the parser folds the same way).
                if let (UnOp::Neg, Expr::Lit(v)) = (op, &a) {
                    return Expr::Lit(v.wrapping_neg());
                }
                Expr::Un { op, a: Box::new(a) }
            }
            _ => {
                let op = *pick(
                    &mut self.rng,
                    &[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Rem,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                        BinOp::Shl,
                        BinOp::Shr,
                        BinOp::Eq,
                        BinOp::Ne,
                        BinOp::Lt,
                        BinOp::Le,
                        BinOp::Gt,
                        BinOp::Ge,
                        BinOp::LAnd,
                        BinOp::LOr,
                    ],
                );
                Expr::Bin {
                    op,
                    a: Box::new(self.expr(depth - 1)),
                    b: Box::new(self.expr(depth - 1)),
                }
            }
        }
    }

    fn leaf(&mut self) -> Expr {
        loop {
            match self.rng.gen_range(0..10u32) {
                0..=3 => return Expr::Lit(literal_value(&mut self.rng)),
                4..=6 => {
                    let locals = self.visible_locals();
                    if locals.is_empty() && self.globals.is_empty() {
                        continue;
                    }
                    let all: Vec<String> = locals
                        .into_iter()
                        .cloned()
                        .chain(self.globals.iter().cloned())
                        .collect();
                    return Expr::Var(pick(&mut self.rng, &all).clone());
                }
                7 | 8 => {
                    let (arr, _) = pick(&mut self.rng, &self.arrays).clone();
                    let idx = self.leaf();
                    return Expr::Index { arr, index: Box::new(idx) };
                }
                _ => return if self.rng.gen_bool(0.5) { Expr::Seed } else { Expr::Scale },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    #[test]
    fn generated_modules_are_well_formed_and_round_trip() {
        for seed in 0..60u64 {
            let m = generate(seed);
            check(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.to_source()));
            let back = parse(&m.to_source())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.to_source()));
            assert_eq!(back, m, "seed {seed}: pretty-print/parse round trip");
        }
    }

    #[test]
    fn deterministic_per_seed_and_diverse_across_seeds() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(1).to_source(), generate(2).to_source());
    }

    #[test]
    fn generated_programs_terminate_in_the_interpreter() {
        for seed in 0..30u64 {
            let m = generate(seed);
            crate::interp::run(&m, &mg_workloads::Input::tiny(), 20_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.to_source()));
        }
    }
}
