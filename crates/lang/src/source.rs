//! [`WorkloadSource`] adapter: compiled `.mgl` programs as first-class
//! session workloads.
//!
//! A [`LangWorkload`] owns parsed-and-checked source; each
//! [`WorkloadSource::build`] call compiles it for the requested
//! [`Input`] (cheap — these are small programs), so `__seed`/`__scale`
//! fold to constants per input. Identity is content-hashed: the
//! `stable_id` commits to the source text and the compiler revision, so
//! editing a program or changing codegen can never alias a warm pool
//! entry or a cached artifact. (The artifact cache also fingerprints
//! built images, and the pool keys include the input, so per-input
//! program variation is safe.)

use crate::codegen::{compile, Compiled};
use crate::regalloc::RegallocConfig;
use crate::{parser, sema, LangError};
use mg_api::{MgError, WorkloadSource};
use mg_isa::{Memory, Program};
use mg_workloads::{Input, Suite};

/// Bump when compilation output changes for the same source (new
/// codegen, different register conventions, …); it feeds the
/// content-hashed [`WorkloadSource::stable_id`].
pub const COMPILER_VERSION: u32 = 1;

/// A named, compiled-on-demand `.mgl` workload.
pub struct LangWorkload {
    name: String,
    module: crate::ast::Module,
    hash: u64,
}

impl LangWorkload {
    /// Parses and checks `src`, returning a registrable workload.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] for syntax or semantic errors.
    pub fn from_source(name: impl Into<String>, src: &str) -> Result<LangWorkload, LangError> {
        let module = parser::parse(src)?;
        sema::check(&module)?;
        Ok(LangWorkload { name: name.into(), module, hash: fnv64(src, COMPILER_VERSION) })
    }

    /// The parsed module (e.g. for interpreter runs alongside the sim).
    pub fn module(&self) -> &crate::ast::Module {
        &self.module
    }

    /// Compiles for `input`, returning the full [`Compiled`] artifact
    /// (program, memory image, stats).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Codegen`] on resource-limit violations.
    pub fn compile(&self, input: &Input) -> Result<Compiled, LangError> {
        compile(&self.module, input, &RegallocConfig::default())
    }
}

impl WorkloadSource for LangWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn stable_id(&self) -> String {
        format!("mgl/{}@{:016x}", self.name, self.hash)
    }

    fn build(&self, input: &Input) -> Result<(Program, Memory), MgError> {
        let c = self.compile(input).map_err(|e| MgError::parse(e.to_string()))?;
        let mem = c.memory();
        Ok((c.program, mem))
    }
}

/// FNV-1a over the source text, extended with the compiler revision.
fn fnv64(src: &str, version: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in src.bytes().chain(version.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_tracks_content() {
        let a = LangWorkload::from_source("p", "proc main { out(1); }").unwrap();
        let b = LangWorkload::from_source("p", "proc main { out(2); }").unwrap();
        assert_ne!(a.stable_id(), b.stable_id(), "different source, different id");
        let c = LangWorkload::from_source("p", "proc main { out(1); }").unwrap();
        assert_eq!(a.stable_id(), c.stable_id(), "same source, same id");
        assert!(a.stable_id().starts_with("mgl/p@"));
    }

    #[test]
    fn builds_for_any_input() {
        let w = LangWorkload::from_source("p", "proc main { out(__seed + __scale); }").unwrap();
        let (p1, _) = w.build(&Input::reference()).unwrap();
        let (p2, _) = w.build(&Input::tiny()).unwrap();
        assert_eq!(p1.insts.len(), p2.insts.len());
        assert_ne!(
            format!("{:?}", p1.insts),
            format!("{:?}", p2.insts),
            "input folds into the image as constants"
        );
    }

    #[test]
    fn rejects_bad_source() {
        assert!(LangWorkload::from_source("p", "proc main {").is_err());
        assert!(LangWorkload::from_source("p", "proc f { }").is_err(), "no main");
    }
}
