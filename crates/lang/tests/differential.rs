//! Property-based differential testing: every generated program must
//! behave identically under the reference interpreter, the compiled
//! image, and the compiled image after mini-graph rewriting.
//!
//! The sweep is environment-tunable so CI can scale it up and a failure
//! can be replayed in isolation:
//!
//! - `MG_LANG_DIFF_SEED` — base seed (default 1)
//! - `MG_LANG_DIFF_N` — programs that must *pass* (default 64)
//!
//! On failure the panic message carries the seed, the pretty-printed
//! source, and a one-command repro line.

mod util;

use mg_api::Input;
use mg_lang::{gen, RegallocConfig};
use util::ThreeWay;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[test]
fn generated_programs_agree_three_ways() {
    let base_seed = env_u64("MG_LANG_DIFF_SEED", 1);
    let n = env_u64("MG_LANG_DIFF_N", 64);
    let cfg = RegallocConfig::default();

    let mut passed = 0u64;
    let mut skipped = 0u64;
    let mut seed = base_seed;
    while passed < n {
        let module = gen::generate(seed);
        let src = module.to_source();
        let input = match seed % 3 {
            0 => Input::tiny(),
            1 => Input::reference(),
            _ => Input::alternative(),
        };
        let name = format!(
            "generated program, seed {seed} (repro: MG_LANG_DIFF_SEED={seed} \
             MG_LANG_DIFF_N=1 cargo test -p mg-lang --test differential)"
        );
        match util::three_way(&name, &src, &input, &cfg, &util::policy_for(seed)) {
            ThreeWay::Agreed(_) => passed += 1,
            ThreeWay::Skipped(why) => {
                skipped += 1;
                println!("seed {seed}: skipped ({why})");
                assert!(
                    skipped < 8 * n.max(8),
                    "generator is producing mostly-unrunnable programs \
                     ({skipped} skips for {passed} passes)"
                );
            }
        }
        seed = seed.wrapping_add(1);
    }
    println!(
        "differential: {passed} programs agreed three ways \
         (base seed {base_seed}, {skipped} skipped)"
    );
}
