//! Regression corpus: every hand-written `.mgl` program runs three ways
//! on two inputs, and its checksum must match a golden value so silent
//! semantic drift in the compiler or interpreter is caught even if all
//! three executions drift together.

mod util;

use mg_api::Input;
use mg_core::Policy;
use mg_lang::{corpus, RegallocConfig};
use util::ThreeWay;

/// Golden checksums per (program, input preset).
const GOLDEN: &[(&str, &str, i64)] = &[
    ("spill", "reference", -5936954685543411059),
    ("spill", "tiny", -2881297577959056063),
    ("loops", "reference", 607686915639088301),
    ("loops", "tiny", 589885822378352201),
    ("deadcode", "reference", -5808590958014384182),
    ("deadcode", "tiny", -5808590958014384182),
    ("divmod", "reference", 3511342055086764856),
    ("divmod", "tiny", -3406190271854334425),
    ("sieve", "reference", -423718595914481666),
    ("sieve", "tiny", -423718595914481666),
    ("sort", "reference", 7919891716904739623),
    ("sort", "tiny", 8824859958452398965),
    ("calls", "reference", -2754297413399214709),
    ("calls", "tiny", -2916177410878816027),
    ("nesting", "reference", 6830957030270061361),
    ("nesting", "tiny", 6830957030270061361),
];

fn input_named(name: &str) -> Input {
    match name {
        "reference" => Input::reference(),
        "tiny" => Input::tiny(),
        other => panic!("unknown input preset {other}"),
    }
}

#[test]
fn corpus_matches_goldens_three_ways() {
    let cfg = RegallocConfig::default();
    assert_eq!(
        GOLDEN.len(),
        2 * corpus::all().len(),
        "golden table out of sync with the corpus"
    );
    let mut drifted = Vec::new();
    for &(name, input_name, want) in GOLDEN {
        let src = corpus::get(name).unwrap_or_else(|| panic!("no corpus program {name}"));
        let label = format!("corpus/{name} ({input_name})");
        let obs = match util::three_way(
            &label,
            src,
            &input_named(input_name),
            &cfg,
            &Policy::integer_memory(),
        ) {
            ThreeWay::Agreed(obs) => obs,
            ThreeWay::Skipped(why) => panic!("{label}: interpreter rejected it ({why})"),
        };
        println!("(\"{name}\", \"{input_name}\", {}),", obs.checksum);
        if obs.checksum != want {
            drifted.push(format!("{label}: checksum {} != golden {want}", obs.checksum));
        }
    }
    assert!(drifted.is_empty(), "checksum drift:\n{}", drifted.join("\n"));
}

#[test]
fn corpus_spill_program_actually_spills() {
    let module = mg_lang::parser::parse(corpus::get("spill").unwrap()).unwrap();
    mg_lang::sema::check(&module).unwrap();
    let compiled =
        mg_lang::compile(&module, &Input::reference(), &RegallocConfig::default()).unwrap();
    assert!(compiled.stats.spills > 0, "the spill corpus program no longer forces spills");
}

#[test]
fn corpus_calls_program_spills_across_calls() {
    let module = mg_lang::parser::parse(corpus::get("calls").unwrap()).unwrap();
    mg_lang::sema::check(&module).unwrap();
    let compiled =
        mg_lang::compile(&module, &Input::reference(), &RegallocConfig::default()).unwrap();
    assert!(compiled.stats.spills > 0, "call-crossing values must spill");
}
