//! Shared harness for the mg-lang integration suites.
//!
//! [`three_way`] runs one source program three ways — reference AST
//! interpreter, compiled image on the functional simulator, and compiled
//! image after mini-graph extraction + rewriting (both styles) — and
//! panics with the pretty-printed source if any observable disagrees.

use mg_api::Input;
use mg_core::{extract, rewrite, Policy, RewriteStyle};
use mg_isa::{HandleCatalog, Memory, Program};
use mg_lang::codegen::{observe, Observation};
use mg_lang::{compile, interpret, parser, sema, RegallocConfig};
use mg_profile::run_program;

/// Step budget for the reference interpreter (AST nodes visited).
pub const INTERP_STEPS: u64 = 20_000_000;
/// Step budget for simulated executions (dynamic instructions).
pub const SIM_STEPS: u64 = 200_000_000;

/// Outcome of a [`three_way`] run.
// Each integration-test binary compiles this module separately, and not
// every suite reads the Agreed payload.
#[allow(dead_code)]
pub enum ThreeWay {
    /// The reference interpreter rejected the program (step or output
    /// budget); nothing to compare, the caller should skip this case.
    Skipped(String),
    /// All three executions agreed on these observables.
    Agreed(Observation),
}

fn run_image(
    name: &str,
    src: &str,
    what: &str,
    prog: &Program,
    mut mem: Memory,
    catalog: Option<&HandleCatalog>,
) -> ([u64; 32], Memory) {
    let r = run_program(prog, &mut mem, catalog, SIM_STEPS)
        .unwrap_or_else(|e| panic!("{name}: {what} did not halt: {e:?}\nsource:\n{src}"));
    (r.cpu.regs, mem)
}

/// Compile `src` for `input`, execute it three ways, and require
/// bit-identical observables everywhere. Observables are the memory
/// image (checksum, output stream, globals, arrays) — final registers
/// are deliberately NOT compared: the rewriter legally elides writes to
/// registers that are dead after a mini-graph (e.g. the accumulator
/// after its final store), and return-address registers hold
/// instruction indices that shift under compression.
pub fn three_way(
    name: &str,
    src: &str,
    input: &Input,
    cfg: &RegallocConfig,
    policy: &Policy,
) -> ThreeWay {
    let module = parser::parse(src).unwrap_or_else(|e| panic!("{name}: {e}\nsource:\n{src}"));
    sema::check(&module).unwrap_or_else(|e| panic!("{name}: {e}\nsource:\n{src}"));

    let want = match interpret(&module, input, INTERP_STEPS) {
        Ok(r) => r,
        Err(e) => return ThreeWay::Skipped(e.to_string()),
    };
    let expected = Observation {
        checksum: want.checksum,
        outputs: want.outputs,
        globals: want.globals,
        arrays: want.arrays,
    };

    let compiled =
        compile(&module, input, cfg).unwrap_or_else(|e| panic!("{name}: {e}\nsource:\n{src}"));
    let (_base_regs, base_mem) =
        run_image(name, src, "compiled image", &compiled.program, compiled.memory(), None);
    let got = observe(&module, &base_mem);
    assert_eq!(
        expected, got,
        "{name}: compiled image diverges from the interpreter\nsource:\n{src}"
    );

    let ex = extract(&compiled.program, &mut compiled.memory(), policy, SIM_STEPS)
        .unwrap_or_else(|e| panic!("{name}: extraction failed: {e:?}\nsource:\n{src}"));
    for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
        let rw = rewrite(&compiled.program, &ex.selection, style);
        let (_regs, mem) = run_image(
            name,
            src,
            "rewritten image",
            &rw.program,
            compiled.memory(),
            Some(&ex.selection.catalog),
        );
        let got = observe(&module, &mem);
        assert_eq!(
            expected, got,
            "{name}: rewritten image ({style:?}) diverges\nsource:\n{src}"
        );
    }
    ThreeWay::Agreed(expected)
}

/// The selection policy a differential case uses, keyed off its seed so
/// both integer-only and integer+memory selection are exercised.
// Unused from the corpus suite, which pins its policies explicitly.
#[allow(dead_code)]
pub fn policy_for(seed: u64) -> Policy {
    if seed.is_multiple_of(2) {
        Policy::integer()
    } else {
        Policy::integer_memory()
    }
}
