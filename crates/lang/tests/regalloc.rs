//! Register-allocator correctness: liveness and interference on
//! hand-built CFGs with known answers, plus forced-spill configurations
//! that must still pass the full three-way differential property.

mod util;

use mg_api::Input;
use mg_lang::ir::{BinIr, IrBlock, IrInst, IrProc, Term, VReg};
use mg_lang::liveness::{analyze, interference};
use mg_lang::regalloc::{allocate, RegallocConfig};
use mg_lang::{corpus, gen};
use util::ThreeWay;

fn v(n: u32) -> VReg {
    VReg(n)
}

/// A diamond: v0 and v1 defined at the top, v0 consumed on the left arm,
/// v1 on the right, both merged at the join.
fn diamond() -> IrProc {
    IrProc {
        name: "diamond".into(),
        blocks: vec![
            IrBlock {
                insts: vec![
                    IrInst::Const { d: v(0), value: 1 },
                    IrInst::Const { d: v(1), value: 2 },
                    IrInst::Const { d: v(4), value: 0 },
                ],
                term: Term::Branch { cond: v(4), t: 1, f: 2 },
            },
            IrBlock {
                insts: vec![IrInst::Bin { op: BinIr::Add, d: v(2), a: v(0), b: v(0) }],
                term: Term::Jump(3),
            },
            IrBlock {
                insts: vec![IrInst::Bin { op: BinIr::Add, d: v(2), a: v(1), b: v(1) }],
                term: Term::Jump(3),
            },
            IrBlock {
                insts: vec![
                    IrInst::Bin { op: BinIr::Add, d: v(3), a: v(2), b: v(0) },
                    IrInst::Out { a: v(3) },
                ],
                term: Term::Ret,
            },
        ],
        num_vregs: 5,
    }
}

#[test]
fn diamond_has_known_liveness_and_interference() {
    let proc = diamond();
    let live = analyze(&proc);

    // v0 is needed at the join (block 3), so it is live into BOTH arms;
    // v1 only into the right arm.
    assert!(live.live_in[1].contains(&v(0)));
    assert!(live.live_in[2].contains(&v(0)));
    assert!(live.live_in[2].contains(&v(1)));
    assert!(!live.live_in[1].contains(&v(1)));
    // The join needs v2 and v0, nothing else.
    assert_eq!(live.live_in[3], [v(0), v(2)].into_iter().collect());

    let ig = interference(&proc, &live);
    // v0 and v1 are simultaneously live at the top; v2 is live alongside
    // v0 at the join; v1 and v2 are never live together on the left arm
    // path, but ARE on the right arm (v2 defined while v0 live).
    assert!(ig.interferes(v(0), v(1)));
    assert!(ig.interferes(v(0), v(2)));
    assert!(ig.live_across_call.is_empty());
}

#[test]
fn diamond_colors_with_three_registers_without_spills() {
    let mut proc = diamond();
    let alloc = allocate(&mut proc, &RegallocConfig { num_regs: 3 });
    assert_eq!(alloc.spilled, 0);
    assert_eq!(alloc.spill_slots, 0);
    // Interfering vregs must land on distinct machine registers.
    let live = analyze(&proc);
    let ig = interference(&proc, &live);
    for (a, ns) in &ig.edges {
        for b in ns {
            assert_ne!(alloc.colors[a], alloc.colors[b], "{a} vs {b} share a color");
        }
    }
}

#[test]
fn loop_keeps_induction_variable_live_on_backedge() {
    // while (v0 != 0) { v0 = v0 - v1 }  — v0 and v1 must be live around
    // the backedge, so both are live-in at the header and they interfere.
    let proc = IrProc {
        name: "loop".into(),
        blocks: vec![
            IrBlock {
                insts: vec![
                    IrInst::Const { d: v(0), value: 9 },
                    IrInst::Const { d: v(1), value: 3 },
                ],
                term: Term::Jump(1),
            },
            IrBlock { insts: vec![], term: Term::Branch { cond: v(0), t: 2, f: 3 } },
            IrBlock {
                insts: vec![IrInst::Bin { op: BinIr::Sub, d: v(0), a: v(0), b: v(1) }],
                term: Term::Jump(1),
            },
            IrBlock { insts: vec![IrInst::Out { a: v(0) }], term: Term::Ret },
        ],
        num_vregs: 2,
    };
    let live = analyze(&proc);
    assert_eq!(live.live_in[1], [v(0), v(1)].into_iter().collect());
    assert_eq!(live.live_in[2], [v(0), v(1)].into_iter().collect());
    let ig = interference(&proc, &live);
    assert!(ig.interferes(v(0), v(1)));
}

#[test]
fn forced_spills_preserve_semantics_on_the_corpus() {
    // Squeeze every corpus program through brutally small register files;
    // the three-way differential property must still hold.
    for num_regs in [3, 5] {
        let cfg = RegallocConfig { num_regs };
        for (name, src) in corpus::all() {
            let label = format!("corpus/{name} with {num_regs} registers");
            match util::three_way(
                &label,
                src,
                &Input::tiny(),
                &cfg,
                &mg_core::Policy::integer_memory(),
            ) {
                ThreeWay::Agreed(_) => {}
                ThreeWay::Skipped(why) => panic!("{label}: {why}"),
            }
        }
    }
}

#[test]
fn forced_spills_preserve_semantics_on_generated_programs() {
    let cfg = RegallocConfig { num_regs: 4 };
    let mut passed = 0;
    let mut seed = 9000u64;
    while passed < 12 {
        let src = gen::generate(seed).to_source();
        let label = format!("generated seed {seed} with 4 registers");
        match util::three_way(&label, &src, &Input::tiny(), &cfg, &util::policy_for(seed)) {
            ThreeWay::Agreed(_) => passed += 1,
            ThreeWay::Skipped(_) => {}
        }
        seed += 1;
    }
}
