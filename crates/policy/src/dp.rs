//! Exact per-block selection by dynamic programming, and the
//! optimality-gap gauge built on it.
//!
//! Within one basic block, mini-graph selection is a maximum-weight
//! set-packing problem: pick a member-disjoint subset of the block's
//! admissible candidates maximizing total benefit `Σ (n-1)·f`. Blocks
//! are short, so the problem is tractable **exactly**: a memoized
//! recursion over `(candidate index, taken-bitset)` states, where the
//! bitset has one bit per block instruction (blocks longer than
//! [`DP_MAX_BLOCK_LEN`] = 64 don't fit a machine word and are not
//! attempted). Per state the choice is skip-or-take, so the state space
//! is bounded by `candidates × 2^blocklen` but in practice collapses to
//! the reachable masks; [`DP_STATE_BUDGET`] caps the memo table and
//! [`DP_MAX_CANDIDATES`] the per-block candidate count, and a block
//! whose solve would exceed either bound is left **uncertified** rather
//! than approximated — certified numbers are exact or absent, never
//! estimates (the Streaming-Task-Graph-Scheduling shape,
//! arXiv:2306.02730: measure the heuristic against a bounded exact
//! solver where the exact solver is affordable).
//!
//! Two consumers:
//!
//! * [`ExactDpSelector`] — a full selection family: exact DP on every
//!   certified block, the greedy selection's own picks on uncertified
//!   ones (so it never does worse than greedy anywhere), MGT capacity
//!   applied by descending template-group benefit.
//! * [`DpCertifier`] / [`GapStats`] — the gauge: solve each certified
//!   block once, then evaluate any number of selection families against
//!   the same optima. For every valid [`Selection`] the per-block
//!   restriction is a feasible DP solution, so `gap >= 0` always holds;
//!   `gap == 0` means certified-block-optimal.

use crate::tiling::apply_capacity;
use mg_core::selector::{SelectInputs, Selector};
use mg_core::{select, MiniGraph, Policy, Selection};
use mg_profile::Cfg;
use std::collections::HashMap;

/// Longest block (in instructions) the DP attempts: one taken-bit per
/// instruction must fit a `u64`.
pub const DP_MAX_BLOCK_LEN: usize = 64;

/// Most candidates per block the DP attempts (bounds recursion depth).
pub const DP_MAX_CANDIDATES: usize = 2048;

/// Memo-table cap per block solve; a solve that would exceed it aborts
/// and leaves the block uncertified.
pub const DP_STATE_BUDGET: usize = 1 << 20;

/// One block candidate, bitset-encoded: `mask` has bit `m - block.start`
/// set per member `m`.
struct BlockCand {
    pool: u32,
    mask: u64,
    weight: u64,
}

/// Memoized skip-or-take recursion. Returns `None` if the memo budget is
/// exhausted (block uncertified). The stored flag records whether *take*
/// was strictly better, for reconstruction.
fn solve(
    cands: &[BlockCand],
    i: usize,
    mask: u64,
    memo: &mut HashMap<(u32, u64), (u64, bool)>,
) -> Option<u64> {
    if i == cands.len() {
        return Some(0);
    }
    if let Some(&(v, _)) = memo.get(&(i as u32, mask)) {
        return Some(v);
    }
    if memo.len() >= DP_STATE_BUDGET {
        return None;
    }
    let mut best = solve(cands, i + 1, mask, memo)?;
    let mut took = false;
    let c = &cands[i];
    if c.mask & mask == 0 {
        let take = c.weight + solve(cands, i + 1, mask | c.mask, memo)?;
        if take > best {
            best = take;
            took = true;
        }
    }
    memo.insert((i as u32, mask), (best, took));
    Some(best)
}

/// Exact solve of one block: `(objective, chosen pool indices)`, or
/// `None` when the block exceeds the DP bounds.
fn solve_block(cands: &[BlockCand]) -> Option<(u64, Vec<u32>)> {
    if cands.len() > DP_MAX_CANDIDATES {
        return None;
    }
    let mut memo = HashMap::new();
    let objective = solve(cands, 0, 0, &mut memo)?;
    // Reconstruct by replaying the memoized decisions.
    let mut chosen = Vec::new();
    let mut mask = 0u64;
    for (i, c) in cands.iter().enumerate() {
        let Some(&(_, took)) = memo.get(&(i as u32, mask)) else { break };
        if took {
            chosen.push(c.pool);
            mask |= c.mask;
        }
    }
    Some((objective, chosen))
}

/// Partitions the admissible, positive-benefit candidates of `inputs` by
/// containing block, bitset-encoded; blocks longer than
/// [`DP_MAX_BLOCK_LEN`] map to `None` entries (never attempted).
fn block_candidates<'a>(
    inputs: &SelectInputs<'a>,
    policy: &Policy,
) -> HashMap<usize, Option<Vec<BlockCand>>> {
    let mut per_block: HashMap<usize, Option<Vec<BlockCand>>> = HashMap::new();
    for (pool, c) in inputs.candidates.iter().enumerate() {
        if !policy.admits(c) || c.benefit() == 0 {
            continue;
        }
        let Some(bi) = inputs.cfg.block_index_of(c.anchor) else { continue };
        let block = inputs.cfg.blocks[bi];
        let entry = per_block.entry(bi).or_insert_with(|| {
            if block.len() <= DP_MAX_BLOCK_LEN {
                Some(Vec::new())
            } else {
                None
            }
        });
        if let Some(cands) = entry {
            let mut mask = 0u64;
            for &m in &c.members {
                debug_assert!(m >= block.start && m < block.end, "member outside block");
                mask |= 1 << (m - block.start);
            }
            cands.push(BlockCand { pool: pool as u32, mask, weight: c.benefit() });
        }
    }
    per_block
}

/// Exact-DP selection: certified blocks get their true optimum, the rest
/// inherit the greedy selection's picks.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactDpSelector;

impl Selector for ExactDpSelector {
    fn id(&self) -> &str {
        "dp"
    }

    fn select(&self, inputs: &SelectInputs<'_>, policy: &Policy) -> Selection {
        // Greedy once, as the fallback on uncertified blocks; its picks
        // in certified blocks are replaced by the exact solution (which
        // by feasibility is >= greedy's there).
        let greedy = select(inputs.candidates, policy);
        let mut greedy_by_block: HashMap<usize, Vec<&MiniGraph>> = HashMap::new();
        for c in &greedy.chosen {
            if let Some(bi) = inputs.cfg.block_index_of(c.graph.anchor) {
                greedy_by_block.entry(bi).or_default().push(&c.graph);
            }
        }

        let per_block = block_candidates(inputs, policy);
        let mut block_ids: Vec<usize> = per_block.keys().copied().collect();
        block_ids.sort_unstable();

        let mut picked: Vec<&MiniGraph> = Vec::new();
        for bi in block_ids {
            let solved = per_block[&bi].as_ref().and_then(|cands| solve_block(cands));
            match solved {
                Some((_, chosen)) => {
                    for pool in chosen {
                        picked.push(&inputs.candidates[pool as usize]);
                    }
                }
                None => {
                    if let Some(fallback) = greedy_by_block.get(&bi) {
                        picked.extend(fallback.iter().copied());
                    }
                }
            }
        }
        apply_capacity(&picked, policy)
    }
}

/// Aggregated optimality-gap statistics for one selection family over
/// one workload (see [`DpCertifier::evaluate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GapStats {
    /// Blocks holding at least one admissible positive-benefit candidate.
    pub blocks: usize,
    /// Of those, blocks whose exact optimum was computed within bounds.
    pub certified_blocks: usize,
    /// Σ exact per-block optima over certified blocks.
    pub dp_objective: u64,
    /// Σ of the evaluated selection's benefit over certified blocks.
    pub family_objective: u64,
}

impl GapStats {
    /// The absolute optimality gap `dp − family` (saved slots the family
    /// left on the table across certified blocks); `>= 0` for every
    /// valid selection, `0` iff certified-block-optimal.
    pub fn gap(&self) -> u64 {
        self.dp_objective.saturating_sub(self.family_objective)
    }

    /// The gap as a percentage of the exact optimum (0.0 when no
    /// certified block has any benefit).
    pub fn gap_pct(&self) -> f64 {
        if self.dp_objective == 0 {
            0.0
        } else {
            self.gap() as f64 * 100.0 / self.dp_objective as f64
        }
    }
}

/// Solves every in-bounds block of a workload once, then evaluates any
/// number of selection families against the certified optima.
pub struct DpCertifier {
    /// Exact optimum per certified block index.
    optima: HashMap<usize, u64>,
    /// Blocks with at least one admissible positive-benefit candidate.
    blocks: usize,
}

impl DpCertifier {
    /// Solves the DP on every block of `inputs` within the bounds.
    pub fn new(inputs: &SelectInputs<'_>, policy: &Policy) -> DpCertifier {
        let per_block = block_candidates(inputs, policy);
        let blocks = per_block.len();
        let mut optima = HashMap::new();
        for (bi, cands) in per_block {
            if let Some((objective, _)) = cands.as_ref().and_then(|c| solve_block(c)) {
                optima.insert(bi, objective);
            }
        }
        DpCertifier { optima, blocks }
    }

    /// Number of certified blocks.
    pub fn certified_blocks(&self) -> usize {
        self.optima.len()
    }

    /// Evaluates `selection` against the certified optima: its benefit
    /// restricted to certified blocks vs the exact optimum there.
    pub fn evaluate(&self, selection: &Selection, cfg: &Cfg) -> GapStats {
        let family_objective = selection
            .chosen
            .iter()
            .filter(|c| {
                cfg.block_index_of(c.graph.anchor)
                    .is_some_and(|bi| self.optima.contains_key(&bi))
            })
            .map(|c| c.graph.benefit())
            .sum();
        GapStats {
            blocks: self.blocks,
            certified_blocks: self.optima.len(),
            dp_objective: self.optima.values().sum(),
            family_objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::selector::SelectInputs;
    use mg_isa::{reg, Asm, Memory, MgTemplate, Opcode, TmplInst, TmplOperand};
    use mg_profile::{build_cfg, profile_program};

    fn chain_template(k: i64, n: usize) -> MgTemplate {
        MgTemplate {
            ops: (0..n)
                .map(|_| TmplInst {
                    op: Opcode::Addq,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(k),
                    disp: 0,
                })
                .collect(),
            out: Some((n - 1) as u8),
        }
    }

    fn cand(members: Vec<usize>, k: i64, freq: u64) -> MiniGraph {
        let n = members.len();
        MiniGraph {
            members: members.clone(),
            anchor: *members.last().unwrap(),
            inputs: vec![],
            output: None,
            template: chain_template(k, n),
            freq,
            branch_target: None,
        }
    }

    /// The classic greedy trap: a template group whose instances overlap
    /// *each other* inflates the group's summed benefit; greedy picks it,
    /// realizes only one instance, and blocks the better packing. The DP
    /// must find the better packing, strictly beating greedy.
    #[test]
    fn dp_strictly_beats_greedy_on_overlapping_group() {
        // One straight-line block (a real program so the Cfg is honest;
        // candidates are synthetic over its index space).
        let mut a = Asm::new();
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.addq(reg(1), 1, reg(1));
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let prof = profile_program(&p, &mut Memory::new(), None, 1_000).unwrap();
        let cands = vec![
            // Group A (k=0): two mutually overlapping instances, 7 each —
            // summed benefit 14 makes greedy pick this group first, but
            // only one instance survives (7 realized).
            cand(vec![0, 1], 0, 7),
            cand(vec![1, 2], 0, 7),
            // Group B (k=1): the 3-chain worth 12, killed by A's pick.
            cand(vec![0, 1, 2], 1, 6),
            // Group C (k=2): the disjoint tail pair worth 5.
            cand(vec![3, 4], 2, 5),
        ];
        // Greedy: A (summed 14) -> realizes 7, then C -> 12 total.
        // Exact:  B + C = 17.
        let policy = Policy::default();
        let inputs = SelectInputs { candidates: &cands, cfg: &cfg, prof: &prof };

        let greedy = select(&cands, &policy);
        let dp = ExactDpSelector.select(&inputs, &policy);
        assert!(
            dp.saved_slots() > greedy.saved_slots(),
            "dp {} must strictly beat greedy {}",
            dp.saved_slots(),
            greedy.saved_slots()
        );
        // And the gauge agrees: greedy has a positive gap, dp has none.
        let certifier = DpCertifier::new(&inputs, &policy);
        let g_stats = certifier.evaluate(&greedy, &cfg);
        let d_stats = certifier.evaluate(&dp, &cfg);
        assert_eq!(g_stats.certified_blocks, 1);
        assert!(g_stats.gap() > 0, "greedy must show a positive gap here");
        assert_eq!(d_stats.gap(), 0, "the exact selector is gap-free");
        assert_eq!(d_stats.dp_objective, 17); // B (12) + C (5)
    }

    /// On a kernel where greedy is optimal, the gap is zero and the DP
    /// selection matches greedy's objective exactly.
    #[test]
    fn gap_is_zero_when_greedy_is_optimal() {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 20);
        a.label("top");
        a.addl(reg(18), 2, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let prof = profile_program(&p, &mut Memory::new(), None, 100_000).unwrap();
        let cands = mg_core::enumerate_candidates(&p, &cfg, &prof, 4);
        let policy = Policy::default();
        let inputs = SelectInputs { candidates: &cands, cfg: &cfg, prof: &prof };
        let greedy = select(&cands, &policy);
        let certifier = DpCertifier::new(&inputs, &policy);
        let stats = certifier.evaluate(&greedy, &cfg);
        assert!(stats.certified_blocks >= 1);
        assert_eq!(stats.gap(), 0);
        assert_eq!(stats.gap_pct(), 0.0);
        let dp = ExactDpSelector.select(&inputs, &policy);
        assert_eq!(dp.saved_slots(), greedy.saved_slots());
    }

    /// Certified blocks are exact: brute-force over all subsets agrees
    /// with the DP objective on small random pools.
    #[test]
    fn dp_matches_brute_force() {
        let mut seed = 0xfeed_f00d_dead_beefu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..50 {
            let n = 1 + (rng() % 10) as usize;
            let cands: Vec<BlockCand> = (0..n)
                .map(|i| BlockCand {
                    pool: i as u32,
                    mask: rng() & 0xff,
                    weight: 1 + rng() % 20,
                })
                .collect();
            let (dp_obj, chosen) = solve_block(&cands).expect("within bounds");
            // Brute force over all 2^n subsets.
            let mut best = 0u64;
            for bits in 0u32..(1 << n) {
                let (mut mask, mut w, mut ok) = (0u64, 0u64, true);
                for (i, c) in cands.iter().enumerate() {
                    if bits >> i & 1 == 1 {
                        if c.mask & mask != 0 {
                            ok = false;
                            break;
                        }
                        mask |= c.mask;
                        w += c.weight;
                    }
                }
                if ok {
                    best = best.max(w);
                }
            }
            assert_eq!(dp_obj, best, "DP must equal the brute-force optimum");
            // The reconstruction realizes the claimed objective disjointly.
            let (mut mask, mut w) = (0u64, 0u64);
            for &pi in &chosen {
                let c = &cands[pi as usize];
                assert_eq!(c.mask & mask, 0, "reconstructed picks overlap");
                mask |= c.mask;
                w += c.weight;
            }
            assert_eq!(w, dp_obj, "reconstruction must realize the optimum");
        }
    }
}
