//! The selection-policy lab: alternatives to the paper's greedy
//! mini-graph selector, plus an exact optimality-gap gauge.
//!
//! The paper selects mini-graphs greedily by estimated coverage
//! `(n-1)·f` (§3.2). That is one point in a large design space, and on
//! its own gives no sense of how much coverage greedy leaves on the
//! table. This crate supplies three more points and the measuring stick:
//!
//! * [`WeightedGreedySelector`] — the same incremental greedy mechanics,
//!   but each candidate's rank is scaled by its block's natural-loop
//!   nesting depth (`weight = benefit · (1 + depth)`, depth from
//!   [`mg_profile::LoopNest`] over [`mg_profile::Dominators`]): hot loop
//!   bodies win ties (and near-ties) against straight-line code.
//! * [`TreeTilingSelector`] — maximal-munch instruction-selection-style
//!   tiling: each block is scanned bottom-up and the largest admissible
//!   candidate ending at each uncovered instruction is taken, like a
//!   tree-pattern matcher tiling a dataflow tree from its roots.
//! * [`ExactDpSelector`] / [`DpCertifier`] — an exact
//!   maximum-weight disjoint-instance solve per basic block, by
//!   memoized recursion over (candidate index, taken-bitset) states.
//!   Blocks within the bounds ([`DP_MAX_BLOCK_LEN`],
//!   [`DP_MAX_CANDIDATES`], [`DP_STATE_BUDGET`]) are **certified**: the
//!   DP objective is the true per-block optimum, so
//!   `dp - family >= 0` is an exact optimality gap for *any* selection
//!   family evaluated on the same blocks ([`GapStats`]).
//!
//! All three selectors implement the object-safe
//! [`mg_core::Selector`] trait, so they register through
//! `mg_api::SelectionPolicy` and flow through the experiment harness
//! (prep memos, artifact cache, fused sweeps) exactly like the built-in
//! greedy — see `mg run policy_lab`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod dp;
pub mod tiling;
pub mod weighted;

pub use dp::{
    DpCertifier, ExactDpSelector, GapStats, DP_MAX_BLOCK_LEN, DP_MAX_CANDIDATES,
    DP_STATE_BUDGET,
};
pub use tiling::TreeTilingSelector;
pub use weighted::{loop_depth_weights, WeightedGreedySelector};

use mg_core::selector::Selector;
use std::sync::Arc;

/// Every selector family of the lab, in presentation order: greedy (the
/// paper's baseline), weighted, tiling, dp. The `policy_lab` experiment
/// and the shared property tests iterate this list so a new family added
/// here is automatically compared and property-checked.
pub fn all_selectors() -> Vec<Arc<dyn Selector>> {
    vec![
        Arc::new(mg_core::GreedySelector),
        Arc::new(WeightedGreedySelector),
        Arc::new(TreeTilingSelector),
        Arc::new(ExactDpSelector),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_ids_are_distinct_and_stable() {
        let ids: Vec<String> = all_selectors().iter().map(|s| s.id().to_string()).collect();
        assert_eq!(ids, ["greedy", "weighted", "tiling", "dp"]);
    }
}
