//! Loop-aware profile-weighted greedy selection.
//!
//! The paper's greedy selector already ranks by dynamic benefit
//! `(n-1)·f`, where `f` comes from the basic-block frequency profile.
//! That rank is *flat* across program structure: a candidate in a deeply
//! nested loop and one in straight-line code with the same measured
//! benefit are interchangeable, and ties between them are broken by
//! working-list position — an accident of candidate order. On short
//! profiling runs (quick mode, truncated traces) measured frequencies
//! under-represent loop bodies, so flat ranking can burn MGT capacity on
//! cold code.
//!
//! The weighted selector scales each candidate's rank by its block's
//! natural-loop nesting depth:
//!
//! ```text
//! weight(c) = benefit(c) · (1 + loopdepth(block(anchor(c))))
//! ```
//!
//! with depth from [`LoopNest`] over the CFG's dominator tree — a purely
//! static amplifier on top of the dynamic profile (the
//! BandMap-style "weight the hot regions" shape, arXiv:2310.06613).
//! Selection mechanics are otherwise identical to greedy —
//! [`select_with_benefits`] reuses the same incremental picker — and
//! reported coverage is still true `(n-1)·f`, so weighted and greedy
//! selections are directly comparable.

use mg_core::selector::{SelectInputs, Selector};
use mg_core::{select_with_benefits, MiniGraph, Policy, Selection};
use mg_profile::{Cfg, Dominators, LoopNest};

/// Greedy selection with loop-depth-scaled ranking weights.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedGreedySelector;

/// Computes the weight function of the weighted selector: a closure
/// mapping each candidate to `benefit · (1 + loopdepth)` over `cfg`'s
/// loop nest. Exposed so embedders can compose the same weighting with
/// their own policies (see `docs/API.md`).
pub fn loop_depth_weights(cfg: &Cfg) -> impl Fn(&MiniGraph) -> u64 + '_ {
    let dom = Dominators::compute(cfg);
    let nest = LoopNest::compute(cfg, &dom);
    move |c: &MiniGraph| {
        let depth = cfg.block_index_of(c.anchor).map(|b| nest.depth(b)).unwrap_or(0);
        c.benefit().saturating_mul(1 + depth as u64)
    }
}

impl Selector for WeightedGreedySelector {
    fn id(&self) -> &str {
        "weighted"
    }

    fn select(&self, inputs: &SelectInputs<'_>, policy: &Policy) -> Selection {
        let weight = loop_depth_weights(inputs.cfg);
        select_with_benefits(inputs.candidates, policy, weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::{enumerate_candidates, select};
    use mg_isa::{reg, Asm, Memory};
    use mg_profile::{build_cfg, profile_program};

    #[test]
    fn weighting_prefers_the_nested_loop_on_ties() {
        // Two identical-benefit idioms: one in a nested loop, one in the
        // outer straight-line region. With capacity 1, flat greedy picks
        // whichever group forms first; the weighted selector must pick
        // the nested one.
        let mut a = Asm::new();
        a.li(reg(1), 10); // outer trip count
        a.label("outer");
        // Outer-body idiom: add/xor pair, runs 10 times.
        a.addq(reg(9), 3, reg(9));
        a.xor(reg(9), 5, reg(9));
        a.li(reg(2), 1); // inner trip count: inner idiom also runs 10 times
        a.label("inner");
        // Inner-loop idiom: distinct immediates so the template differs.
        a.addq(reg(10), 4, reg(10));
        a.xor(reg(10), 6, reg(10));
        a.subq(reg(2), 1, reg(2));
        a.bne(reg(2), "inner");
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "outer");
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let prof = profile_program(&p, &mut Memory::new(), None, 1_000_000).unwrap();
        let cands = enumerate_candidates(&p, &cfg, &prof, 4);
        let policy = Policy::integer().with_capacity(1);
        let inputs = SelectInputs { candidates: &cands, cfg: &cfg, prof: &prof };
        let sel = WeightedGreedySelector.select(&inputs, &policy);
        assert!(!sel.chosen.is_empty(), "weighted selection found an idiom");
        let inner_start = p.labels["inner"];
        let picked_inner =
            sel.chosen.iter().any(|c| c.graph.members.iter().all(|&m| m >= inner_start));
        assert!(
            picked_inner,
            "loop-depth weighting must favour the doubly nested idiom: {:?}",
            sel.chosen.iter().map(|c| c.graph.members.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn flat_program_weighted_equals_greedy() {
        // No loops: depths are all 0 or uniform, so weighted == greedy
        // exactly (weight = benefit · 1).
        let mut a = Asm::new();
        a.li(reg(1), 7);
        a.addq(reg(1), 3, reg(2));
        a.sll(reg(2), 2, reg(2));
        a.stq(reg(2), 0, reg(28));
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let prof = profile_program(&p, &mut Memory::new(), None, 1_000).unwrap();
        let cands = enumerate_candidates(&p, &cfg, &prof, 4);
        let policy = Policy::integer();
        let inputs = SelectInputs { candidates: &cands, cfg: &cfg, prof: &prof };
        let w = WeightedGreedySelector.select(&inputs, &policy);
        let g = select(&cands, &policy);
        assert_eq!(w.saved_slots(), g.saved_slots());
        assert_eq!(w.chosen.len(), g.chosen.len());
    }
}
