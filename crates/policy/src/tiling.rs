//! Tree-tiling (maximal-munch) mini-graph selection.
//!
//! Classic instruction selectors tile an expression tree bottom-up with
//! the largest pattern that matches at each root (maximal munch). A
//! mini-graph candidate is exactly such a pattern over the block's
//! dataflow graph — its anchor is the root, its members the covered
//! tree — so the same discipline transfers: scan each basic block
//! bottom-up and, at every instruction not yet covered, take the largest
//! admissible candidate whose tree *ends* there.
//!
//! Contrast with greedy: greedy ranks template *groups* globally by
//! summed dynamic benefit and may leave an instruction uncovered because
//! its best local pattern belongs to a group that lost a global
//! comparison. Tiling is purely local and structural — it maximizes
//! static munch, not dynamic coverage — which makes it a useful
//! second opinion: where tiling beats greedy, greedy's group coupling
//! cost coverage; where greedy wins, frequency information paid off.
//!
//! Determinism: blocks are visited in ascending order, instructions
//! bottom-up within each block; among candidates ending at the same
//! instruction the largest wins, with ties broken by candidate-pool
//! order. The MGT capacity is applied afterwards by descending
//! template-group benefit (first-appearance order on ties), dropping
//! instances of evicted templates.

use mg_core::selector::{SelectInputs, Selector};
use mg_core::{ChosenInstance, MiniGraph, Policy, Selection};
use std::collections::HashMap;

/// Maximal-munch tree tiling over each basic block's dataflow graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeTilingSelector;

impl Selector for TreeTilingSelector {
    fn id(&self) -> &str {
        "tiling"
    }

    fn select(&self, inputs: &SelectInputs<'_>, policy: &Policy) -> Selection {
        let admissible: Vec<&MiniGraph> =
            inputs.candidates.iter().filter(|c| policy.admits(c) && c.benefit() > 0).collect();

        // Candidates ending at each instruction index (members ascend, so
        // the last member is the tree root position in program order).
        let universe = admissible
            .iter()
            .map(|c| c.members.last().copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        let mut ends_at: Vec<Vec<u32>> = vec![Vec::new(); universe];
        for (i, c) in admissible.iter().enumerate() {
            if let Some(&last) = c.members.last() {
                ends_at[last].push(i as u32);
            }
        }

        // Bottom-up munch. Blocks partition the program, so a plain
        // descending scan over the whole index space visits every block
        // bottom-up; members never cross block boundaries.
        let mut taken = vec![false; universe];
        let mut picked: Vec<&MiniGraph> = Vec::new();
        for i in (0..universe).rev() {
            if taken[i] {
                continue;
            }
            let mut best: Option<&MiniGraph> = None;
            for &ci in &ends_at[i] {
                let c = admissible[ci as usize];
                if c.members.iter().any(|&m| taken[m]) {
                    continue;
                }
                // Largest munch wins; pool order breaks size ties (the
                // scan visits pool order, `>` keeps the first).
                if best.is_none_or(|b| c.size() > b.size()) {
                    best = Some(c);
                }
            }
            if let Some(c) = best {
                for &m in &c.members {
                    taken[m] = true;
                }
                picked.push(c);
            }
        }
        // The scan above collected instances bottom-up; present them in
        // program order like every other selector.
        picked.reverse();

        apply_capacity(&picked, policy)
    }
}

/// Applies the MGT capacity to a tiled instance set: template groups are
/// kept in descending total-benefit order (stable, so first appearance
/// breaks ties), the top `policy.capacity` groups form the catalog, and
/// instances of evicted groups are dropped.
pub(crate) fn apply_capacity(picked: &[&MiniGraph], policy: &Policy) -> Selection {
    let mut group_of: HashMap<&mg_isa::MgTemplate, usize> = HashMap::new();
    let mut groups: Vec<(u64, Vec<&MiniGraph>)> = Vec::new();
    for &c in picked {
        let gi = *group_of.entry(&c.template).or_insert_with(|| {
            groups.push((0, Vec::new()));
            groups.len() - 1
        });
        groups[gi].0 += c.benefit();
        groups[gi].1.push(c);
    }
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&gi| std::cmp::Reverse(groups[gi].0));

    let mut selection = Selection::default();
    for &gi in order.iter().take(policy.capacity) {
        let insts = &groups[gi].1;
        let mgid = selection.catalog.add(insts[0].template.clone());
        for &c in insts {
            selection.chosen.push(ChosenInstance { graph: c.clone(), mgid });
        }
    }
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::selector::SelectInputs;
    use mg_core::{enumerate_candidates, select};
    use mg_isa::{reg, Asm, Memory};
    use mg_profile::{build_cfg, profile_program};

    fn inputs_for(
        p: &mg_isa::Program,
    ) -> (Vec<MiniGraph>, mg_profile::Cfg, mg_profile::BlockProfile) {
        let cfg = build_cfg(p);
        let prof = profile_program(p, &mut Memory::new(), None, 1_000_000).unwrap();
        let cands = enumerate_candidates(p, &cfg, &prof, 4);
        (cands, cfg, prof)
    }

    #[test]
    fn tiles_are_disjoint_and_catalog_capped() {
        let mut a = Asm::new();
        a.li(reg(1), 50);
        a.label("top");
        a.addq(reg(9), 3, reg(9));
        a.srl(reg(9), 1, reg(9));
        a.xor(reg(9), 5, reg(9));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let (cands, cfg, prof) = inputs_for(&p);
        let policy = Policy::integer().with_capacity(1);
        let inputs = SelectInputs { candidates: &cands, cfg: &cfg, prof: &prof };
        let sel = TreeTilingSelector.select(&inputs, &policy);
        assert!(sel.catalog.len() <= 1);
        let mut seen = std::collections::HashSet::new();
        for c in &sel.chosen {
            assert!(policy.admits(&c.graph));
            for &m in &c.graph.members {
                assert!(seen.insert(m), "instruction {m} tiled twice");
            }
        }
    }

    #[test]
    fn munch_takes_the_largest_pattern() {
        // A 3-chain: greedy and tiling should both cover it, and tiling
        // must take the full 3-instruction tile rather than a 2-tile.
        let mut a = Asm::new();
        a.li(reg(1), 40);
        a.label("top");
        a.addq(reg(9), 3, reg(9));
        a.srl(reg(9), 1, reg(9));
        a.xor(reg(9), 5, reg(9));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let (cands, cfg, prof) = inputs_for(&p);
        let policy = Policy::integer();
        let inputs = SelectInputs { candidates: &cands, cfg: &cfg, prof: &prof };
        let sel = TreeTilingSelector.select(&inputs, &policy);
        let max_tile = sel.chosen.iter().map(|c| c.graph.size()).max().unwrap_or(0);
        assert!(max_tile >= 3, "maximal munch must take the 3-chain, got {max_tile}");
        // Tiling's coverage is comparable to greedy's on this kernel.
        let g = select(&cands, &policy);
        assert!(sel.saved_slots() > 0);
        assert!(sel.saved_slots() * 2 >= g.saved_slots());
    }
}
