//! A wall-clock stand-in for the [`criterion`] crate.
//!
//! Covers the API subset this workspace's benches use: `Criterion`,
//! benchmark groups with throughput annotations, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs
//! `sample_size` timed samples after one warm-up iteration and reports
//! the median time per iteration (plus throughput where declared). There
//! is no statistical analysis, baseline storage, or HTML report. See
//! `crates/shims/README.md`.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `per_sample` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes lazily-built state inside the closure).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.per_sample as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher { samples: Vec::new(), per_sample: 1 };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{id:<40} median {median:>12.3?}{rate}");
}

/// Declares a group of benchmark targets with a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); none apply here.
            $($group();)+
        }
    };
}
