//! A deterministic stand-in for the [`rand`] crate.
//!
//! Covers the subset this workspace's workload generators use:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` (half-open and
//! inclusive integer ranges), and `Rng::gen_bool`. The generator is
//! xorshift64* — high-quality enough for synthetic benchmark inputs and
//! fully reproducible from the seed. See `crates/shims/README.md`.
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe raw-word source backing the generic helpers.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing generator interface.
pub trait Rng: RngCore + Sized {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Modulo bias is irrelevant for synthetic input generation.
    rng.next_u64() % n
}

/// Integer types `gen_range` can sample. A single generic impl per range
/// shape (rather than one impl per concrete type) so the range's element
/// type unifies with the requested output type during inference, exactly
/// as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    fn from_i128(v: i128) -> Self;
    fn to_i128(self) -> i128;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_i128(v: i128) -> $t {
                v as $t
            }

            fn to_i128(self) -> i128 {
                self as i128
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range on an empty range");
        T::from_i128(lo + below(rng, (hi - lo) as u64) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range on an empty range");
        T::from_i128(lo + below(rng, (hi - lo + 1) as u64) as i128)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64* seeded via splitmix64, mirroring `rand::rngs::StdRng`'s
    /// role (deterministic from `seed_from_u64`).
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 scrambles small seeds into full-width state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng((z ^ (z >> 31)) | 1)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}
