//! A deterministic, offline stand-in for the [`proptest`] crate.
//!
//! Implements exactly the API surface this workspace uses: value
//! generation (no shrinking) from a fixed per-test seed, so failures are
//! reproducible run-to-run. See `crates/shims/README.md`.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    use std::fmt;

    /// Per-run configuration: how many cases each property executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// Compatibility alias used by some call sites.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// xorshift64* generator with a per-test seed derived from the test
    /// path, so every run generates the identical case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test path; never zero.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| s.new_value(rng)))
        }
    }

    /// A type-erased strategy (single-threaded, like test bodies).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A weighted union of strategies (`prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::new_weighted(branches.into_iter().map(|b| (1, b)).collect())
        }

        pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = branches.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires at least one weighted branch");
            Union { branches, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, b) in &self.branches {
                if pick < *w as u64 {
                    return b.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed to total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of the given values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

pub mod bool {
    use crate::strategy::{any, Any};

    /// The strategy for arbitrary booleans (`prop::bool::ANY`).
    #[allow(non_upper_case_globals)]
    pub fn weighted(_p: f64) -> Any<bool> {
        any::<bool>()
    }

    pub struct AnyBool;

    impl crate::strategy::Strategy for AnyBool {
        type Value = bool;

        fn new_value(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: AnyBool = AnyBool;
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module namespace (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    lhs,
                    rhs,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The property-test entry point: expands each `fn name(arg in strategy)`
/// item into a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}
