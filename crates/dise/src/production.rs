//! DISE productions: `<pattern : replacement sequence>` pairs.
//!
//! A pattern matches aspects of a single fetched instruction (opcode,
//! register names, immediate). A replacement is a parameterized
//! instruction sequence whose "holes" (`T.RS1`, `T.RS2`, `T.RD`, `T.IMM`,
//! `T.INSN`) are filled from the matching instruction; `$d<n>` registers
//! name the DISE-private register set used for replacement-internal
//! dataflow (paper §5).

use mg_isa::{Inst, OpClass, Opcode, Operand, Reg};

/// A pattern over one instruction. `None` fields match anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pattern {
    /// Match a specific opcode.
    pub op: Option<Opcode>,
    /// Match a whole opcode class (e.g. every load).
    pub class: Option<OpClass>,
    /// Match the `ra` register.
    pub ra: Option<Reg>,
    /// Match the `rc` register.
    pub rc: Option<Reg>,
    /// Match the immediate/displacement (for `mg` codewords: the MGID).
    pub imm: Option<i64>,
}

impl Pattern {
    /// A pattern matching one opcode.
    pub fn opcode(op: Opcode) -> Pattern {
        Pattern { op: Some(op), ..Pattern::default() }
    }

    /// A pattern matching an opcode class.
    pub fn class(class: OpClass) -> Pattern {
        Pattern { class: Some(class), ..Pattern::default() }
    }

    /// A pattern matching the DISE codeword (`mg`) with a specific index.
    pub fn codeword(mgid: u32) -> Pattern {
        Pattern { op: Some(Opcode::Mg), imm: Some(mgid as i64), ..Pattern::default() }
    }

    /// Whether `inst` matches.
    pub fn matches(&self, inst: &Inst) -> bool {
        if let Some(op) = self.op {
            if inst.op != op {
                return false;
            }
        }
        if let Some(c) = self.class {
            if inst.op.class() != c {
                return false;
            }
        }
        if let Some(r) = self.ra {
            if inst.ra != r {
                return false;
            }
        }
        if let Some(r) = self.rc {
            if inst.rc != r {
                return false;
            }
        }
        if let Some(i) = self.imm {
            if inst.disp != i {
                return false;
            }
        }
        true
    }
}

/// A register-position operand of a replacement instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplOperand {
    /// A literal register.
    Reg(Reg),
    /// The matching instruction's `ra` (`T.RS1`).
    Rs1,
    /// The matching instruction's `rb` register (`T.RS2`).
    Rs2,
    /// The matching instruction's destination (`T.RD`).
    Rd,
    /// DISE-private register `$d<n>`.
    Dise(u8),
    /// A literal immediate (only meaningful in `rb` position).
    Imm(i64),
    /// The matching instruction's immediate operand (`T.IMM`).
    ImmParam,
}

/// A displacement parameter of a replacement instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispParam {
    /// A literal displacement.
    Lit(i64),
    /// The matching instruction's displacement (`T.DISP`); for codewords
    /// whose mini-graph ends in a branch this resolves to the handle's
    /// terminal-branch target.
    FromMatch,
}

/// One parameterized replacement instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplInst {
    /// Opcode of the emitted instruction.
    pub op: Opcode,
    /// `ra`-position operand (must resolve to a register).
    pub a: ReplOperand,
    /// `rb`-position operand.
    pub b: ReplOperand,
    /// `rc`-position operand (destination; must resolve to a register).
    pub c: ReplOperand,
    /// Displacement.
    pub disp: DispParam,
}

/// One element of a replacement sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplItem {
    /// Emit the matching instruction unchanged (`T.INSN`).
    Original,
    /// Emit a parameterized instruction.
    Inst(ReplInst),
}

/// A complete production.
#[derive(Clone, Debug)]
pub struct Production {
    /// The pattern side.
    pub pattern: Pattern,
    /// The replacement sequence.
    pub replacement: Vec<ReplItem>,
}

/// Errors raised when instantiating a replacement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstantiateError {
    /// A `$d<n>` register index exceeded the engine's DISE register file.
    DiseRegOutOfRange(u8),
    /// A register-position operand resolved to an immediate.
    RegisterExpected,
}

impl std::fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantiateError::DiseRegOutOfRange(n) => {
                write!(f, "DISE register $d{n} out of range")
            }
            InstantiateError::RegisterExpected => {
                f.write_str("register-position operand resolved to an immediate")
            }
        }
    }
}

impl std::error::Error for InstantiateError {}

fn resolve_reg(
    o: ReplOperand,
    matched: &Inst,
    dise_regs: &[Reg],
) -> Result<Reg, InstantiateError> {
    match o {
        ReplOperand::Reg(r) => Ok(r),
        ReplOperand::Rs1 => Ok(matched.ra),
        ReplOperand::Rs2 => match matched.rb {
            Operand::Reg(r) => Ok(r),
            Operand::Imm(_) => Err(InstantiateError::RegisterExpected),
        },
        ReplOperand::Rd => Ok(matched.rc),
        ReplOperand::Dise(n) => {
            dise_regs.get(n as usize).copied().ok_or(InstantiateError::DiseRegOutOfRange(n))
        }
        // A zero immediate in a register position is the zero register
        // (templates canonicalize `r31` sources to `Imm(0)`).
        ReplOperand::Imm(0) => Ok(Reg::ZERO),
        ReplOperand::Imm(_) | ReplOperand::ImmParam => Err(InstantiateError::RegisterExpected),
    }
}

fn resolve_rb(
    o: ReplOperand,
    matched: &Inst,
    dise_regs: &[Reg],
) -> Result<Operand, InstantiateError> {
    match o {
        ReplOperand::Imm(i) => Ok(Operand::Imm(i)),
        ReplOperand::ImmParam => Ok(match matched.rb {
            Operand::Imm(i) => Operand::Imm(i),
            Operand::Reg(r) => Operand::Reg(r),
        }),
        other => Ok(Operand::Reg(resolve_reg(other, matched, dise_regs)?)),
    }
}

impl ReplInst {
    /// Instantiates this replacement instruction against `matched`, using
    /// `dise_regs` as the DISE-private register set.
    ///
    /// # Errors
    ///
    /// Returns an [`InstantiateError`] on unresolvable operands.
    pub fn instantiate(
        &self,
        matched: &Inst,
        dise_regs: &[Reg],
    ) -> Result<Inst, InstantiateError> {
        let disp = match self.disp {
            DispParam::Lit(v) => v,
            DispParam::FromMatch => {
                if matched.op == Opcode::Mg && self.op.is_control() {
                    matched.aux
                } else {
                    matched.disp
                }
            }
        };
        let ra = resolve_reg(self.a, matched, dise_regs)?;
        let rb = resolve_rb(self.b, matched, dise_regs)?;
        let rc = resolve_reg(self.c, matched, dise_regs)?;
        Ok(Inst { op: self.op, ra, rb, rc, disp, aux: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::reg;

    #[test]
    fn pattern_matching_axes() {
        let add = Inst::op3(Opcode::Addq, reg(2), reg(4), reg(2));
        assert!(Pattern::opcode(Opcode::Addq).matches(&add));
        assert!(!Pattern::opcode(Opcode::Subq).matches(&add));
        assert!(Pattern::class(OpClass::IntAlu).matches(&add));
        assert!(Pattern { ra: Some(reg(2)), ..Pattern::default() }.matches(&add));
        assert!(!Pattern { rc: Some(reg(9)), ..Pattern::default() }.matches(&add));
    }

    #[test]
    fn codeword_pattern_keys_on_mgid() {
        let h = Inst::handle(reg(1), reg(2), reg(3), 34, None);
        assert!(Pattern::codeword(34).matches(&h));
        assert!(!Pattern::codeword(12).matches(&h));
        assert!(!Pattern::codeword(34).matches(&Inst::nop()));
    }

    #[test]
    fn instantiation_fills_template_holes() {
        // The paper's toy production: <add : T.INSN ; andi T.RD,0xff,T.RD>.
        let matched = Inst::op3(Opcode::Addq, reg(2), reg(4), reg(2));
        let andi = ReplInst {
            op: Opcode::And,
            a: ReplOperand::Rd,
            b: ReplOperand::Imm(0xff),
            c: ReplOperand::Rd,
            disp: DispParam::Lit(0),
        };
        let inst = andi.instantiate(&matched, &[]).unwrap();
        assert_eq!(inst.to_string(), "and r2,255,r2");
    }

    #[test]
    fn dise_registers_resolve_from_engine_set() {
        let matched = Inst::op3(Opcode::Addq, reg(2), reg(4), reg(2));
        let r = ReplInst {
            op: Opcode::Cmplt,
            a: ReplOperand::Rd,
            b: ReplOperand::Rs2,
            c: ReplOperand::Dise(0),
            disp: DispParam::Lit(0),
        };
        let inst = r.instantiate(&matched, &[reg(25)]).unwrap();
        assert_eq!(inst.to_string(), "cmplt r2,r4,r25");
        assert_eq!(
            r.instantiate(&matched, &[]).unwrap_err(),
            InstantiateError::DiseRegOutOfRange(0)
        );
    }

    #[test]
    fn from_match_disp_uses_handle_branch_target() {
        let h = Inst::handle(reg(1), reg(2), reg(3), 12, Some(42));
        let b = ReplInst {
            op: Opcode::Bne,
            a: ReplOperand::Dise(0),
            b: ReplOperand::Imm(0),
            c: ReplOperand::Reg(Reg::ZERO),
            disp: DispParam::FromMatch,
        };
        let inst = b.instantiate(&h, &[reg(25)]).unwrap();
        assert_eq!(inst.static_target(), Some(42));
    }
}
