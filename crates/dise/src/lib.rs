//! DISE — a model of the dynamic instruction stream editor (Corliss,
//! Lewis & Roth, ISCA-30) as used by the paper's §5 to supply
//! application-specific mini-graphs.
//!
//! DISE translates fetched instructions into instruction sequences at
//! decode time according to programmable *productions*. Mini-graph
//! processing is an *aware* utility: handles are DISE codewords (the `mg`
//! opcode), the MGT becomes a cache whose tags live in the [`Mgtt`], and
//! the mini-graph pre-processor ([`mgpp`]) compiles replacement sequences
//! into MGT format, approving only those that satisfy the mini-graph
//! interface rules. A processor that does not recognise a handle simply
//! expands it back into singletons ([`DiseEngine::expand_image`]) —
//! preserving correctness and portability.
//!
//! # Example: round-tripping a mini-graph definition
//!
//! ```
//! use mg_dise::{handle_production, mgpp, DiseEngine, Mgtt, MgttDecision};
//! use mg_isa::{MgTemplate, Opcode, TmplInst, TmplOperand, reg};
//!
//! // The paper's mini-graph 34: ldq 16(E0) ; srl M0,14 ; and M1,1.
//! let template = MgTemplate {
//!     ops: vec![
//!         TmplInst { op: Opcode::Ldq, a: TmplOperand::E0, b: TmplOperand::Imm(0), disp: 16 },
//!         TmplInst { op: Opcode::Srl, a: TmplOperand::M(0), b: TmplOperand::Imm(14), disp: 0 },
//!         TmplInst { op: Opcode::And, a: TmplOperand::M(1), b: TmplOperand::Imm(1), disp: 0 },
//!     ],
//!     out: Some(2),
//! };
//!
//! // Express it as a DISE production, compile it with the MGPP, and
//! // confirm the MGT row comes back identical.
//! let production = handle_production(34, &template);
//! let compiled = mgpp::compile(&production.replacement).expect("MGPP approves");
//! assert_eq!(compiled, template);
//!
//! // The MGTT then keeps such handles un-expanded.
//! let mut tags = Mgtt::new(512);
//! tags.install(34);
//! tags.set_approved(34, true);
//! assert_eq!(tags.lookup(34), MgttDecision::KeepHandle);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod engine;
pub mod mgpp;
pub mod mgtt;
pub mod production;

pub use engine::DiseEngine;
pub use mgpp::{compile as mgpp_compile, Reject};
pub use mgtt::{Mgtt, MgttDecision, MgttEntry};
pub use production::{
    DispParam, InstantiateError, Pattern, Production, ReplInst, ReplItem, ReplOperand,
};

use mg_isa::{MgTemplate, OpClass, TmplOperand};

fn repl_operand(o: TmplOperand, out: Option<u8>) -> ReplOperand {
    match o {
        TmplOperand::E0 => ReplOperand::Rs1,
        TmplOperand::E1 => ReplOperand::Rs2,
        TmplOperand::M(i) if Some(i) == out => ReplOperand::Rd,
        TmplOperand::M(i) => ReplOperand::Dise(i),
        TmplOperand::Imm(v) => ReplOperand::Imm(v),
    }
}

/// Builds the DISE production for a mini-graph handle: the pattern matches
/// the `mg` codeword with the given `mgid`; the replacement is the
/// template expressed with `T.RS1`/`T.RS2`/`T.RD`/`$d` parameters —
/// exactly the form the OS loads from an executable's `.dise` section.
pub fn handle_production(mgid: u32, template: &MgTemplate) -> Production {
    let out = template.out;
    let mut replacement = Vec::with_capacity(template.len());
    for (i, t) in template.ops.iter().enumerate() {
        let dest =
            if Some(i as u8) == out { ReplOperand::Rd } else { ReplOperand::Dise(i as u8) };
        let item = match t.op.class() {
            OpClass::Load => ReplInst {
                op: t.op,
                a: repl_operand(t.a, out),
                b: ReplOperand::Imm(0),
                c: dest,
                disp: DispParam::Lit(t.disp),
            },
            // Template stores are (a = data, b = base); ReplInst mirrors
            // Inst layout (a = base, b = data).
            OpClass::Store => ReplInst {
                op: t.op,
                a: repl_operand(t.b, out),
                b: repl_operand(t.a, out),
                c: ReplOperand::Reg(mg_isa::Reg::ZERO),
                disp: DispParam::Lit(t.disp),
            },
            OpClass::CondBranch | OpClass::UncondBranch => ReplInst {
                op: t.op,
                a: repl_operand(t.a, out),
                b: ReplOperand::Imm(0),
                c: ReplOperand::Reg(mg_isa::Reg::ZERO),
                // The executed target comes from the matched handle.
                disp: DispParam::FromMatch,
            },
            _ => ReplInst {
                op: t.op,
                a: repl_operand(t.a, out),
                b: repl_operand(t.b, out),
                c: dest,
                disp: DispParam::Lit(0),
            },
        };
        replacement.push(ReplItem::Inst(item));
    }
    Production { pattern: Pattern::codeword(mgid), replacement }
}

/// Builds an engine that expands *every* handle of `catalog` back into
/// singleton sequences — the behaviour of a processor with no mini-graph
/// support, or of DISE when the MGTT rejects a definition.
pub fn expansion_engine(
    catalog: &mg_isa::HandleCatalog,
    dise_regs: Vec<mg_isa::Reg>,
) -> DiseEngine {
    let mut e = DiseEngine::new(dise_regs);
    for (mgid, t) in catalog.iter() {
        e.add(handle_production(mgid, t));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Opcode, TmplInst};

    fn mg12() -> MgTemplate {
        MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addl,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(2),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Cmplt,
                    a: TmplOperand::M(0),
                    b: TmplOperand::E1,
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Bne,
                    a: TmplOperand::M(1),
                    b: TmplOperand::Imm(0),
                    disp: -3,
                },
            ],
            out: Some(0),
        }
    }

    #[test]
    fn production_round_trips_through_mgpp() {
        let t = mg12();
        let p = handle_production(12, &t);
        let compiled = mgpp::compile(&p.replacement).expect("approved");
        // Branch displacement is carried by the handle (FromMatch), so the
        // compiled row differs only in the terminal disp.
        assert_eq!(compiled.out, t.out);
        assert_eq!(compiled.ops.len(), t.ops.len());
        assert_eq!(compiled.ops[0], t.ops[0]);
        assert_eq!(compiled.ops[1], t.ops[1]);
        assert_eq!(compiled.ops[2].op, Opcode::Bne);
    }

    #[test]
    fn expansion_engine_covers_catalog() {
        let mut cat = mg_isa::HandleCatalog::new();
        cat.add(mg12());
        let e = expansion_engine(&cat, vec![reg(25), reg(26), reg(27)]);
        assert_eq!(e.len(), 1);
        let h = mg_isa::Inst::handle(reg(18), reg(5), reg(18), 0, Some(9));
        let seq = e.expand(&h).unwrap().expect("handle matches");
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].to_string(), "addl r18,2,r18");
        assert_eq!(seq[1].to_string(), "cmplt r18,r5,r26", "interior uses scratch");
        assert_eq!(seq[2].static_target(), Some(9), "branch target from handle aux");
    }
}
