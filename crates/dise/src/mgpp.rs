//! The mini-graph pre-processor (MGPP).
//!
//! A small state machine that "scans DISE replacement sequences and
//! compiles them to internal MGT format" (paper §5), approving the
//! mini-graph if the sequence satisfies the interface rules (two register
//! inputs via `T.RS1`/`T.RS2`, one output via `T.RD`, interior dataflow
//! only through `$d` registers, at most one memory operation, at most one
//! terminal control transfer).

use crate::production::{DispParam, ReplItem, ReplOperand};
use mg_isa::{MgTemplate, OpClass, TmplInst, TmplOperand};

/// Why the MGPP rejected a replacement sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// Sequence is empty or a single instruction.
    TooSmall,
    /// Sequence longer than the MGT's per-row instruction capacity.
    TooLong,
    /// An opcode that may not appear inside a mini-graph.
    IneligibleOpcode,
    /// More than one memory operation.
    TooManyMemOps,
    /// A control transfer that is not the final instruction.
    NonTerminalBranch,
    /// A `$d` register is read before any instruction wrote it.
    UndefinedDiseReg,
    /// More than one instruction targets `T.RD`, or a `T.RD` write is
    /// followed by uses that should have gone through `$d` registers.
    MultipleOutputs,
    /// `T.INSN` items cannot appear in mini-graph definitions.
    OriginalNotAllowed,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Reject::TooSmall => "sequence too small",
            Reject::TooLong => "sequence exceeds MGT row capacity",
            Reject::IneligibleOpcode => "ineligible opcode",
            Reject::TooManyMemOps => "more than one memory operation",
            Reject::NonTerminalBranch => "non-terminal control transfer",
            Reject::UndefinedDiseReg => "read of an unwritten $d register",
            Reject::MultipleOutputs => "more than one interface output",
            Reject::OriginalNotAllowed => "T.INSN not allowed in mini-graph definitions",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Reject {}

/// Maximum constituent instructions per MGT row accepted by the MGPP.
pub const MAX_ROW: usize = 8;

fn operand(
    o: ReplOperand,
    dise_writer: &[Option<u8>; 16],
    rd_writer: Option<u8>,
) -> Result<TmplOperand, Reject> {
    match o {
        ReplOperand::Rs1 => Ok(TmplOperand::E0),
        ReplOperand::Rs2 => Ok(TmplOperand::E1),
        ReplOperand::Dise(n) => dise_writer
            .get(n as usize)
            .copied()
            .flatten()
            .map(TmplOperand::M)
            .ok_or(Reject::UndefinedDiseReg),
        ReplOperand::Imm(v) => Ok(TmplOperand::Imm(v)),
        ReplOperand::Reg(r) if r.is_zero() => Ok(TmplOperand::Imm(0)),
        // Literal architectural registers would be hidden interface inputs.
        ReplOperand::Reg(_) => Err(Reject::IneligibleOpcode),
        // T.RD as a source names the interior value the output-producing
        // instruction created (the paper's mg 12 reads T.RD in its cmplt).
        ReplOperand::Rd => rd_writer.map(TmplOperand::M).ok_or(Reject::UndefinedDiseReg),
        ReplOperand::ImmParam => Ok(TmplOperand::Imm(0)),
    }
}

/// Compiles a replacement sequence into an [`MgTemplate`], validating the
/// mini-graph interface rules.
///
/// # Errors
///
/// Returns a [`Reject`] describing the first violated rule.
pub fn compile(seq: &[ReplItem]) -> Result<MgTemplate, Reject> {
    if seq.len() < 2 {
        return Err(Reject::TooSmall);
    }
    if seq.len() > MAX_ROW {
        return Err(Reject::TooLong);
    }
    let mut ops: Vec<TmplInst> = Vec::with_capacity(seq.len());
    let mut dise_writer: [Option<u8>; 16] = [None; 16];
    let mut out: Option<u8> = None;
    let mut mem_ops = 0;

    for (i, item) in seq.iter().enumerate() {
        let ReplItem::Inst(r) = item else { return Err(Reject::OriginalNotAllowed) };
        if !r.op.is_mini_graph_eligible() {
            return Err(Reject::IneligibleOpcode);
        }
        let class = r.op.class();
        if class.is_mem() {
            mem_ops += 1;
            if mem_ops > 1 {
                return Err(Reject::TooManyMemOps);
            }
        }
        if class.is_control() && i + 1 != seq.len() {
            return Err(Reject::NonTerminalBranch);
        }
        let disp = match r.disp {
            DispParam::Lit(v) => v,
            DispParam::FromMatch => 0,
        };
        let t = match class {
            OpClass::IntAlu => TmplInst {
                op: r.op,
                a: operand(r.a, &dise_writer, out)?,
                b: operand(r.b, &dise_writer, out)?,
                disp,
            },
            OpClass::Load => TmplInst {
                op: r.op,
                a: operand(r.a, &dise_writer, out)?,
                b: TmplOperand::Imm(0),
                disp,
            },
            // Store replacement layout mirrors Inst: a = base, b = data;
            // template layout is a = data, b = base.
            OpClass::Store => TmplInst {
                op: r.op,
                a: operand(r.b, &dise_writer, out)?,
                b: operand(r.a, &dise_writer, out)?,
                disp,
            },
            OpClass::CondBranch => TmplInst {
                op: r.op,
                a: operand(r.a, &dise_writer, out)?,
                b: TmplOperand::Imm(0),
                disp,
            },
            OpClass::UncondBranch => {
                TmplInst { op: r.op, a: TmplOperand::Imm(0), b: TmplOperand::Imm(0), disp }
            }
            _ => return Err(Reject::IneligibleOpcode),
        };
        ops.push(t);

        // Destination bookkeeping.
        match r.c {
            ReplOperand::Dise(n) => {
                if (n as usize) < dise_writer.len() {
                    dise_writer[n as usize] = Some(i as u8);
                } else {
                    return Err(Reject::UndefinedDiseReg);
                }
            }
            ReplOperand::Rd => {
                if out.is_some() {
                    return Err(Reject::MultipleOutputs);
                }
                out = Some(i as u8);
            }
            ReplOperand::Reg(r) if r.is_zero() => {}
            _ if class == OpClass::Store || class.is_control() => {}
            _ => return Err(Reject::MultipleOutputs),
        }
    }
    Ok(MgTemplate { ops, out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::production::ReplInst;
    use mg_isa::{Opcode, Reg};

    fn ri(op: Opcode, a: ReplOperand, b: ReplOperand, c: ReplOperand, disp: i64) -> ReplItem {
        ReplItem::Inst(ReplInst { op, a, b, c, disp: DispParam::Lit(disp) })
    }

    /// The paper's replacement for mini-graph 12:
    /// `<addl T.RS1,2,T.RD ; cmplt T.RD,T.RS2,$d0 ; bne $d0,0xa>`.
    fn mg12_items() -> Vec<ReplItem> {
        vec![
            ri(Opcode::Addl, ReplOperand::Rs1, ReplOperand::Imm(2), ReplOperand::Rd, 0),
            ri(Opcode::Cmplt, ReplOperand::Rd, ReplOperand::Rs2, ReplOperand::Dise(0), 0),
            ri(
                Opcode::Bne,
                ReplOperand::Dise(0),
                ReplOperand::Imm(0),
                ReplOperand::Reg(Reg::ZERO),
                -3,
            ),
        ]
    }

    #[test]
    fn compiles_paper_example_12() {
        let t = compile(&mg12_items()).unwrap();
        assert_eq!(t.out, Some(0), "paper: OUT field is 0");
        assert_eq!(t.ops[1].a, TmplOperand::M(0), "T.RD source maps to M0");
        assert_eq!(t.ops[1].b, TmplOperand::E1);
        assert_eq!(t.ops[2].a, TmplOperand::M(1));
        assert!(t.is_integer_only());
    }

    #[test]
    fn compiles_paper_example_34() {
        // <ldq $d0,16(T.RS2) ; srl $d0,14,$d0 ; and $d0,1,T.RD>
        let items = vec![
            ri(Opcode::Ldq, ReplOperand::Rs2, ReplOperand::Imm(0), ReplOperand::Dise(0), 16),
            ri(
                Opcode::Srl,
                ReplOperand::Dise(0),
                ReplOperand::Imm(14),
                ReplOperand::Dise(0),
                0,
            ),
            ri(Opcode::And, ReplOperand::Dise(0), ReplOperand::Imm(1), ReplOperand::Rd, 0),
        ];
        let t = compile(&items).unwrap();
        assert_eq!(t.out, Some(2));
        assert_eq!(t.ops[0].a, TmplOperand::E1);
        assert_eq!(t.ops[1].a, TmplOperand::M(0));
        assert_eq!(t.ops[2].a, TmplOperand::M(1), "$d0 rebinds to the latest writer");
        assert!(t.has_interior_load());
    }

    #[test]
    fn rejects_undefined_dise_register() {
        let mut items = mg12_items();
        // Break the chain: bne now reads $d3 which nothing wrote.
        items[2] = ri(
            Opcode::Bne,
            ReplOperand::Dise(3),
            ReplOperand::Imm(0),
            ReplOperand::Reg(Reg::ZERO),
            -3,
        );
        assert_eq!(compile(&items).unwrap_err(), Reject::UndefinedDiseReg);
    }

    #[test]
    fn rejects_rd_read_before_write() {
        let items = vec![
            ri(Opcode::Cmplt, ReplOperand::Rd, ReplOperand::Rs2, ReplOperand::Dise(0), 0),
            ri(Opcode::Addq, ReplOperand::Dise(0), ReplOperand::Imm(1), ReplOperand::Rd, 0),
        ];
        assert_eq!(compile(&items).unwrap_err(), Reject::UndefinedDiseReg);
    }

    #[test]
    fn rejects_two_memory_ops() {
        let items = vec![
            ri(Opcode::Ldq, ReplOperand::Rs1, ReplOperand::Imm(0), ReplOperand::Dise(0), 0),
            ri(Opcode::Ldq, ReplOperand::Rs2, ReplOperand::Imm(0), ReplOperand::Rd, 8),
        ];
        // Second op is also a load, but first already used the memory slot…
        // both are loads: the second read is the violation.
        assert_eq!(compile(&items).unwrap_err(), Reject::TooManyMemOps);
    }

    #[test]
    fn rejects_non_terminal_branch() {
        let items = vec![
            ri(
                Opcode::Bne,
                ReplOperand::Rs1,
                ReplOperand::Imm(0),
                ReplOperand::Reg(Reg::ZERO),
                4,
            ),
            ri(Opcode::Addq, ReplOperand::Rs1, ReplOperand::Imm(1), ReplOperand::Rd, 0),
        ];
        assert_eq!(compile(&items).unwrap_err(), Reject::NonTerminalBranch);
    }

    #[test]
    fn rejects_multiple_outputs() {
        let items = vec![
            ri(Opcode::Addq, ReplOperand::Rs1, ReplOperand::Imm(1), ReplOperand::Rd, 0),
            ri(Opcode::Subq, ReplOperand::Rs2, ReplOperand::Imm(1), ReplOperand::Rd, 0),
        ];
        assert_eq!(compile(&items).unwrap_err(), Reject::MultipleOutputs);
    }

    #[test]
    fn rejects_singleton_and_oversized() {
        let one =
            vec![ri(Opcode::Addq, ReplOperand::Rs1, ReplOperand::Imm(1), ReplOperand::Rd, 0)];
        assert_eq!(compile(&one).unwrap_err(), Reject::TooSmall);
        let many: Vec<ReplItem> = (0..9)
            .map(|_| {
                ri(Opcode::Addq, ReplOperand::Rs1, ReplOperand::Imm(1), ReplOperand::Dise(0), 0)
            })
            .collect();
        assert_eq!(compile(&many).unwrap_err(), Reject::TooLong);
    }

    #[test]
    fn rejects_ineligible_opcode() {
        let items = vec![
            ri(Opcode::Mulq, ReplOperand::Rs1, ReplOperand::Rs2, ReplOperand::Dise(0), 0),
            ri(Opcode::Addq, ReplOperand::Dise(0), ReplOperand::Imm(1), ReplOperand::Rd, 0),
        ];
        assert_eq!(compile(&items).unwrap_err(), Reject::IneligibleOpcode);
    }
}
