//! The mini-graph tag table (MGTT).
//!
//! When the MGT acts as a cache of DISE-supplied mini-graph definitions,
//! the MGTT holds its tags. Each entry carries two valid bits (paper §5):
//! the first says the tag is not garbage and the mini-graph has been seen
//! by the pre-processor; the second says the MGPP *approved* it, so the
//! handle should stay un-expanded at decode. On a miss, DISE expands the
//! replacement sequence (the pipeline keeps running) and sends a copy to
//! the MGPP for inspection.

/// One MGTT entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MgttEntry {
    /// The tag.
    pub mgid: u32,
    /// First valid bit: the entry is live and pre-processing has begun.
    pub seen: bool,
    /// Second valid bit: the MGPP approved the mini-graph; keep the handle
    /// un-expanded.
    pub approved: bool,
}

/// The decision the decode stage takes for a fetched handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MgttDecision {
    /// Tag present and approved: execute as a handle.
    KeepHandle,
    /// Tag present but rejected (or still in flight): expand.
    Expand,
    /// Tag absent: expand, and send the definition to the MGPP.
    MissAndPreprocess,
}

/// A capacity-limited tag table with FIFO replacement.
#[derive(Clone, Debug)]
pub struct Mgtt {
    entries: Vec<MgttEntry>,
    capacity: usize,
}

impl Mgtt {
    /// Creates a tag table for `capacity` mini-graphs.
    pub fn new(capacity: usize) -> Mgtt {
        Mgtt { entries: Vec::new(), capacity }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decode-time lookup.
    pub fn lookup(&self, mgid: u32) -> MgttDecision {
        match self.entries.iter().find(|e| e.mgid == mgid) {
            Some(e) if e.seen && e.approved => MgttDecision::KeepHandle,
            Some(_) => MgttDecision::Expand,
            None => MgttDecision::MissAndPreprocess,
        }
    }

    /// Installs a tag in the "seen, not yet approved" state (the MGPP has
    /// the definition). Evicts the oldest entry if full.
    pub fn install(&mut self, mgid: u32) {
        if self.entries.iter().any(|e| e.mgid == mgid) {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(MgttEntry { mgid, seen: true, approved: false });
    }

    /// Marks the MGPP verdict for a tag.
    pub fn set_approved(&mut self, mgid: u32, approved: bool) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.mgid == mgid) {
            e.approved = approved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_install_then_approve() {
        let mut t = Mgtt::new(4);
        assert_eq!(t.lookup(12), MgttDecision::MissAndPreprocess);
        t.install(12);
        assert_eq!(t.lookup(12), MgttDecision::Expand, "seen but not approved yet");
        t.set_approved(12, true);
        assert_eq!(t.lookup(12), MgttDecision::KeepHandle);
    }

    #[test]
    fn rejected_definitions_stay_expanded() {
        let mut t = Mgtt::new(4);
        t.install(7);
        t.set_approved(7, false);
        assert_eq!(t.lookup(7), MgttDecision::Expand);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut t = Mgtt::new(2);
        t.install(1);
        t.install(2);
        t.install(3); // evicts 1
        assert_eq!(t.lookup(1), MgttDecision::MissAndPreprocess);
        assert_eq!(t.lookup(2), MgttDecision::Expand);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reinstall_is_idempotent() {
        let mut t = Mgtt::new(2);
        t.install(5);
        t.set_approved(5, true);
        t.install(5);
        assert_eq!(t.lookup(5), MgttDecision::KeepHandle, "approval survives");
    }
}
