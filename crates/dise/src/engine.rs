//! The DISE engine: decode-time instruction-stream editing.

use crate::production::{InstantiateError, Production, ReplItem};
use mg_isa::{Inst, Program, Reg};

/// A dynamic instruction stream editor.
///
/// The engine holds active productions and the DISE-private register set
/// (`$d0..`). Our model maps DISE registers onto architectural scratch
/// registers supplied at construction; the caller guarantees they are dead
/// at every expansion site (the paper gives DISE a physically separate
/// register file, which a 32-register architectural model cannot express).
#[derive(Clone, Debug, Default)]
pub struct DiseEngine {
    productions: Vec<Production>,
    dise_regs: Vec<Reg>,
}

impl DiseEngine {
    /// Creates an engine with no productions.
    pub fn new(dise_regs: Vec<Reg>) -> DiseEngine {
        DiseEngine { productions: Vec::new(), dise_regs }
    }

    /// Adds a production (later productions have lower priority; the first
    /// matching pattern wins).
    pub fn add(&mut self, p: Production) -> &mut Self {
        self.productions.push(p);
        self
    }

    /// Number of active productions.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// Whether the engine has no productions.
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// Expands one fetched instruction: returns the replacement sequence
    /// if a production matches, or `None` to pass the instruction through
    /// unmodified.
    ///
    /// # Errors
    ///
    /// Returns an [`InstantiateError`] if a matching replacement cannot be
    /// instantiated (e.g. `$d` register out of range).
    pub fn expand(&self, inst: &Inst) -> Result<Option<Vec<Inst>>, InstantiateError> {
        let Some(p) = self.productions.iter().find(|p| p.pattern.matches(inst)) else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(p.replacement.len());
        for item in &p.replacement {
            match item {
                ReplItem::Original => out.push(*inst),
                ReplItem::Inst(r) => out.push(r.instantiate(inst, &self.dise_regs)?),
            }
        }
        Ok(Some(out))
    }

    /// Statically expands a whole program image, remapping control-flow
    /// targets across the length changes. This models a processor that
    /// does not support some codewords and lets DISE splice replacement
    /// sequences in-line (paper §5: "a processor can always expand a
    /// mini-graph it doesn't understand").
    ///
    /// # Errors
    ///
    /// Propagates instantiation errors.
    pub fn expand_image(&self, prog: &Program) -> Result<Program, InstantiateError> {
        let n = prog.insts.len();
        let mut groups: Vec<Vec<Inst>> = Vec::with_capacity(n);
        for inst in &prog.insts {
            match self.expand(inst)? {
                Some(seq) => groups.push(seq),
                None => groups.push(vec![*inst]),
            }
        }
        // Prefix sums for target remapping.
        let mut forward = vec![0usize; n + 1];
        let mut next = 0usize;
        for (i, g) in groups.iter().enumerate() {
            forward[i] = next;
            next += g.len();
        }
        forward[n] = next;

        let mut insts = Vec::with_capacity(next);
        for g in &groups {
            for inst in g {
                let mut inst = *inst;
                if let Some(t) = inst.static_target() {
                    inst.disp = forward[t.min(n)] as i64;
                }
                if inst.op == mg_isa::Opcode::Mg && inst.aux >= 0 {
                    inst.aux = forward[(inst.aux as usize).min(n)] as i64;
                }
                insts.push(inst);
            }
        }
        let labels = prog.labels.iter().map(|(k, &v)| (k.clone(), forward[v.min(n)])).collect();
        Ok(Program {
            insts,
            entry: forward[prog.entry.min(n)],
            labels,
            base_addr: prog.base_addr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::production::{DispParam, Pattern, ReplInst, ReplOperand};
    use mg_isa::{reg, Asm, Memory, OpClass, Opcode};
    use mg_profile::run_program;

    /// A transparent profiling utility: count every executed load in r27.
    fn load_counting_engine() -> DiseEngine {
        let mut e = DiseEngine::new(vec![reg(25), reg(26)]);
        e.add(Production {
            pattern: Pattern::class(OpClass::Load),
            replacement: vec![
                ReplItem::Original,
                ReplItem::Inst(ReplInst {
                    op: Opcode::Addq,
                    a: ReplOperand::Reg(reg(27)),
                    b: ReplOperand::Imm(1),
                    c: ReplOperand::Reg(reg(27)),
                    disp: DispParam::Lit(0),
                }),
            ],
        });
        e
    }

    #[test]
    fn transparent_utility_counts_loads() {
        let mut a = Asm::new();
        a.li(reg(20), 0x9000);
        a.li(reg(30), 10);
        a.label("top");
        a.ldq(reg(1), 0, reg(20));
        a.ldq(reg(2), 8, reg(20));
        a.subq(reg(30), 1, reg(30));
        a.bne(reg(30), "top");
        a.halt();
        let p = a.finish().unwrap();

        let expanded = load_counting_engine().expand_image(&p).unwrap();
        assert_eq!(expanded.len(), p.len() + 2, "two loads gained one inst each");
        let r = run_program(&expanded, &mut Memory::new(), None, 10_000).unwrap();
        assert_eq!(r.cpu.regs[27], 20, "2 loads x 10 iterations counted");
    }

    #[test]
    fn expansion_remaps_branch_targets() {
        let mut a = Asm::new();
        a.li(reg(20), 0x9000);
        a.beq(mg_isa::Reg::ZERO, "skip"); // always taken, over the load
        a.ldq(reg(1), 0, reg(20));
        a.label("skip");
        a.halt();
        let p = a.finish().unwrap();
        let expanded = load_counting_engine().expand_image(&p).unwrap();
        // The branch must still skip the (now larger) load group.
        let r = run_program(&expanded, &mut Memory::new(), None, 100).unwrap();
        assert_eq!(r.cpu.regs[27], 0, "skipped load not counted");
    }

    #[test]
    fn first_matching_production_wins() {
        let mut e = DiseEngine::new(vec![]);
        e.add(Production {
            pattern: Pattern::opcode(Opcode::Addq),
            replacement: vec![ReplItem::Original, ReplItem::Original],
        });
        e.add(Production { pattern: Pattern::class(OpClass::IntAlu), replacement: vec![] });
        let add = Inst::op3(Opcode::Addq, reg(1), 1i64, reg(1));
        let sub = Inst::op3(Opcode::Subq, reg(1), 1i64, reg(1));
        assert_eq!(e.expand(&add).unwrap().unwrap().len(), 2);
        assert_eq!(e.expand(&sub).unwrap().unwrap().len(), 0, "class pattern deletes");
        assert!(e.expand(&Inst::nop()).unwrap().is_none());
    }
}
