//! Integration tests of the shard coordinator's failure model: exact
//! reroute accounting when a primary dies, exact steal accounting when
//! a shard's queue backs up behind a busy worker, the drain/restart
//! lifecycle, the deterministic `cluster.shard.panic` injection point,
//! and per-shard stats aggregation — all over stub runners (this crate
//! knows nothing about experiments), in the style of the serve crate's
//! resilience tests.

use mg_cluster::{route_key, Cluster, ClusterConfig, ClusterController, Ring, ShardFactory};
use mg_fault::{points, FaultPlan};
use mg_serve::{
    Client, EmitFn, Request, Response, RunOutcome, RunRequest, Server, ServerConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Every experiment the stub shards accept: a pool of route-key probes
/// plus the gate experiment the steal test blocks a worker with.
fn experiment_names() -> Vec<String> {
    let mut names: Vec<String> = (0..24).map(|i| format!("exp-{i}")).collect();
    names.push("gate".into());
    names
}

/// A factory of stub shards: `gate` blocks its worker on the shared
/// gate channel, everything else completes immediately with a
/// predictable payload. One global execution counter across all shards
/// (stolen batches execute on a thief's worker but still count here).
fn stub_factory(
    workers: usize,
    gate: Arc<Mutex<mpsc::Receiver<()>>>,
    executions: Arc<AtomicU64>,
) -> ShardFactory {
    Arc::new(move |_shard| {
        let gate = Arc::clone(&gate);
        let executions = Arc::clone(&executions);
        let runner = Arc::new(move |req: &RunRequest, _emit: EmitFn| {
            executions.fetch_add(1, Ordering::SeqCst);
            if req.experiment == "gate" {
                gate.lock().unwrap().recv().map_err(|e| e.to_string())?;
            }
            Ok(RunOutcome { status: 0, payload: format!("payload for {}\n", req.experiment) })
        });
        Server::bind(
            "127.0.0.1:0",
            experiment_names(),
            runner,
            ServerConfig { workers, ..ServerConfig::default() },
        )
    })
}

struct Harness {
    addr: String,
    controller: ClusterController,
    join: std::thread::JoinHandle<std::io::Result<()>>,
    release: mpsc::Sender<()>,
    executions: Arc<AtomicU64>,
}

fn start(shards: usize, workers: usize, faults: Option<Arc<FaultPlan>>) -> Harness {
    let (release, gate_rx) = mpsc::channel::<()>();
    let executions = Arc::new(AtomicU64::new(0));
    let factory = stub_factory(workers, Arc::new(Mutex::new(gate_rx)), Arc::clone(&executions));
    let cfg = ClusterConfig { shards, faults, ..ClusterConfig::default() };
    let cluster = Cluster::bind("127.0.0.1:0", factory, cfg).expect("bind cluster");
    let addr = cluster.local_addr().expect("tcp addr").to_string();
    let controller = cluster.controller();
    Harness { addr, controller, join: cluster.spawn(), release, executions }
}

impl Harness {
    fn client(&self) -> Client {
        Client::tcp(&self.addr)
    }

    fn stat(&self, name: &str) -> u64 {
        self.controller.stat(name).unwrap_or_else(|| panic!("counter {name:?} missing"))
    }

    /// Spins until `stat(name) == want` (bounded), so scheduling-
    /// dependent assertions are deterministic.
    fn await_stat(&self, name: &str, want: u64) {
        for _ in 0..1000 {
            if self.stat(name) == want {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("counter {name:?} never reached {want} (is {})", self.stat(name));
    }

    fn shutdown(self) {
        let done = self
            .client()
            .request(&Request::Shutdown { drain: true }, |_| {})
            .expect("shutdown");
        assert!(matches!(done, Response::Done { .. }));
        self.join.join().expect("serve thread").expect("clean cluster exit");
    }
}

/// The ring-predicted primary of `experiment` in an `shards`-shard
/// cluster (the public routing contract the load generator relies on).
fn primary_of(shards: usize, experiment: &str) -> usize {
    Ring::new(shards).route(&route_key(&RunRequest::new(experiment)))
}

/// `n` distinct registered probe experiments whose primary is `shard`.
fn probes_on(shards: usize, shard: usize, n: usize) -> Vec<String> {
    let picked: Vec<String> = (0..24)
        .map(|i| format!("exp-{i}"))
        .filter(|name| primary_of(shards, name) == shard)
        .take(n)
        .collect();
    assert_eq!(picked.len(), n, "probe pool too small for shard {shard}");
    picked
}

fn run_ok(client: &Client, experiment: &str) {
    let terminal = client
        .request(&Request::Run(RunRequest::new(experiment)), |_| {})
        .expect("run request");
    assert_eq!(
        terminal,
        Response::Done { status: 0, payload: format!("payload for {experiment}\n") },
        "payloads survive routing and failover byte-identically"
    );
}

#[test]
fn stats_aggregate_per_shard_counters_with_liveness_bits() {
    let h = start(3, 2, None);
    run_ok(&h.client(), "exp-0");
    let pairs = h.controller.stats_pairs();
    let names: Vec<&str> = pairs.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(h.stat("shards"), 3);
    assert_eq!(h.stat("routed"), 1);
    assert_eq!(h.stat("reroutes"), 0);
    assert_eq!(h.stat("steals"), 0);
    for shard in 0..3 {
        assert_eq!(h.stat(&format!("shard{shard}.alive")), 1);
        assert!(
            names.contains(&format!("shard{shard}.queue_depth").as_str()),
            "per-shard queue depth is aggregated; got {names:?}"
        );
    }
    // The front socket serves the identical aggregation.
    let Response::Stats { pairs: wire } =
        h.client().request(&Request::Stats, |_| {}).expect("stats")
    else {
        panic!("expected stats");
    };
    let wire_names: Vec<&str> = wire.iter().map(|(n, _)| n.as_str()).collect();
    for name in &names {
        assert!(wire_names.contains(name), "front stats missing {name}");
    }
    h.shutdown();
}

#[test]
fn killed_primary_reroutes_every_run_exactly_once() {
    let h = start(3, 2, None);
    let victim = primary_of(3, "exp-0");
    assert!(h.controller.kill_shard(victim), "first kill wins");
    assert!(!h.controller.kill_shard(victim), "second kill is a no-op");
    assert!(!h.controller.alive(victim));

    // Every run whose primary is dead completes on a successor and
    // counts exactly one reroute — no more, however many successors the
    // walk could visit.
    let client = h.client();
    for _ in 0..5 {
        run_ok(&client, "exp-0");
    }
    assert_eq!(h.stat("routed"), 5);
    assert_eq!(h.stat("reroutes"), 5);
    assert_eq!(h.stat("shard_deaths"), 1);

    // A run owned by a surviving shard does not reroute.
    let untouched = (0..24)
        .map(|i| format!("exp-{i}"))
        .find(|name| primary_of(3, name) != victim)
        .expect("some probe routes elsewhere");
    run_ok(&client, &untouched);
    assert_eq!(h.stat("routed"), 6);
    assert_eq!(h.stat("reroutes"), 5);
    h.shutdown();
}

#[test]
fn idle_shards_steal_queued_batches_from_a_busy_peer() {
    // One worker per shard: the gate experiment wedges its primary's
    // only worker, so everything queued behind it can complete only by
    // being stolen by the two idle shards.
    let h = start(3, 1, None);
    let busy = primary_of(3, "gate");
    let gate_client = h.client();
    let gated = std::thread::spawn(move || run_ok(&gate_client, "gate"));
    h.await_stat(&format!("shard{busy}.in_flight"), 1);

    let stolen = probes_on(3, busy, 3);
    let runs: Vec<_> = stolen
        .iter()
        .map(|name| {
            let client = h.client();
            let name = name.clone();
            std::thread::spawn(move || run_ok(&client, &name))
        })
        .collect();
    for run in runs {
        run.join().expect("stolen batch completed");
    }
    // All three completed while the owner's worker was provably still
    // wedged — so each was stolen, and the counter is exact. (Stolen
    // batches run against the *owner's* counters, so its in_flight can
    // transiently exceed 1 right after a terminal frame; it settles
    // back to the wedged gate alone.)
    h.await_stat(&format!("shard{busy}.in_flight"), 1);
    assert!(!gated.is_finished(), "owner's worker is still wedged on the gate");
    assert_eq!(h.stat("steals"), 3);
    assert_eq!(h.stat("reroutes"), 0, "stealing is not rerouting");

    h.release.send(()).expect("release the gate");
    gated.join().expect("gated run completed");
    assert_eq!(h.executions.load(Ordering::SeqCst), 4);
    h.shutdown();
}

#[test]
fn drain_restart_cycle_reroutes_then_restores() {
    let h = start(3, 2, None);
    let shard = primary_of(3, "exp-1");
    h.controller.drain_shard(shard).expect("clean drain");
    assert!(!h.controller.alive(shard));

    // Drained ≠ dead: traffic routes around it (one reroute per run)...
    run_ok(&h.client(), "exp-1");
    assert_eq!(h.stat("reroutes"), 1);
    assert_eq!(h.stat("shard_deaths"), 0, "a drain is not a death");

    // ...until a restart returns its ring share to it.
    h.controller.restart_shard(shard).expect("restart");
    assert!(h.controller.alive(shard));
    assert_eq!(
        h.controller.restart_shard(shard).expect_err("double restart").kind(),
        std::io::ErrorKind::AlreadyExists
    );
    run_ok(&h.client(), "exp-1");
    assert_eq!(h.stat("reroutes"), 1, "restored primary serves its own keys again");
    assert_eq!(h.stat("routed"), 2);
    h.shutdown();
}

#[test]
fn injected_shard_panic_kills_once_and_every_run_still_completes() {
    // permille 1000, burst 1: the first routed run deterministically
    // kills its primary mid-flight; the coordinator must absorb it.
    let plan = Arc::new(FaultPlan::new(1).with_burst(points::SHARD_PANIC, 1000, 1));
    let h = start(3, 2, Some(plan));
    let client = h.client();
    run_ok(&client, "exp-0");
    assert_eq!(h.stat("shard_deaths"), 1);
    assert_eq!(h.stat("reroutes"), 1, "the killed primary's run fell over exactly once");
    // The burst is spent: a later run on a surviving primary neither
    // kills nor reroutes, and nothing hangs.
    let dead = (0..3).find(|&s| !h.controller.alive(s)).expect("one shard died");
    let survivor_probe = (0..24)
        .map(|i| format!("exp-{i}"))
        .find(|name| primary_of(3, name) != dead)
        .expect("some probe routes to a survivor");
    run_ok(&client, &survivor_probe);
    assert_eq!(h.stat("shard_deaths"), 1);
    assert_eq!(h.stat("reroutes"), 1);
    assert_eq!(h.stat("routed"), 2);
    h.shutdown();
}
