//! Property tests of the consistent-hash ring over a fixed key corpus:
//! spread (every shard receives a comparable share) and stability
//! (adding or removing one shard remaps only about `1/N` of the keys,
//! and every remapped key moves to or from the membership-changed
//! shard — never between two surviving shards).
//!
//! Pure unit-level properties — no sockets, no servers. The corpus and
//! the ring are both deterministic, so the asserted bounds are exact
//! replays, not statistical gambles.

use mg_cluster::{Ring, VNODES};

/// A fixed corpus shaped like real route keys (short, similar strings).
fn corpus() -> Vec<Vec<u8>> {
    (0..3000).map(|i| format!("corpus-key-{i}").into_bytes()).collect()
}

fn shares(ring: &Ring, keys: &[Vec<u8>]) -> Vec<usize> {
    let mut counts = vec![0usize; ring.shards()];
    for key in keys {
        counts[ring.route(key)] += 1;
    }
    counts
}

#[test]
fn key_shares_spread_within_tolerance_of_ideal() {
    let keys = corpus();
    for shards in [2usize, 3, 4, 8] {
        let counts = shares(&Ring::new(shards), &keys);
        let ideal = keys.len() / shards;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count >= ideal / 2 && count <= ideal * 3 / 2,
                "shard {shard}/{shards} owns {count} keys, ideal {ideal} \
                 ({VNODES} vnodes should keep shares within ~50%)"
            );
        }
    }
}

#[test]
fn adding_a_shard_moves_only_its_own_share_of_keys() {
    let keys = corpus();
    let before = Ring::new(4);
    let after = Ring::new(5);
    let moved: Vec<_> = keys.iter().filter(|k| before.route(k) != after.route(k)).collect();
    // Every remapped key lands on the new shard: surviving shards never
    // trade keys among themselves on a membership change.
    for key in &moved {
        assert_eq!(
            after.route(key),
            4,
            "key {:?} moved between surviving shards",
            String::from_utf8_lossy(key)
        );
    }
    // And the remapped fraction is about 1/5 — nonzero (the new shard
    // takes real work) and well below a full reshuffle.
    let expected = keys.len() / 5;
    assert!(
        moved.len() >= expected / 4 && moved.len() <= expected * 2,
        "{} of {} keys moved; expected about {expected}",
        moved.len(),
        keys.len()
    );
}

#[test]
fn removing_a_shard_reassigns_only_its_keys() {
    let keys = corpus();
    let before = Ring::new(5);
    let after = Ring::new(4);
    for key in &keys {
        if before.route(key) != after.route(key) {
            // Only keys the departing shard owned may move...
            assert_eq!(
                before.route(key),
                4,
                "key {:?} moved although its shard survived",
                String::from_utf8_lossy(key)
            );
        } else {
            assert!(after.route(key) < 4, "a surviving key routes in range");
        }
    }
    // ...and all of its keys do move (shard 4 no longer exists).
    let orphaned = keys.iter().filter(|k| before.route(k) == 4).count();
    let moved = keys.iter().filter(|k| before.route(k) != after.route(k)).count();
    assert_eq!(moved, orphaned, "exactly the departed shard's keys remap");
    assert!(orphaned > 0, "the corpus exercises the departed shard");
}

#[test]
fn failover_order_is_stable_and_starts_at_the_primary() {
    let ring = Ring::new(4);
    for key in corpus().iter().take(200) {
        let order = ring.successors(key);
        assert_eq!(order[0], ring.route(key));
        assert_eq!(order.len(), 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "each shard appears exactly once");
        assert_eq!(order, ring.successors(key), "stable across calls");
    }
}
