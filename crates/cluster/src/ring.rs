//! The consistent-hash ring the coordinator routes run requests with.
//!
//! Each shard contributes [`VNODES`] pseudo-random points on a `u64`
//! ring; a key routes to the shard owning the first point at or after
//! the key's own hash (wrapping). Two properties matter here:
//!
//! * **Stability under membership change.** Adding or removing one
//!   shard moves only the keys in the arcs its points own — about
//!   `1/N` of the key space — so a shard death does not reshuffle the
//!   whole cluster's coalescing and warm-prep locality, only the dead
//!   shard's share.
//! * **Spread.** With enough virtual nodes per shard the arc lengths
//!   even out, so shards receive comparable key shares without any
//!   central balancing state.
//!
//! Everything is a pure function of the shard count and the key bytes:
//! no RNG, no clock — the same request routes to the same shard in
//! every process, which is what keeps cross-client coalescing working
//! behind the coordinator.

use mg_isa::wire::fnv1a;

/// Virtual nodes (ring points) per shard. 128 keeps the worst observed
/// shard share within a few tens of percent of ideal while the ring
/// stays small enough to rebuild on every membership change.
pub const VNODES: usize = 128;

/// One xorshift64* mixing step, applied on top of FNV-1a so that the
/// short, similar byte strings of ring points (`shard:replica`) and
/// request keys land uniformly on the ring.
fn mix(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Ring position of a byte-string key.
fn position(key: &[u8]) -> u64 {
    mix(fnv1a(key))
}

/// A consistent-hash ring over shards `0..n` (see the [module
/// docs](self)).
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// A ring over `shards` shards (ids `0..shards`), [`VNODES`] points
    /// each.
    ///
    /// # Panics
    ///
    /// Panics on `shards == 0` — an empty ring can route nothing.
    pub fn new(shards: usize) -> Ring {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for replica in 0..VNODES {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(shard as u64).to_le_bytes());
                key[8..].copy_from_slice(&(replica as u64).to_le_bytes());
                points.push((position(&key), shard));
            }
        }
        // Ties (two shards hashing to one point) resolve by shard id so
        // the ring is identical regardless of insertion order.
        points.sort_unstable();
        Ring { points, shards }
    }

    /// The shard count the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the
    /// key's position, wrapping past the top.
    pub fn route(&self, key: &[u8]) -> usize {
        self.successors(key)[0]
    }

    /// Every shard in ring order starting from the owner of `key`, each
    /// listed once. The routing path walks this list: the first entry is
    /// the primary, the rest are the successors a dead or draining
    /// primary fails over to.
    pub fn successors(&self, key: &[u8]) -> Vec<usize> {
        let pos = position(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        let mut order = Vec::with_capacity(self.shards);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = Ring::new(3);
        for i in 0..100 {
            let key = format!("key-{i}");
            let shard = ring.route(key.as_bytes());
            assert!(shard < 3);
            assert_eq!(shard, Ring::new(3).route(key.as_bytes()), "stable across builds");
        }
    }

    #[test]
    fn successors_cover_every_shard_once() {
        let ring = Ring::new(5);
        let mut order = ring.successors(b"some-key");
        assert_eq!(order[0], ring.route(b"some-key"));
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
