//! The shard coordinator: N in-process mg-serve shards behind one
//! routing listener.
//!
//! A [`Cluster`] owns a front TCP listener plus `N` shard servers, each
//! built by an injected [`ShardFactory`] (so this crate knows nothing
//! about experiments — `mg cluster` wires in registry-backed servers,
//! tests wire in stubs). The coordinator speaks the ordinary mg-serve
//! wire protocol on the front socket:
//!
//! * `Ping` and `Stats` are answered locally (`Stats` aggregates every
//!   shard's counters under a `shard<i>.` prefix, then appends the
//!   cluster's own `routed` / `reroutes` / `shard_deaths` / `steals`).
//! * `Run` requests are routed by **prep key** — the subset of
//!   [`RunRequest`] fields that determine preparation work (experiment,
//!   input, quick) — over a consistent-hash [`Ring`], so equal requests
//!   keep coalescing on one shard and near-equal ones share its warm
//!   preps. The connection is then proxied frame-by-frame: the
//!   coordinator decodes each shard response, counts the non-terminal
//!   frames it has already forwarded, and re-encodes for the client's
//!   negotiated protocol dialect.
//! * `Shutdown` drains (or abandons) every shard, joins them, and stops
//!   the coordinator.
//!
//! **Failover.** When a shard connection dies mid-stream — most often
//! because the deterministic `cluster.shard.panic` fault point hard-
//! killed the shard — the coordinator reroutes the request to the ring
//! successor and replays it there, skipping as many non-terminal frames
//! as it already forwarded, so the client sees each progress frame once
//! and exactly one terminal frame per connection.
//!
//! **Work stealing.** Every shard's idle workers are wired (via
//! [`Server::set_steal_source`]) to scan the other shards' queues,
//! most-loaded first, and execute a stolen batch in place with the
//! owning shard's runner and counters — capacity amplification across
//! shards, in the same spirit as the paper's amplification within a
//! core.

use crate::ring::Ring;
use mg_fault::{points, FaultPlan};
use mg_isa::wire::{read_frame, write_frame};
use mg_serve::{
    read_hello, Client, Request, Response, RunRequest, Server, StolenBatch,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// Builds one shard server. Called with the shard index at cluster
/// start and again on [`ClusterController::restart_shard`]; each call
/// must return a freshly bound TCP [`Server`] (typically on
/// `127.0.0.1:0` with a shard-private cache root in front of a shared
/// read-through root).
pub type ShardFactory = Arc<dyn Fn(usize) -> std::io::Result<Server> + Send + Sync>;

/// Cluster tuning knobs.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Shard count (ring members).
    pub shards: usize,
    /// Per-connection socket I/O timeout on the front listener.
    pub client_io_timeout: Duration,
    /// Read bound on coordinator→shard proxy connections; must exceed
    /// the longest experiment run, or the coordinator misreads a slow
    /// run as a dead shard.
    pub shard_io_timeout: Duration,
    /// Deterministic fault schedule: the routing path consults
    /// `cluster.shard.panic` once per routed run and, when it fires,
    /// hard-kills the target shard before routing around it.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 3,
            client_io_timeout: Duration::from_secs(30),
            shard_io_timeout: Duration::from_secs(600),
            faults: None,
        }
    }
}

/// One shard's live state. `alive` gates routing only: a draining or
/// dead shard keeps its handle (stats stay readable) and its join
/// handle (the next restart or the cluster shutdown reaps it).
struct ShardSlot {
    addr: Mutex<Option<SocketAddr>>,
    handle: Mutex<Option<mg_serve::ShardHandle>>,
    join: Mutex<Option<std::thread::JoinHandle<std::io::Result<()>>>>,
    alive: AtomicBool,
}

struct Inner {
    factory: ShardFactory,
    cfg: ClusterConfig,
    ring: Ring,
    shards: Vec<ShardSlot>,
    /// Set by a front `Shutdown`; the accept loop exits and tears the
    /// shards down.
    stop: AtomicBool,
    /// Whether the teardown drains shard queues (`Shutdown { drain }`).
    drain_on_stop: AtomicBool,
    /// Run requests accepted and routed (before any reroutes).
    routed: AtomicU64,
    /// Routed runs served off their primary shard: the ring owner was
    /// dead (or died mid-stream) and the run fell over to a successor.
    /// Counted once per run, however many successors it walked.
    reroutes: AtomicU64,
    /// Shards hard-killed (fault injection or explicit kill).
    shard_deaths: AtomicU64,
}

impl Inner {
    fn slot(&self, shard: usize) -> &ShardSlot {
        &self.shards[shard]
    }

    /// Aggregated stats: cluster counters first, then every shard's own
    /// pairs under a `shard<i>.` prefix plus its liveness bit.
    fn stats_pairs(&self) -> Vec<(String, u64)> {
        let mut pairs = vec![
            ("shards".to_string(), self.shards.len() as u64),
            ("routed".to_string(), self.routed.load(Ordering::Relaxed)),
            ("reroutes".to_string(), self.reroutes.load(Ordering::Relaxed)),
            ("shard_deaths".to_string(), self.shard_deaths.load(Ordering::Relaxed)),
        ];
        let mut steals = 0;
        for (i, slot) in self.shards.iter().enumerate() {
            pairs.push((format!("shard{i}.alive"), slot.alive.load(Ordering::SeqCst) as u64));
            let handle = slot.handle.lock().unwrap().clone();
            if let Some(handle) = handle {
                for (name, value) in handle.stats_pairs() {
                    if name == "steals" {
                        steals += value;
                    }
                    pairs.push((format!("shard{i}.{name}"), value));
                }
            }
        }
        pairs.push(("steals".to_string(), steals));
        pairs
    }

    /// Hard-kills `shard` (non-draining shutdown): queued clients get a
    /// terminal `Error` from the shard itself — answered, never hung —
    /// and their retries reroute to the ring successor. Returns whether
    /// this call performed the kill.
    fn kill_shard(&self, shard: usize) -> bool {
        let slot = self.slot(shard);
        if !slot.alive.swap(false, Ordering::SeqCst) {
            return false;
        }
        self.shard_deaths.fetch_add(1, Ordering::Relaxed);
        let addr = *slot.addr.lock().unwrap();
        if let Some(addr) = addr {
            let _ = Client::tcp(addr.to_string())
                .request(&Request::Shutdown { drain: false }, |_| {});
        }
        // The join handle is deliberately left for restart/teardown:
        // the routing path must not block on the shard's exit.
        true
    }
}

/// (Re)builds shard `shard` from the factory, wires its idle workers to
/// steal from the other shards, and spawns its serve loop.
fn start_shard(inner: &Arc<Inner>, shard: usize) -> std::io::Result<()> {
    let server = (inner.factory)(shard)?;
    let addr = server.local_addr().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "shard servers must bind TCP")
    })?;
    let weak: Weak<Inner> = Arc::downgrade(inner);
    server.set_steal_source(Arc::new(move || -> Option<StolenBatch> {
        let inner = weak.upgrade()?;
        // Most-loaded first; steal only from live peers — a draining
        // shard finishes its own queue, and a dead one was already
        // emptied by its non-draining shutdown.
        let mut best: Option<(usize, mg_serve::ShardHandle)> = None;
        for (j, slot) in inner.shards.iter().enumerate() {
            if j == shard || !slot.alive.load(Ordering::SeqCst) {
                continue;
            }
            let handle = slot.handle.lock().unwrap().clone();
            if let Some(handle) = handle {
                let depth = handle.queue_depth();
                if depth > 0 && best.as_ref().is_none_or(|(d, _)| depth > *d) {
                    best = Some((depth, handle));
                }
            }
        }
        best.and_then(|(_, handle)| handle.steal())
    }));
    let slot = inner.slot(shard);
    *slot.addr.lock().unwrap() = Some(addr);
    *slot.handle.lock().unwrap() = Some(server.shard_handle());
    slot.alive.store(true, Ordering::SeqCst);
    *slot.join.lock().unwrap() = Some(server.spawn());
    Ok(())
}

/// The routing key: the [`RunRequest`] fields that determine
/// *preparation* work. Requests differing only in output format or
/// simulation knobs still share a shard — and therefore its warm preps
/// and cache root — while fully equal requests coalesce there.
/// (Public so load generators and tests can predict placement with
/// `Ring::route(&route_key(req))`.)
pub fn route_key(req: &RunRequest) -> Vec<u8> {
    let mut key = Vec::with_capacity(req.experiment.len() + req.input.len() + 4);
    key.extend_from_slice(req.experiment.as_bytes());
    key.push(0);
    key.extend_from_slice(req.input.as_bytes());
    key.push(0);
    key.push(match req.quick {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    key
}

/// A bound (but not yet serving) shard cluster. See the [module
/// docs](self).
pub struct Cluster {
    listener: TcpListener,
    inner: Arc<Inner>,
}

/// An in-process handle on a running (or bound) [`Cluster`] for
/// lifecycle operations and stats — what `mg loadgen --kill-shard` and
/// the resilience tests drive without opening sockets.
#[derive(Clone)]
pub struct ClusterController {
    inner: Arc<Inner>,
}

impl ClusterController {
    /// Shard count.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Whether `shard` currently accepts routed work.
    pub fn alive(&self, shard: usize) -> bool {
        self.inner.slot(shard).alive.load(Ordering::SeqCst)
    }

    /// The aggregated cluster stats, identical to a front-socket
    /// `Stats` request.
    pub fn stats_pairs(&self) -> Vec<(String, u64)> {
        self.inner.stats_pairs()
    }

    /// One aggregated counter by name (convenience over
    /// [`ClusterController::stats_pairs`]).
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.inner.stats_pairs().into_iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Hard-kills `shard` (see the module docs failover contract).
    /// Returns `false` when the shard was already down.
    pub fn kill_shard(&self, shard: usize) -> bool {
        self.inner.kill_shard(shard)
    }

    /// Gracefully drains `shard`: new work routes around it immediately,
    /// its queued batches finish under the shard's drain deadline, and
    /// the call returns once its serve loop has exited. Nothing accepted
    /// is dropped.
    ///
    /// # Errors
    ///
    /// The shard thread's exit error, if its serve loop failed.
    pub fn drain_shard(&self, shard: usize) -> std::io::Result<()> {
        let slot = self.inner.slot(shard);
        slot.alive.store(false, Ordering::SeqCst);
        let addr = *slot.addr.lock().unwrap();
        if let Some(addr) = addr {
            let _ = Client::tcp(addr.to_string())
                .request(&Request::Shutdown { drain: true }, |_| {});
        }
        let join = slot.join.lock().unwrap().take();
        match join {
            Some(join) => join
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("shard serve thread panicked"))),
            None => Ok(()),
        }
    }

    /// Restarts a killed or drained shard via the factory; it rejoins
    /// routing at its old ring position, so roughly its old key share
    /// comes back to it.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` when the shard is still alive, plus any factory
    /// error.
    pub fn restart_shard(&self, shard: usize) -> std::io::Result<()> {
        let slot = self.inner.slot(shard);
        if slot.alive.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("shard {shard} is still running"),
            ));
        }
        // Reap the previous incarnation first (kill_shard leaves the
        // join handle in place so the routing path never blocks).
        let join = slot.join.lock().unwrap().take();
        if let Some(join) = join {
            let _ = join.join();
        }
        start_shard(&self.inner, shard)
    }
}

impl Cluster {
    /// Binds the front listener on `addr` and starts every shard via
    /// `factory` (steal sources wired, serve loops spawned). The
    /// coordinator itself starts accepting on [`Cluster::serve`].
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the front listener or from the
    /// factory, plus `InvalidInput` for a factory returning a
    /// non-TCP server.
    pub fn bind(
        addr: impl ToSocketAddrs,
        factory: ShardFactory,
        cfg: ClusterConfig,
    ) -> std::io::Result<Cluster> {
        let listener = TcpListener::bind(addr)?;
        let shards = cfg.shards.max(1);
        let inner = Arc::new(Inner {
            factory,
            ring: Ring::new(shards),
            cfg,
            shards: (0..shards)
                .map(|_| ShardSlot {
                    addr: Mutex::new(None),
                    handle: Mutex::new(None),
                    join: Mutex::new(None),
                    alive: AtomicBool::new(false),
                })
                .collect(),
            stop: AtomicBool::new(false),
            drain_on_stop: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            shard_deaths: AtomicU64::new(0),
        });
        for shard in 0..shards {
            start_shard(&inner, shard)?;
        }
        Ok(Cluster { listener, inner })
    }

    /// The front listener's address (use with port `0` to discover the
    /// assigned port).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.local_addr().ok()
    }

    /// A lifecycle/stats handle, usable before and while the cluster
    /// serves.
    pub fn controller(&self) -> ClusterController {
        ClusterController { inner: Arc::clone(&self.inner) }
    }

    /// Runs the coordinator accept loop on the calling thread until a
    /// front `Shutdown` arrives, then tears the shards down (draining
    /// them for `Shutdown { drain: true }`) and returns.
    ///
    /// # Errors
    ///
    /// The first shard serve-loop error observed during teardown, if
    /// any (per-connection proxy errors are handled in place).
    pub fn serve(self) -> std::io::Result<()> {
        let Cluster { listener, inner } = self;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let conn = match listener.accept() {
                Ok((conn, _)) => conn,
                Err(_) if inner.stop.load(Ordering::SeqCst) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            };
            if inner.stop.load(Ordering::SeqCst) {
                break; // the shutdown wake-up connection
            }
            let _ = conn.set_read_timeout(Some(inner.cfg.client_io_timeout));
            let _ = conn.set_write_timeout(Some(inner.cfg.client_io_timeout));
            handlers.retain(|h| !h.is_finished());
            let inner = Arc::clone(&inner);
            handlers.push(std::thread::spawn(move || handle_connection(conn, &inner)));
        }
        for h in handlers {
            let _ = h.join();
        }
        // Tear down: stop routing everywhere, then shut every live
        // shard down (all signalled before any join, so drains overlap).
        let drain = inner.drain_on_stop.load(Ordering::SeqCst);
        for slot in &inner.shards {
            if slot.alive.swap(false, Ordering::SeqCst) {
                let addr = *slot.addr.lock().unwrap();
                if let Some(addr) = addr {
                    let _ = Client::tcp(addr.to_string())
                        .request(&Request::Shutdown { drain }, |_| {});
                }
            }
        }
        let mut first_err = None;
        for slot in &inner.shards {
            let join = slot.join.lock().unwrap().take();
            if let Some(join) = join {
                let result = join.join().unwrap_or_else(|_| {
                    Err(std::io::Error::other("shard serve thread panicked"))
                });
                if let (Err(e), None) = (result, &first_err) {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Spawns [`Cluster::serve`] on a background thread.
    pub fn spawn(self) -> std::thread::JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.serve())
    }
}

/// Best-effort single-frame reply in the client's dialect.
fn reply(stream: &mut TcpStream, resp: &Response, version: u32) {
    let _ = write_frame(stream, resp.for_version(version).as_ref());
    let _ = std::io::Write::flush(stream);
}

fn handle_connection(mut conn: TcpStream, inner: &Arc<Inner>) {
    let version = match read_hello(&mut conn) {
        Ok(v) => v,
        Err(_) => return, // not a protocol client; nothing to say
    };
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        reply(
            &mut conn,
            &Response::Error {
                message: format!(
                    "protocol version mismatch: client {version}, cluster speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                ),
            },
            PROTOCOL_VERSION,
        );
        return;
    }
    let request = match read_frame::<Request>(&mut conn) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            reply(
                &mut conn,
                &Response::Error { message: format!("bad request frame: {e}") },
                version,
            );
            return;
        }
        Err(_) => return,
    };
    match request {
        Request::Ping => {
            reply(&mut conn, &Response::Pong { protocol: PROTOCOL_VERSION }, version);
        }
        Request::Stats => {
            reply(&mut conn, &Response::Stats { pairs: inner.stats_pairs() }, version);
        }
        Request::Shutdown { drain } => {
            reply(
                &mut conn,
                &Response::Done { status: 0, payload: "shutting down".into() },
                version,
            );
            inner.drain_on_stop.store(drain, Ordering::SeqCst);
            inner.stop.store(true, Ordering::SeqCst);
            // Wake the blocked accept so the loop observes the flag.
            if let Ok(addr) = conn.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
        Request::Run(req) => proxy_run(conn, inner, req, version),
    }
}

/// Outcome of relaying one request to one shard.
enum Relay {
    /// Terminal frame delivered to the client.
    Done,
    /// The client side failed; nothing left to deliver anywhere.
    ClientGone,
    /// The shard side failed before a terminal frame; try a successor.
    ShardFailed,
}

fn proxy_run(mut conn: TcpStream, inner: &Arc<Inner>, req: RunRequest, version: u32) {
    inner.routed.fetch_add(1, Ordering::Relaxed);
    let order = inner.ring.successors(&route_key(&req));
    // The shard-death injection point: fires at most once per routed
    // run, killing the shard the ring is about to pick — the reroute
    // path below must absorb it.
    if let Some(plan) = &inner.cfg.faults {
        if plan.fires(points::SHARD_PANIC) {
            if let Some(&target) =
                order.iter().find(|&&s| inner.slot(s).alive.load(Ordering::SeqCst))
            {
                inner.kill_shard(target);
            }
        }
    }
    // Non-terminal frames already forwarded to the client; a failover
    // replays the request on the successor and skips this many, so the
    // client's stream stays exactly-once per frame position.
    let mut forwarded = 0usize;
    let mut attempts = 0usize;
    let mut rerouted = false;
    while attempts < order.len() {
        let Some(&shard) = order.iter().find(|&&s| inner.slot(s).alive.load(Ordering::SeqCst))
        else {
            break;
        };
        // A run lands off its ring owner exactly when the owner is dead
        // or already failed this run mid-stream; count that once per
        // run so the counter is exact under tests and load generators.
        if shard != order[0] && !rerouted {
            rerouted = true;
            inner.reroutes.fetch_add(1, Ordering::Relaxed);
        }
        match relay(&mut conn, inner, shard, &req, version, &mut forwarded) {
            Relay::Done | Relay::ClientGone => return,
            Relay::ShardFailed => {
                attempts += 1;
                // A shard whose transport failed mid-stream is gone (or
                // wedged); stop routing to it. Re-entering the loop
                // picks the next live successor.
                inner.slot(shard).alive.store(false, Ordering::SeqCst);
            }
        }
    }
    reply(
        &mut conn,
        &Response::Error { message: "no live shard could complete the request".into() },
        version,
    );
}

fn relay(
    client: &mut TcpStream,
    inner: &Arc<Inner>,
    shard: usize,
    req: &RunRequest,
    version: u32,
    forwarded: &mut usize,
) -> Relay {
    let Some(addr) = *inner.slot(shard).addr.lock().unwrap() else {
        return Relay::ShardFailed;
    };
    let mut upstream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return Relay::ShardFailed,
    };
    let _ = upstream.set_read_timeout(Some(inner.cfg.shard_io_timeout));
    let _ = upstream.set_write_timeout(Some(inner.cfg.shard_io_timeout));
    // The coordinator speaks the *current* protocol to shards and
    // re-encodes each frame in the client's dialect on the way out.
    if mg_serve::send_hello(&mut upstream).is_err() {
        return Relay::ShardFailed;
    }
    if write_frame(&mut upstream, &Request::Run(req.clone())).is_err() {
        return Relay::ShardFailed;
    }
    let mut skip = *forwarded;
    loop {
        let resp = match read_frame::<Response>(&mut upstream) {
            Ok(r) => r,
            Err(_) => return Relay::ShardFailed,
        };
        let terminal = resp.is_terminal();
        if !terminal && skip > 0 {
            skip -= 1; // replayed progress the client already has
            continue;
        }
        if write_frame(client, resp.for_version(version).as_ref())
            .and_then(|()| std::io::Write::flush(client))
            .is_err()
        {
            return Relay::ClientGone;
        }
        if terminal {
            return Relay::Done;
        }
        *forwarded += 1;
    }
}
