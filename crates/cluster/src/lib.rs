//! Sharded experiment serving: N mg-serve shards behind one
//! consistent-hash coordinator.
//!
//! `mg serve` (the [`mg_serve`] crate) is one process: one bounded
//! queue, one worker pool, one cache root. This crate scales that
//! design out the same way the paper's mini-graphs scale a pipeline —
//! by amplifying capacity without changing the interface:
//!
//! * **[`Ring`]** — the consistent-hash ring (virtual nodes) that maps
//!   a run request's prep key to a shard, keeping equal requests
//!   coalescing on one shard and membership changes cheap (about `1/N`
//!   of keys move when a shard joins or leaves).
//! * **[`Cluster`]** — the coordinator: spawns the shards from an
//!   injected [`ShardFactory`], proxies routed `Run` connections
//!   frame-by-frame with failover to ring successors, aggregates
//!   `Stats`, wires every shard's idle workers to steal from the
//!   others' queues, and drains the whole fleet on `Shutdown`.
//! * **[`ClusterController`]** — in-process lifecycle: kill, drain,
//!   and restart individual shards; read aggregated counters.
//!
//! The front socket speaks the ordinary mg-serve wire protocol, so
//! `mg client`, `mg loadgen`, and every existing tool work unchanged
//! against a cluster — pointing at the coordinator instead of a single
//! daemon is the only difference clients see.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod ring;

pub use cluster::{route_key, Cluster, ClusterConfig, ClusterController, ShardFactory};
pub use ring::{Ring, VNODES};
