//! Concurrent access to one persistent artifact cache: the
//! temp-file+rename contract `mg serve` workers rely on.
//!
//! The contract under test (see `prep_cache`'s module docs): once an
//! artifact has been stored under a key, **every** subsequent load of
//! that key succeeds and returns bit-identical bytes — concurrent
//! re-stores (which go to a unique temp file and atomically rename into
//! place) never expose a torn, partial, or mixed file to readers. This
//! holds across threads within one process and across separate
//! processes sharing one `target/mg-cache` directory (the two-process
//! half spawns this same test binary as a child with a filter for the
//! [`cache_process_helper`] test).

use mg_core::{Policy, Selection};
use mg_harness::PrepCache;
use mg_isa::wire::to_bytes;
use mg_isa::{reg, Asm};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};

/// Fingerprint used by every test in this file (arbitrary; isolation
/// between tests comes from distinct cache roots).
const FP: u64 = 0xfeed_beef;

const LOADS: usize = 300;

fn cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mg-cache-concurrency-{tag}-{}", std::process::id()))
}

/// A small deterministic selection — both processes recompute the same
/// value, mirroring how every cache writer computes an identical
/// artifact for a given key.
fn sample_selection() -> Selection {
    let mut a = Asm::new();
    a.li(reg(18), 0);
    a.li(reg(5), 40);
    a.label("top");
    a.addl(reg(18), 2, reg(18));
    a.cmplt(reg(18), reg(5), reg(7));
    a.bne(reg(7), "top");
    a.halt();
    let prog = a.finish().unwrap();
    mg_core::extract(&prog, &mut mg_isa::Memory::new(), &Policy::default(), 100_000)
        .unwrap()
        .selection
}

/// Loads the key `LOADS` times, requiring every load to be a complete,
/// bit-identical hit (the store already happened).
fn assert_loads_are_complete_and_identical(cache: &PrepCache, expected: &[u8]) {
    let policy = Policy::default();
    for i in 0..LOADS {
        let got = cache
            .load_selection(FP, &policy)
            .unwrap_or_else(|| panic!("load {i}: stored artifact invisible or torn"));
        assert_eq!(to_bytes(&got), expected, "load {i}: bytes differ");
    }
}

#[test]
fn concurrent_threads_share_the_cache_without_torn_reads() {
    let dir = cache_dir("threads");
    let cache = PrepCache::new(&dir);
    cache.clear().unwrap();
    let sel = sample_selection();
    let expected = to_bytes(&sel);
    let policy = Policy::default();
    cache.store_selection(FP, &policy, &sel);

    // One thread re-stores the same key continuously (renaming over the
    // live file); two reader threads must always see a complete,
    // bit-identical artifact.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let writer_cache = PrepCache::new(&dir);
            while !stop.load(Ordering::Relaxed) {
                writer_cache.store_selection(FP, &policy, &sel);
            }
        });
        for _ in 0..2 {
            let expected = expected.clone();
            let dir = &dir;
            scope.spawn(move || {
                let reader_cache = PrepCache::new(dir);
                assert_loads_are_complete_and_identical(&reader_cache, &expected);
            });
        }
        // Readers finish their fixed load count; then stop the writer.
        // (Scope joins the readers implicitly; order does not matter.)
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
    cache.clear().unwrap();
}

/// Child-process half of
/// [`concurrent_processes_share_the_cache_without_torn_reads`]: no-op
/// unless spawned with `MG_CACHE_HELPER_DIR` set.
#[test]
fn cache_process_helper() {
    let Ok(dir) = std::env::var("MG_CACHE_HELPER_DIR") else {
        return;
    };
    let cache = PrepCache::new(dir);
    let expected = to_bytes(&sample_selection());
    assert_loads_are_complete_and_identical(&cache, &expected);
}

#[test]
fn concurrent_processes_share_the_cache_without_torn_reads() {
    let dir = cache_dir("procs");
    let cache = PrepCache::new(&dir);
    cache.clear().unwrap();
    let sel = sample_selection();
    let policy = Policy::default();
    cache.store_selection(FP, &policy, &sel);

    // The child (this same test binary, filtered to the helper test)
    // loads the key repeatedly while this process re-stores it.
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["cache_process_helper", "--exact", "--nocapture"])
        .env("MG_CACHE_HELPER_DIR", &dir)
        .spawn()
        .expect("spawn child process");

    // Keep renaming over the live file until the child exits, then reap
    // it unconditionally (`wait` after `try_wait`'s `Some` is a no-op
    // status re-read, so no zombie survives an assertion failure above).
    while child.try_wait().expect("child status").is_none() {
        for _ in 0..20 {
            cache.store_selection(FP, &policy, &sel);
        }
    }
    let done = child.wait().expect("child status");
    assert!(
        done.success(),
        "child process saw a torn or missing artifact (its assertions failed)"
    );
    // And this process's own reads stayed intact throughout.
    assert_loads_are_complete_and_identical(&cache, &to_bytes(&sel));
    cache.clear().unwrap();
}
