//! Engine-level tests: parallel/sequential determinism, artifact-cache
//! coherence, quick-mode plumbing, and a smoke pass taking every
//! registered workload one stage past preparation.

use mg_core::{Policy, RewriteStyle};
use mg_harness::{Engine, Prep, Run};
use mg_uarch::SimConfig;
use mg_workloads::Input;

fn quick(mut cfg: SimConfig) -> SimConfig {
    cfg.max_ops = 15_000;
    cfg
}

fn spec_matrix() -> [Run; 3] {
    [
        Run::baseline(quick(SimConfig::baseline())),
        Run::mini_graph(
            Policy::integer(),
            RewriteStyle::NopPadded,
            quick(SimConfig::mg_integer()),
        )
        .label("int"),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::Compressed,
            quick(SimConfig::mg_integer_memory()),
        )
        .label("intmem"),
    ]
}

const WORKLOADS: [&str; 5] = ["bitcount", "crc32", "rgba.conv", "adpcm.enc", "mcf.netw"];

/// The tentpole determinism contract: a parallel engine run produces
/// bit-identical `SimStats` to a fully sequential run over the same
/// (workload × config) matrix.
#[test]
fn parallel_matrix_matches_sequential_exactly() {
    let runs = spec_matrix();
    let parallel = Engine::builder()
        .workloads(&WORKLOADS)
        .input(Input::tiny())
        .quick(false)
        .threads(4)
        .build()
        .run(&runs);
    let sequential = Engine::builder()
        .workloads(&WORKLOADS)
        .input(Input::tiny())
        .quick(false)
        .threads(1)
        .build()
        .run(&runs);

    assert_eq!(parallel.rows.len(), sequential.rows.len());
    for (p, s) in parallel.rows.iter().zip(&sequential.rows) {
        assert_eq!(p.prep.name, s.prep.name, "row order is deterministic");
        for (label, (ps, ss)) in parallel.labels.iter().zip(p.stats.iter().zip(&s.stats)) {
            assert_eq!(
                ps, ss,
                "{}/{label}: parallel and sequential stats diverge",
                p.prep.name
            );
        }
    }
}

/// Repeated runs on one engine hit the artifact caches and still agree.
#[test]
fn cached_rerun_is_identical() {
    let runs = spec_matrix();
    let engine = Engine::builder()
        .workloads(&["crc32", "bitcount"])
        .input(Input::tiny())
        .quick(false)
        .threads(2)
        .build();
    let first = engine.run(&runs);
    let second = engine.run(&runs);
    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(a.stats, b.stats);
    }
}

/// Smoke test: every registered workload makes it one step past
/// `Prep::new` — a policy selection drawn from its candidate pool — and
/// the prep invariants hold.
#[test]
fn every_workload_preps_and_selects() {
    let engine = Engine::builder().input(Input::tiny()).quick(false).build();
    assert!(engine.preps().len() >= 24, "every registered workload is prepared");
    let checks = engine.map(|p: &Prep| {
        let sel = p.select(&Policy::integer_memory());
        (p.name.clone(), p.total_dyn, p.candidates.len(), sel.saved_slots())
    });
    for (name, total_dyn, candidates, saved) in checks {
        assert!(total_dyn > 0, "{name}: profile observed no instructions");
        assert!(candidates > 0, "{name}: no legal mini-graph candidates");
        assert!(saved <= total_dyn, "{name}: selection cannot save more than it covers");
    }
}

/// `Engine::map` preserves workload order regardless of thread count.
#[test]
fn map_results_are_in_workload_order() {
    let engine = Engine::builder()
        .workloads(&WORKLOADS)
        .input(Input::tiny())
        .quick(false)
        .threads(4)
        .build();
    let names = engine.map(|p| p.name.clone());
    assert_eq!(names, WORKLOADS.map(String::from).to_vec());
}

/// Quick mode caps simulated work through the engine's tuner.
#[test]
fn quick_mode_caps_ops() {
    let engine =
        Engine::builder().workloads(&["bitcount"]).input(Input::tiny()).quick(true).build();
    let tuned = engine.tune(SimConfig::baseline());
    assert_eq!(tuned.max_ops, mg_harness::QUICK_MAX_OPS);
    let matrix = engine.run(&[Run::baseline(SimConfig::baseline())]);
    assert!(matrix.rows[0].stats[0].ops <= mg_harness::QUICK_MAX_OPS);
}
