//! Cache-vs-fresh bit-identity: an engine running against a warm
//! persistent artifact cache must produce byte-for-byte the same
//! artifacts and simulation statistics as one computing everything from
//! scratch. This is the contract that lets `mg run <experiment>` promise
//! identical output with and without a warm cache.

use mg_core::{Policy, RewriteStyle};
use mg_harness::{Engine, PrepCache, Run};
use mg_isa::wire::to_bytes;
use mg_uarch::SimConfig;
use mg_workloads::Input;
use std::path::PathBuf;

fn cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mg-harness-cache-test-{tag}-{}", std::process::id()))
}

fn engine(dir: &PathBuf) -> Engine {
    Engine::builder()
        .workloads(&["crc32", "rgba.conv", "mcf.netw"])
        .input(Input::tiny())
        .quick(true)
        .cache_dir(dir)
        .build()
}

fn runs() -> Vec<Run> {
    vec![
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        )
        .label("intmem"),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::Compressed,
            SimConfig::mg_integer_memory(),
        )
        .label("compressed"),
    ]
}

#[test]
fn warm_cache_is_bit_identical_to_fresh() {
    let dir = cache_dir("bitident");
    let cache = PrepCache::new(&dir);
    cache.clear().unwrap();

    // Fresh (cache enabled but empty): everything computes and persists.
    let fresh_engine = engine(&dir);
    let fresh = fresh_engine.run(&runs());
    let stats = cache.stats();
    assert!(stats.selections > 0, "selections were persisted");
    assert!(stats.traces > 0, "baseline traces were persisted");
    assert!(stats.images > 0, "rewritten images were persisted");

    // Warm: a new engine (new process stand-in) over the same cache.
    let warm_engine = engine(&dir);
    let warm = warm_engine.run(&runs());
    assert_eq!(fresh.labels, warm.labels);
    for (f, w) in fresh.rows.iter().zip(&warm.rows) {
        assert_eq!(f.prep.name, w.prep.name);
        assert_eq!(f.stats, w.stats, "SimStats bit-identical for {}", f.prep.name);
    }

    // Artifact-level identity, not just stats: selections, traces, and
    // image programs/catalogs encode to the same bytes.
    let policy = Policy::integer_memory();
    for (f, w) in fresh_engine.preps().iter().zip(warm_engine.preps()) {
        assert_eq!(f.fingerprint(), w.fingerprint(), "fingerprints are stable");
        assert_eq!(
            to_bytes(&*f.select(&policy)),
            to_bytes(&*w.select(&policy)),
            "selection bytes for {}",
            f.name
        );
        assert_eq!(to_bytes(&*f.base_trace()), to_bytes(&*w.base_trace()));
        let fi = f.image(&policy, RewriteStyle::NopPadded);
        let wi = w.image(&policy, RewriteStyle::NopPadded);
        assert_eq!(fi.program.insts, wi.program.insts);
        assert_eq!(to_bytes(&fi.trace), to_bytes(&wi.trace));
        assert_eq!(to_bytes(&fi.catalog), to_bytes(&wi.catalog));
    }

    // And a cache-disabled engine agrees too.
    let nocache = Engine::builder()
        .workloads(&["crc32", "rgba.conv", "mcf.netw"])
        .input(Input::tiny())
        .quick(true)
        .build()
        .run(&runs());
    for (f, n) in fresh.rows.iter().zip(&nocache.rows) {
        assert_eq!(f.stats, n.stats, "cache on/off identical for {}", f.prep.name);
    }

    cache.clear().unwrap();
}

#[test]
fn quick_and_full_budgets_do_not_share_trace_entries() {
    let dir = cache_dir("budget");
    let cache = PrepCache::new(&dir);
    cache.clear().unwrap();

    // Quick engine records 30k-op trace prefixes into the cache.
    let quick = Engine::builder()
        .workloads(&["crc32"])
        .input(Input::tiny())
        .quick(true)
        .cache_dir(&dir)
        .build();
    let quick_len = quick.preps()[0].base_trace().len();

    // A full engine over the same cache must not pick up the prefix.
    let full = Engine::builder()
        .workloads(&["crc32"])
        .input(Input::tiny())
        .quick(false)
        .cache_dir(&dir)
        .build();
    let full_len = full.preps()[0].base_trace().len();
    assert!(
        full_len >= quick_len,
        "full trace ({full_len} ops) must cover the quick prefix ({quick_len} ops)"
    );

    cache.clear().unwrap();
}

#[test]
fn mg_no_cache_env_is_a_kill_switch() {
    // Can't set the env var here (tests share a process), but the builder
    // must at minimum produce identical results with the cache disabled.
    let plain = Engine::builder()
        .workloads(&["bitcount"])
        .input(Input::tiny())
        .quick(true)
        .cache(false)
        .build()
        .run(&runs());
    assert!(plain.rows[0].stats[0].cycles > 0);
}
