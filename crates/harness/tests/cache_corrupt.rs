//! Corrupt-cache robustness: a damaged `target/mg-cache`-style artifact
//! must degrade to a **cache miss** — recompute and overwrite — never to
//! a panic or a wrong artifact.
//!
//! The cache's contract (`prep_cache` module docs) is that any read
//! error is a miss. This test enforces it the hostile way: it populates
//! a real cache from a real workload prep, then fuzz-truncates every
//! artifact file at a sweep of lengths (and bit-flips header and payload
//! bytes) and asserts the decode paths (`isa::wire` up through
//! `PrepCache::load_*`) refuse quietly. A final fresh prep over the
//! mangled cache must recompute bit-identical artifacts.

use mg_core::{Policy, RewriteStyle};
use mg_harness::{Prep, PrepCache};
use mg_isa::wire;
use mg_workloads::Input;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const BUDGET: u64 = 2_000;

fn cache_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else {
                out.push(path);
            }
        }
    }
    walk(root, &mut files);
    files.sort();
    files
}

/// Builds a cached prep of `crc32` on the tiny input and fills the
/// cache with all three artifact kinds.
fn populated_prep(cache: &Arc<PrepCache>) -> Prep {
    let w = mg_workloads::by_name("crc32").expect("registered");
    let prep = Prep::new(&w, &Input::tiny())
        .with_trace_budget(BUDGET)
        .with_cache(Some(Arc::clone(cache)));
    let policy = Policy::integer_memory();
    let _ = prep.select(&policy);
    let _ = prep.base_trace();
    let _ = prep.image(&policy, RewriteStyle::NopPadded);
    prep
}

#[test]
fn truncated_and_flipped_artifacts_degrade_to_misses_not_panics() {
    let root = std::env::temp_dir().join(format!("mg-cache-corrupt-{}", std::process::id()));
    let cache = Arc::new(PrepCache::new(&root));
    cache.clear().expect("fresh cache root");
    let policy = Policy::integer_memory();

    let prep = populated_prep(&cache);
    let fp = prep.fingerprint();

    // Golden copies for bit-identity after recomputation.
    let golden_sel = wire::to_bytes(&*prep.select(&policy));
    let golden_trace = wire::to_bytes(&*prep.base_trace());

    let files = cache_files(&root);
    assert!(files.len() >= 3, "selection + trace + image cached, got {files:?}");

    // All three artifact kinds load while the files are intact.
    assert!(cache.load_selection(fp, &policy).is_some());
    assert!(cache.load_trace(fp, BUDGET).is_some());
    assert!(cache.load_image(fp, &policy, RewriteStyle::NopPadded, BUDGET).is_some());

    let originals: Vec<Vec<u8>> =
        files.iter().map(|f| fs::read(f).expect("artifact readable")).collect();

    // Which loader a file feeds, by its `sel-`/`trace-`/`img-` name.
    // `probe` runs all three loaders (nothing may panic) and returns
    // whether the loader owning `file` found its artifact.
    let probe = |file: &Path| -> bool {
        let sel = cache.load_selection(fp, &policy).is_some();
        let trace = cache.load_trace(fp, BUDGET).is_some();
        let img = cache.load_image(fp, &policy, RewriteStyle::NopPadded, BUDGET).is_some();
        let name = file.file_name().unwrap().to_string_lossy().to_string();
        if name.starts_with("sel-") {
            sel
        } else if name.starts_with("trace-") {
            trace
        } else if name.starts_with("img-") {
            img
        } else {
            panic!("unexpected cache file {name}");
        }
    };

    // --- fuzz-truncation sweep: every artifact, many cut points ---
    for (file, original) in files.iter().zip(&originals) {
        let n = original.len();
        for cut in [0, 1, 7, n / 4, n / 2, n.saturating_sub(1)] {
            fs::write(file, &original[..cut.min(n)]).unwrap();
            // No unwrap/panic anywhere down the decode path; the
            // truncated artifact is a miss (its siblings still load).
            assert!(!probe(file), "truncated {} at {cut} still decodes", file.display());
        }
        fs::write(file, original).unwrap();
        assert!(probe(file), "restoring {} restores the hit", file.display());
    }

    // --- header bit-flips: magic, kind tag, key-length prefix ---
    for (file, original) in files.iter().zip(&originals) {
        for pos in 0..13.min(original.len()) {
            let mut bytes = original.clone();
            bytes[pos] ^= 0xff;
            fs::write(file, &bytes).unwrap();
            // A mangled header (or key-length prefix) can never satisfy
            // the magic + stored-key verification.
            assert!(!probe(file), "flipped header byte {pos} of {} hits", file.display());
        }
        fs::write(file, original).unwrap();
    }

    // --- payload bit-flips: must not panic (hit-or-miss is fine) ---
    for (file, original) in files.iter().zip(&originals) {
        let n = original.len();
        for pos in [n / 3, n / 2, (2 * n) / 3, n - 1] {
            let mut bytes = original.clone();
            bytes[pos] ^= 0x55;
            fs::write(file, &bytes).unwrap();
            let _ = cache.load_selection(fp, &policy);
            let _ = cache.load_trace(fp, BUDGET);
            let _ = cache.load_image(fp, &policy, RewriteStyle::NopPadded, BUDGET);
        }
    }

    // --- leave everything mangled: a fresh prep must recompute the
    // identical artifacts straight through the misses ---
    for (file, original) in files.iter().zip(&originals) {
        let mut bytes = original.clone();
        let keep = bytes.len() / 3;
        bytes.truncate(keep);
        fs::write(file, &bytes).unwrap();
    }
    let fresh = populated_prep(&cache);
    assert_eq!(fresh.fingerprint(), fp, "same prep coordinates, same fingerprint");
    assert_eq!(
        wire::to_bytes(&*fresh.select(&policy)),
        golden_sel,
        "recomputed selection is bit-identical"
    );
    assert_eq!(
        wire::to_bytes(&*fresh.base_trace()),
        golden_trace,
        "recomputed trace is bit-identical"
    );
    // And the recomputation healed the cache: artifacts load again.
    assert!(cache.load_selection(fp, &policy).is_some(), "overwritten on recompute");
    cache.clear().unwrap();
}
