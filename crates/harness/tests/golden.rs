//! Golden-stats regression tests: full [`SimStats`] structs for fixed
//! (workload, policy, machine) cells, recorded before the event-wheel /
//! idle-skip / incremental-selection refactor landed.
//!
//! The simulator hot loop is performance-tuned under a **cycle-exactness
//! contract**: any rewrite of the scheduling machinery must reproduce
//! these statistics bit for bit. If a change legitimately alters timing
//! semantics (a *model* change, not an optimisation), re-record the
//! baselines in the same commit and say so in the commit message.
//!
//! Baselines were recorded with `threads = 1`, quick mode (30 000-op
//! cap), on the `reference` input; the engine's determinism contract
//! makes thread count irrelevant, and quick mode keeps the test fast.

use mg_core::{Policy, RewriteStyle};
use mg_harness::{Engine, Run};
use mg_uarch::{SimConfig, SimStats};

fn golden_engine() -> Engine {
    Engine::builder().workloads(&["crc32", "rgba.conv"]).threads(1).quick(true).build()
}

fn golden_runs() -> [Run; 3] {
    [
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(Policy::integer(), RewriteStyle::NopPadded, SimConfig::mg_integer())
            .label("int"),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        )
        .label("intmem"),
    ]
}

#[test]
fn golden_stats_are_bit_identical() {
    let matrix = golden_engine().run(&golden_runs());
    let expected: [(&str, [SimStats; 3]); 2] = [
        (
            "crc32",
            [
                SimStats {
                    cycles: 23518,
                    insts: 30000,
                    ops: 30000,
                    handles: 0,
                    handle_insts: 0,
                    branches: 2727,
                    mispredicts: 5,
                    il1_accesses: 16275,
                    il1_misses: 3,
                    dl1_accesses: 5452,
                    dl1_misses: 64,
                    l2_accesses: 67,
                    l2_misses: 17,
                    mg_replays: 0,
                    violations: 0,
                    stall_pregs: 0,
                    stall_rob: 10,
                    stall_iq: 23202,
                    stall_lsq: 0,
                    preg_occupancy_sum: 2466864,
                    iq_occupancy_sum: 1165375,
                    rob_occupancy_sum: 1880413,
                },
                SimStats {
                    cycles: 39567,
                    insts: 47129,
                    ops: 30000,
                    handles: 12848,
                    handle_insts: 29977,
                    branches: 4285,
                    mispredicts: 7,
                    il1_accesses: 29441,
                    il1_misses: 3,
                    dl1_accesses: 8564,
                    dl1_misses: 64,
                    l2_accesses: 67,
                    l2_misses: 17,
                    mg_replays: 0,
                    violations: 0,
                    stall_pregs: 0,
                    stall_rob: 0,
                    stall_iq: 38943,
                    stall_lsq: 216,
                    preg_occupancy_sum: 4744587,
                    iq_occupancy_sum: 1963638,
                    rob_occupancy_sum: 3478443,
                },
                SimStats {
                    cycles: 73620,
                    insts: 65963,
                    ops: 30000,
                    handles: 17984,
                    handle_insts: 53947,
                    branches: 5998,
                    mispredicts: 8,
                    il1_accesses: 17836,
                    il1_misses: 3,
                    dl1_accesses: 11986,
                    dl1_misses: 64,
                    l2_accesses: 67,
                    l2_misses: 17,
                    mg_replays: 64,
                    violations: 0,
                    stall_pregs: 0,
                    stall_rob: 0,
                    stall_iq: 5854,
                    stall_lsq: 67243,
                    preg_occupancy_sum: 8235693,
                    iq_occupancy_sum: 3508521,
                    rob_occupancy_sum: 5879853,
                },
            ],
        ),
        (
            "rgba.conv",
            [
                SimStats {
                    cycles: 10566,
                    insts: 30000,
                    ops: 30000,
                    handles: 0,
                    handle_insts: 0,
                    branches: 1364,
                    mispredicts: 4,
                    il1_accesses: 10710,
                    il1_misses: 4,
                    dl1_accesses: 2727,
                    dl1_misses: 256,
                    l2_accesses: 260,
                    l2_misses: 65,
                    mg_replays: 0,
                    violations: 0,
                    stall_pregs: 0,
                    stall_rob: 3208,
                    stall_iq: 6511,
                    stall_lsq: 0,
                    preg_occupancy_sum: 1330013,
                    iq_occupancy_sum: 416778,
                    rob_occupancy_sum: 1089615,
                },
                SimStats {
                    cycles: 11003,
                    insts: 41245,
                    ops: 30000,
                    handles: 7497,
                    handle_insts: 18742,
                    branches: 1875,
                    mispredicts: 4,
                    il1_accesses: 12486,
                    il1_misses: 4,
                    dl1_accesses: 3749,
                    dl1_misses: 256,
                    l2_accesses: 260,
                    l2_misses: 65,
                    mg_replays: 0,
                    violations: 0,
                    stall_pregs: 0,
                    stall_rob: 3178,
                    stall_iq: 6674,
                    stall_lsq: 0,
                    preg_occupancy_sum: 1414280,
                    iq_occupancy_sum: 436197,
                    rob_occupancy_sum: 1134188,
                },
                SimStats {
                    cycles: 11088,
                    insts: 43994,
                    ops: 30000,
                    handles: 7997,
                    handle_insts: 21991,
                    branches: 2000,
                    mispredicts: 4,
                    il1_accesses: 12563,
                    il1_misses: 4,
                    dl1_accesses: 3999,
                    dl1_misses: 256,
                    l2_accesses: 260,
                    l2_misses: 65,
                    mg_replays: 0,
                    violations: 0,
                    stall_pregs: 0,
                    stall_rob: 3086,
                    stall_iq: 6783,
                    stall_lsq: 0,
                    preg_occupancy_sum: 1420712,
                    iq_occupancy_sum: 436938,
                    rob_occupancy_sum: 1142232,
                },
            ],
        ),
    ];
    for (name, want) in &expected {
        let row = matrix.row(name).expect("workload present");
        for (li, (got, want)) in row.stats.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                got, want,
                "SimStats drifted for {name}/{} — the scheduling refactor must be cycle-exact",
                matrix.labels[li]
            );
        }
    }
}
