//! Scalar-vs-fused differential test: the fused sweep executor must
//! produce **bit-identical** `SimStats` to one-config-at-a-time scalar
//! execution, for every registered workload, on a sweep that exercises
//! the divergence machinery (different widths, register files, and
//! images diverge in time almost immediately).

use mg_core::{Policy, RewriteStyle};
use mg_harness::{Engine, Run};
use mg_uarch::SimConfig;
use mg_workloads::Input;

fn quick(mut cfg: SimConfig) -> SimConfig {
    cfg.max_ops = 10_000;
    cfg
}

/// A 4-config sweep per image group: a baseline anchor, a deliberate
/// duplicate of it (exercises replica dedup), a narrow front end, and a
/// small register file — plus two mini-graph cells so policy images run
/// through the fused path too.
fn sweep() -> Vec<Run> {
    [
        Run::baseline(quick(SimConfig::baseline())).label("base"),
        Run::baseline(quick(SimConfig::baseline())).label("base-dup"),
        Run::baseline(quick(SimConfig::baseline().with_front_width(4))).label("narrow"),
        Run::baseline(quick(SimConfig::baseline().with_phys_regs(96))).label("small-prf"),
        Run::mini_graph(
            Policy::integer(),
            RewriteStyle::NopPadded,
            quick(SimConfig::mg_integer()),
        )
        .label("int"),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::Compressed,
            quick(SimConfig::mg_integer_memory()),
        )
        .label("intmem"),
    ]
    .into()
}

/// Every registry workload × tiny input × the sweep above: fused and
/// scalar matrices must be bit-identical, cell for cell.
#[test]
fn fused_sweep_matches_scalar_on_every_workload() {
    let runs = sweep();
    let build = |fuse: bool| {
        Engine::builder().input(Input::tiny()).quick(false).fuse(fuse).build().run(&runs)
    };
    let fused = build(true);
    let scalar = build(false);

    assert_eq!(fused.labels, scalar.labels);
    assert!(fused.rows.len() >= 24, "every registered workload is covered");
    for (f, s) in fused.rows.iter().zip(&scalar.rows) {
        assert_eq!(f.prep.name, s.prep.name, "row order is deterministic");
        for (label, (fs, ss)) in fused.labels.iter().zip(f.stats.iter().zip(&s.stats)) {
            assert_eq!(fs, ss, "{}/{label}: fused and scalar SimStats diverge", f.prep.name);
        }
    }
}
