//! A shared, concurrency-safe pool of prepared workloads.
//!
//! A one-shot experiment process builds its [`Prep`]s, runs, and exits —
//! the in-process memo dies with it. A long-running service (`mg serve`)
//! instead keeps one **warm** prep per (workload, input, trace budget,
//! cache root) alive across every request it handles: the first request
//! pays for profiling, enumeration, and artifact computation; every later
//! request — from any client — reuses the same [`Prep`] and with it every
//! memoized selection, image, and trace.
//!
//! The pool guarantees **exactly-once preparation** under concurrency:
//! each key maps to a [`OnceLock`] slot, so when two engines race to
//! prepare the same workload, one does the work and the other blocks
//! until the prep is ready. The [`PrepPool::prepared`] / [`PrepPool::reused`]
//! counters make the guarantee observable — the serve tests and the
//! `serve-smoke` CI job assert "two concurrent clients, one prep" through
//! them.
//!
//! Pooling is keyed on the prep's *stable cache id*, never on closure
//! identity, so only registered workloads are pooled;
//! ad-hoc [`Source::Custom`](crate::engine::EngineBuilder::program)
//! programs bypass the pool (two different closures could share a name).

use crate::error::{panic_message, HarnessError};
use crate::prep::Prep;
use mg_workloads::Input;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a pooled prep's identity depends on. Two engines whose
/// preparation would produce bit-identical `Prep`s share an entry; any
/// difference — input, trace budget, cache root — separates them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// The workload's stable cache id (`<suite>/<name>@r<version>`).
    pub cache_id: String,
    /// Input seed.
    pub seed: u64,
    /// Input scale.
    pub scale: u32,
    /// Recorded-trace cap (quick engines lower it; see
    /// [`Prep::with_trace_budget`]).
    pub trace_budget: u64,
    /// Persistent artifact cache root, or `None` when the cache is off.
    pub cache_dir: Option<PathBuf>,
}

impl PoolKey {
    /// Builds a key from a prep's coordinates.
    pub fn new(
        cache_id: impl Into<String>,
        input: &Input,
        trace_budget: u64,
        cache_dir: Option<PathBuf>,
    ) -> PoolKey {
        PoolKey {
            cache_id: cache_id.into(),
            seed: input.seed,
            scale: input.scale,
            trace_budget,
            cache_dir,
        }
    }
}

/// A shared pool of warm [`Prep`]s (see the module docs).
///
/// Cheap to share: wrap in an [`Arc`] and hand a clone to every
/// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool).
#[derive(Default)]
pub struct PrepPool {
    slots: Mutex<HashMap<PoolKey, Arc<Slot>>>,
    prepared: AtomicU64,
    reused: AtomicU64,
}

/// One pool slot. `once` holds the warm prep; `init` serializes the
/// fallible preparation path, so concurrent first touches block on the
/// single preparation instead of duplicating it, while an `Err` (which
/// must not be cached) releases the lock and leaves the slot retryable.
#[derive(Default)]
struct Slot {
    once: OnceLock<Arc<Prep>>,
    init: Mutex<()>,
}

impl PrepPool {
    /// Creates an empty pool.
    pub fn new() -> PrepPool {
        PrepPool::default()
    }

    /// Returns the pooled prep for `key`, preparing it with `prepare` if
    /// (and only if) no other caller has. Concurrent callers with the
    /// same key block until the single preparation finishes and then
    /// share the resulting [`Arc`].
    pub fn get_or_prepare(&self, key: PoolKey, prepare: impl FnOnce() -> Prep) -> Arc<Prep> {
        // One initialization discipline for both paths (the slot's init
        // lock), so mixing the panicking and fallible entry points on a
        // key can never duplicate a preparation.
        self.try_get_or_prepare(key, || Ok(prepare())).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible, panic-containing [`PrepPool::get_or_prepare`] — the
    /// `mg_api` session path, where `prepare` may run an out-of-tree
    /// workload source.
    ///
    /// A `prepare` that returns `Err` leaves the slot **uninitialized**
    /// (errors are not cached: a transient failure — say, a source
    /// reading a file that appears later — may succeed on retry). A
    /// `prepare` that *panics* is caught here so it cannot unwind through
    /// the engine's worker scope, and likewise leaves the slot
    /// retryable; the panic is reported as [`HarnessError::Panicked`],
    /// the closest thing to a "poisoned" entry this pool has. The
    /// exactly-once guarantee matches [`PrepPool::get_or_prepare`]:
    /// concurrent callers with the same key block on the slot's init
    /// lock until the single successful preparation finishes.
    ///
    /// # Errors
    ///
    /// `prepare`'s own error, or [`HarnessError::Panicked`].
    pub fn try_get_or_prepare(
        &self,
        key: PoolKey,
        prepare: impl FnOnce() -> Result<Prep, HarnessError>,
    ) -> Result<Arc<Prep>, HarnessError> {
        let workload = key.cache_id.clone();
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            Arc::clone(slots.entry(key).or_default())
        };
        if let Some(prep) = slot.once.get() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(prep));
        }
        // Serialize fallible initialization on the slot's init lock
        // (OnceLock::get_or_init cannot propagate an Err without caching
        // something). Losing racers block here, then find the slot warm.
        // An unwrap-on-poison would reintroduce a panic path: a racer
        // that panicked inside `prepare` poisons this mutex, so treat
        // poison as "the previous holder is gone" and take the guard.
        let guard = slot.init.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(prep) = slot.once.get() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(prep));
        }
        let prep = std::panic::catch_unwind(AssertUnwindSafe(prepare)).map_err(|panic| {
            HarnessError::Panicked {
                workload: workload.clone(),
                message: panic_message(panic.as_ref()),
            }
        })??;
        // Infallible from here: publish and count. (Every entry point
        // funnels through this init lock, so `built` is only ever false
        // here if a pre-lock fast path raced us to the publish.)
        let mut built = false;
        let shared = Arc::clone(slot.once.get_or_init(|| {
            built = true;
            Arc::new(prep)
        }));
        drop(guard);
        if built {
            self.prepared.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reused.fetch_add(1, Ordering::Relaxed);
        }
        Ok(shared)
    }

    /// How many preps this pool has actually prepared (each key counts
    /// once, no matter how many callers raced on it).
    pub fn prepared(&self) -> u64 {
        self.prepared.load(Ordering::Relaxed)
    }

    /// How many requests were satisfied by an already-warm prep.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Number of distinct warm preps currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether the pool holds no preps yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::Suite;

    fn tiny_prep(name: &str) -> Prep {
        let w = mg_workloads::by_name(name).expect("registered");
        Prep::new(&w, &Input::tiny())
    }

    fn key(name: &str, budget: u64) -> PoolKey {
        let w = mg_workloads::by_name(name).expect("registered");
        PoolKey::new(w.stable_id(), &Input::tiny(), budget, None)
    }

    #[test]
    fn pool_prepares_once_per_key_and_counts() {
        let pool = Arc::new(PrepPool::new());
        let p1 = pool.get_or_prepare(key("crc32", 1000), || tiny_prep("crc32"));
        let p2 = pool.get_or_prepare(key("crc32", 1000), || panic!("must not re-prepare"));
        assert!(Arc::ptr_eq(&p1, &p2), "same warm prep");
        assert_eq!((pool.prepared(), pool.reused()), (1, 1));
        // A different budget is a different prep.
        let p3 = pool.get_or_prepare(key("crc32", 2000), || tiny_prep("crc32"));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!((pool.prepared(), pool.reused()), (2, 1));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn concurrent_callers_share_one_preparation() {
        let pool = Arc::new(PrepPool::new());
        let prepared = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    pool.get_or_prepare(key("bitcount", 500), || {
                        prepared.fetch_add(1, Ordering::Relaxed);
                        tiny_prep("bitcount")
                    });
                });
            }
        });
        assert_eq!(prepared.load(Ordering::Relaxed), 1, "exactly one preparation ran");
        assert_eq!(pool.prepared(), 1);
        assert_eq!(pool.reused(), 3);
        assert_eq!(
            pool.get_or_prepare(key("bitcount", 500), || unreachable!()).suite,
            Suite::MiBench
        );
    }

    #[test]
    fn try_path_keeps_exactly_once_under_races() {
        let pool = Arc::new(PrepPool::new());
        let prepared = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    pool.try_get_or_prepare(key("crc32", 700), || {
                        prepared.fetch_add(1, Ordering::Relaxed);
                        Ok(tiny_prep("crc32"))
                    })
                    .expect("prepares");
                });
            }
        });
        assert_eq!(prepared.load(Ordering::Relaxed), 1, "racers block on one preparation");
        assert_eq!((pool.prepared(), pool.reused()), (1, 3), "counters match reality");
    }

    #[test]
    fn try_path_does_not_cache_errors() {
        let pool = PrepPool::new();
        let err = pool.try_get_or_prepare(key("crc32", 800), || {
            Err(crate::error::HarnessError::UnknownWorkload { name: "x".into() })
        });
        assert!(err.is_err());
        assert_eq!((pool.prepared(), pool.reused()), (0, 0), "a failure counts as nothing");
        let ok = pool.try_get_or_prepare(key("crc32", 800), || Ok(tiny_prep("crc32")));
        assert!(ok.is_ok(), "the slot stayed retryable");
        assert_eq!((pool.prepared(), pool.reused()), (1, 0));
    }
}
