//! A shared, concurrency-safe pool of prepared workloads.
//!
//! A one-shot experiment process builds its [`Prep`]s, runs, and exits —
//! the in-process memo dies with it. A long-running service (`mg serve`)
//! instead keeps one **warm** prep per (workload, input, trace budget,
//! cache root) alive across every request it handles: the first request
//! pays for profiling, enumeration, and artifact computation; every later
//! request — from any client — reuses the same [`Prep`] and with it every
//! memoized selection, image, and trace.
//!
//! The pool guarantees **exactly-once preparation** under concurrency:
//! each key maps to a [`OnceLock`] slot, so when two engines race to
//! prepare the same workload, one does the work and the other blocks
//! until the prep is ready. The [`PrepPool::prepared`] / [`PrepPool::reused`]
//! counters make the guarantee observable — the serve tests and the
//! `serve-smoke` CI job assert "two concurrent clients, one prep" through
//! them.
//!
//! Pooling is keyed on the prep's *stable cache id*, never on closure
//! identity, so only registered workloads are pooled;
//! ad-hoc [`Source::Custom`](crate::engine::EngineBuilder::program)
//! programs bypass the pool (two different closures could share a name).

use crate::prep::Prep;
use mg_workloads::Input;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a pooled prep's identity depends on. Two engines whose
/// preparation would produce bit-identical `Prep`s share an entry; any
/// difference — input, trace budget, cache root — separates them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// The workload's stable cache id (`<suite>/<name>@r<version>`).
    pub cache_id: String,
    /// Input seed.
    pub seed: u64,
    /// Input scale.
    pub scale: u32,
    /// Recorded-trace cap (quick engines lower it; see
    /// [`Prep::with_trace_budget`]).
    pub trace_budget: u64,
    /// Persistent artifact cache root, or `None` when the cache is off.
    pub cache_dir: Option<PathBuf>,
}

impl PoolKey {
    /// Builds a key from a prep's coordinates.
    pub fn new(
        cache_id: impl Into<String>,
        input: &Input,
        trace_budget: u64,
        cache_dir: Option<PathBuf>,
    ) -> PoolKey {
        PoolKey {
            cache_id: cache_id.into(),
            seed: input.seed,
            scale: input.scale,
            trace_budget,
            cache_dir,
        }
    }
}

/// A shared pool of warm [`Prep`]s (see the module docs).
///
/// Cheap to share: wrap in an [`Arc`] and hand a clone to every
/// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool).
#[derive(Default)]
pub struct PrepPool {
    slots: Mutex<HashMap<PoolKey, Arc<OnceLock<Arc<Prep>>>>>,
    prepared: AtomicU64,
    reused: AtomicU64,
}

impl PrepPool {
    /// Creates an empty pool.
    pub fn new() -> PrepPool {
        PrepPool::default()
    }

    /// Returns the pooled prep for `key`, preparing it with `prepare` if
    /// (and only if) no other caller has. Concurrent callers with the
    /// same key block until the single preparation finishes and then
    /// share the resulting [`Arc`].
    pub fn get_or_prepare(&self, key: PoolKey, prepare: impl FnOnce() -> Prep) -> Arc<Prep> {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            Arc::clone(slots.entry(key).or_default())
        };
        let mut built = false;
        let prep = slot.get_or_init(|| {
            built = true;
            Arc::new(prepare())
        });
        if built {
            self.prepared.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reused.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(prep)
    }

    /// How many preps this pool has actually prepared (each key counts
    /// once, no matter how many callers raced on it).
    pub fn prepared(&self) -> u64 {
        self.prepared.load(Ordering::Relaxed)
    }

    /// How many requests were satisfied by an already-warm prep.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Number of distinct warm preps currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether the pool holds no preps yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::Suite;

    fn tiny_prep(name: &str) -> Prep {
        let w = mg_workloads::by_name(name).expect("registered");
        Prep::new(&w, &Input::tiny())
    }

    fn key(name: &str, budget: u64) -> PoolKey {
        let w = mg_workloads::by_name(name).expect("registered");
        PoolKey::new(w.stable_id(), &Input::tiny(), budget, None)
    }

    #[test]
    fn pool_prepares_once_per_key_and_counts() {
        let pool = Arc::new(PrepPool::new());
        let p1 = pool.get_or_prepare(key("crc32", 1000), || tiny_prep("crc32"));
        let p2 = pool.get_or_prepare(key("crc32", 1000), || panic!("must not re-prepare"));
        assert!(Arc::ptr_eq(&p1, &p2), "same warm prep");
        assert_eq!((pool.prepared(), pool.reused()), (1, 1));
        // A different budget is a different prep.
        let p3 = pool.get_or_prepare(key("crc32", 2000), || tiny_prep("crc32"));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!((pool.prepared(), pool.reused()), (2, 1));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn concurrent_callers_share_one_preparation() {
        let pool = Arc::new(PrepPool::new());
        let prepared = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    pool.get_or_prepare(key("bitcount", 500), || {
                        prepared.fetch_add(1, Ordering::Relaxed);
                        tiny_prep("bitcount")
                    });
                });
            }
        });
        assert_eq!(prepared.load(Ordering::Relaxed), 1, "exactly one preparation ran");
        assert_eq!(pool.prepared(), 1);
        assert_eq!(pool.reused(), 3);
        assert_eq!(
            pool.get_or_prepare(key("bitcount", 500), || unreachable!()).suite,
            Suite::MiBench
        );
    }
}
