//! A shared, concurrency-safe pool of prepared workloads.
//!
//! A one-shot experiment process builds its [`Prep`]s, runs, and exits —
//! the in-process memo dies with it. A long-running service (`mg serve`)
//! instead keeps one **warm** prep per (workload, input, trace budget,
//! cache root) alive across every request it handles: the first request
//! pays for profiling, enumeration, and artifact computation; every later
//! request — from any client — reuses the same [`Prep`] and with it every
//! memoized selection, image, and trace.
//!
//! The pool guarantees **exactly-once preparation** under concurrency:
//! each key maps to a [`OnceLock`] slot, so when two engines race to
//! prepare the same workload, one does the work and the other blocks
//! until the prep is ready. The [`PrepPool::prepared`] / [`PrepPool::reused`]
//! counters make the guarantee observable — the serve tests and the
//! `serve-smoke` CI job assert "two concurrent clients, one prep" through
//! them.
//!
//! Pooling is keyed on the prep's *stable cache id*, never on closure
//! identity, so only registered workloads are pooled;
//! ad-hoc [`Source::Custom`](crate::engine::EngineBuilder::program)
//! programs bypass the pool (two different closures could share a name).

use crate::error::{panic_message, HarnessError};
use crate::prep::Prep;
use mg_fault::{points, FaultPlan};
use mg_workloads::Input;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bounded retry budget per pool slot: after this many failed (errored
/// or panicked) preparations of one key, the slot turns terminal and
/// answers [`HarnessError::Exhausted`] instead of re-running the
/// closure. Transient failures get retried; a deterministic failure
/// cannot starve a stream of waiters into serially re-running it
/// forever.
pub const MAX_PREP_ATTEMPTS: u64 = 3;

/// Everything a pooled prep's identity depends on. Two engines whose
/// preparation would produce bit-identical `Prep`s share an entry; any
/// difference — input, trace budget, cache root — separates them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// The workload's stable cache id (`<suite>/<name>@r<version>`).
    pub cache_id: String,
    /// Input seed.
    pub seed: u64,
    /// Input scale.
    pub scale: u32,
    /// Recorded-trace cap (quick engines lower it; see
    /// [`Prep::with_trace_budget`]).
    pub trace_budget: u64,
    /// Persistent artifact cache root, or `None` when the cache is off.
    pub cache_dir: Option<PathBuf>,
}

impl PoolKey {
    /// Builds a key from a prep's coordinates.
    pub fn new(
        cache_id: impl Into<String>,
        input: &Input,
        trace_budget: u64,
        cache_dir: Option<PathBuf>,
    ) -> PoolKey {
        PoolKey {
            cache_id: cache_id.into(),
            seed: input.seed,
            scale: input.scale,
            trace_budget,
            cache_dir,
        }
    }
}

/// A shared pool of warm [`Prep`]s (see the module docs).
///
/// Cheap to share: wrap in an [`Arc`] and hand a clone to every
/// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool).
#[derive(Default)]
pub struct PrepPool {
    slots: Mutex<HashMap<PoolKey, Arc<Slot>>>,
    prepared: AtomicU64,
    reused: AtomicU64,
    retried: AtomicU64,
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
}

/// One pool slot. `once` holds the warm prep; `init` serializes the
/// fallible preparation path, so concurrent first touches block on the
/// single preparation instead of duplicating it, while an `Err` (which
/// must not be cached) releases the lock and leaves the slot retryable —
/// up to [`MAX_PREP_ATTEMPTS`] failures, after which the slot is
/// exhausted.
#[derive(Default)]
struct Slot {
    once: OnceLock<Arc<Prep>>,
    init: Mutex<()>,
    /// Failed preparation attempts so far (written under `init`).
    failures: AtomicU64,
    /// The most recent failure, rendered (for the `Exhausted` report).
    last_error: Mutex<Option<String>>,
}

impl PrepPool {
    /// Creates an empty pool.
    pub fn new() -> PrepPool {
        PrepPool::default()
    }

    /// Returns the pooled prep for `key`, preparing it with `prepare` if
    /// (and only if) no other caller has. Concurrent callers with the
    /// same key block until the single preparation finishes and then
    /// share the resulting [`Arc`].
    pub fn get_or_prepare(&self, key: PoolKey, prepare: impl FnOnce() -> Prep) -> Arc<Prep> {
        // One initialization discipline for both paths (the slot's init
        // lock), so mixing the panicking and fallible entry points on a
        // key can never duplicate a preparation.
        self.try_get_or_prepare(key, || Ok(prepare())).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible, panic-containing [`PrepPool::get_or_prepare`] — the
    /// `mg_api` session path, where `prepare` may run an out-of-tree
    /// workload source.
    ///
    /// A `prepare` that returns `Err` leaves the slot **uninitialized**
    /// (errors are not cached: a transient failure — say, a source
    /// reading a file that appears later — may succeed on retry). A
    /// `prepare` that *panics* is caught here so it cannot unwind through
    /// the engine's worker scope, and likewise leaves the slot
    /// retryable; the panic is reported as [`HarnessError::Panicked`],
    /// the closest thing to a "poisoned" entry this pool has. The
    /// exactly-once guarantee matches [`PrepPool::get_or_prepare`]:
    /// concurrent callers with the same key block on the slot's init
    /// lock until the single successful preparation finishes.
    ///
    /// # Errors
    ///
    /// `prepare`'s own error, or [`HarnessError::Panicked`].
    pub fn try_get_or_prepare(
        &self,
        key: PoolKey,
        prepare: impl FnOnce() -> Result<Prep, HarnessError>,
    ) -> Result<Arc<Prep>, HarnessError> {
        let workload = key.cache_id.clone();
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            Arc::clone(slots.entry(key).or_default())
        };
        if let Some(prep) = slot.once.get() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(prep));
        }
        // Serialize fallible initialization on the slot's init lock
        // (OnceLock::get_or_init cannot propagate an Err without caching
        // something). Losing racers block here, then find the slot warm.
        // An unwrap-on-poison would reintroduce a panic path: a racer
        // that panicked inside `prepare` poisons this mutex, so treat
        // poison as "the previous holder is gone" and take the guard.
        let guard = slot.init.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(prep) = slot.once.get() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(prep));
        }
        // Bounded retry: a slot whose preparation has failed
        // MAX_PREP_ATTEMPTS times is exhausted — without the cap, a
        // deterministic failure makes every concurrent waiter re-run the
        // closure serially, forever.
        let failures = slot.failures.load(Ordering::Relaxed);
        if failures >= MAX_PREP_ATTEMPTS {
            let last = slot
                .last_error
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .clone()
                .unwrap_or_else(|| "unrecorded failure".to_string());
            return Err(HarnessError::Exhausted { workload, attempts: failures, last });
        }
        let fault_plan = self.fault_plan.lock().unwrap().clone();
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &fault_plan {
                if plan.fires(points::PREP_PANIC) {
                    panic!("injected fault: prep panic");
                }
            }
            prepare()
        }))
        .map_err(|panic| HarnessError::Panicked {
            workload: workload.clone(),
            message: panic_message(panic.as_ref()),
        });
        let prep = match attempt.and_then(|r| r) {
            Ok(prep) => prep,
            Err(e) => {
                slot.failures.fetch_add(1, Ordering::Relaxed);
                *slot.last_error.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) =
                    Some(e.to_string());
                self.retried.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        // Infallible from here: publish and count. (Every entry point
        // funnels through this init lock, so `built` is only ever false
        // here if a pre-lock fast path raced us to the publish.)
        let mut built = false;
        let shared = Arc::clone(slot.once.get_or_init(|| {
            built = true;
            Arc::new(prep)
        }));
        drop(guard);
        if built {
            self.prepared.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reused.fetch_add(1, Ordering::Relaxed);
        }
        Ok(shared)
    }

    /// How many preps this pool has actually prepared (each key counts
    /// once, no matter how many callers raced on it).
    pub fn prepared(&self) -> u64 {
        self.prepared.load(Ordering::Relaxed)
    }

    /// How many requests were satisfied by an already-warm prep.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// How many preparation attempts failed (each leaves its slot
    /// retryable until [`MAX_PREP_ATTEMPTS`] is reached). Exported as
    /// `preps_retried` by `mg serve --stats`.
    pub fn retried(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }

    /// Installs (or clears) a deterministic fault plan: subsequent
    /// preparations consult its `harness.prep.panic` point and panic —
    /// inside the pool's containment — when it fires. Used by `mg chaos`
    /// to exercise the retry/exhaustion machinery.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault_plan.lock().unwrap() = plan;
    }

    /// Number of distinct warm preps currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether the pool holds no preps yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::Suite;

    fn tiny_prep(name: &str) -> Prep {
        let w = mg_workloads::by_name(name).expect("registered");
        Prep::new(&w, &Input::tiny())
    }

    fn key(name: &str, budget: u64) -> PoolKey {
        let w = mg_workloads::by_name(name).expect("registered");
        PoolKey::new(w.stable_id(), &Input::tiny(), budget, None)
    }

    #[test]
    fn pool_prepares_once_per_key_and_counts() {
        let pool = Arc::new(PrepPool::new());
        let p1 = pool.get_or_prepare(key("crc32", 1000), || tiny_prep("crc32"));
        let p2 = pool.get_or_prepare(key("crc32", 1000), || panic!("must not re-prepare"));
        assert!(Arc::ptr_eq(&p1, &p2), "same warm prep");
        assert_eq!((pool.prepared(), pool.reused()), (1, 1));
        // A different budget is a different prep.
        let p3 = pool.get_or_prepare(key("crc32", 2000), || tiny_prep("crc32"));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!((pool.prepared(), pool.reused()), (2, 1));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn concurrent_callers_share_one_preparation() {
        let pool = Arc::new(PrepPool::new());
        let prepared = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    pool.get_or_prepare(key("bitcount", 500), || {
                        prepared.fetch_add(1, Ordering::Relaxed);
                        tiny_prep("bitcount")
                    });
                });
            }
        });
        assert_eq!(prepared.load(Ordering::Relaxed), 1, "exactly one preparation ran");
        assert_eq!(pool.prepared(), 1);
        assert_eq!(pool.reused(), 3);
        assert_eq!(
            pool.get_or_prepare(key("bitcount", 500), || unreachable!()).suite,
            Suite::MiBench
        );
    }

    #[test]
    fn try_path_keeps_exactly_once_under_races() {
        let pool = Arc::new(PrepPool::new());
        let prepared = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    pool.try_get_or_prepare(key("crc32", 700), || {
                        prepared.fetch_add(1, Ordering::Relaxed);
                        Ok(tiny_prep("crc32"))
                    })
                    .expect("prepares");
                });
            }
        });
        assert_eq!(prepared.load(Ordering::Relaxed), 1, "racers block on one preparation");
        assert_eq!((pool.prepared(), pool.reused()), (1, 3), "counters match reality");
    }

    #[test]
    fn try_path_does_not_cache_errors() {
        let pool = PrepPool::new();
        let err = pool.try_get_or_prepare(key("crc32", 800), || {
            Err(crate::error::HarnessError::UnknownWorkload { name: "x".into() })
        });
        assert!(err.is_err());
        assert_eq!((pool.prepared(), pool.reused()), (0, 0), "a failure counts as nothing");
        assert_eq!(pool.retried(), 1, "the failed attempt is counted");
        let ok = pool.try_get_or_prepare(key("crc32", 800), || Ok(tiny_prep("crc32")));
        assert!(ok.is_ok(), "the slot stayed retryable");
        assert_eq!((pool.prepared(), pool.reused()), (1, 0));
    }

    #[test]
    fn failing_slot_exhausts_after_bounded_retries() {
        let pool = PrepPool::new();
        let runs = AtomicU64::new(0);
        for attempt in 0..MAX_PREP_ATTEMPTS {
            let err = pool
                .try_get_or_prepare(key("crc32", 900), || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    Err(crate::error::HarnessError::UnknownWorkload { name: "boom".into() })
                })
                .err()
                .expect("expected a preparation failure");
            assert!(
                !matches!(err, crate::error::HarnessError::Exhausted { .. }),
                "attempt {attempt} is still retryable, got {err}"
            );
        }
        // The budget is spent: the closure must not run again, and the
        // error is terminal with the last failure attached.
        let err = pool
            .try_get_or_prepare(key("crc32", 900), || {
                runs.fetch_add(1, Ordering::Relaxed);
                Ok(tiny_prep("crc32"))
            })
            .err()
            .expect("expected a preparation failure");
        match err {
            crate::error::HarnessError::Exhausted { attempts, ref last, .. } => {
                assert_eq!(attempts, MAX_PREP_ATTEMPTS);
                assert!(last.contains("boom"), "last failure preserved: {last}");
            }
            other => panic!("expected Exhausted, got {other}"),
        }
        assert_eq!(runs.load(Ordering::Relaxed), MAX_PREP_ATTEMPTS);
        assert_eq!(pool.retried(), MAX_PREP_ATTEMPTS);
        // Other keys are unaffected.
        assert!(pool.try_get_or_prepare(key("crc32", 901), || Ok(tiny_prep("crc32"))).is_ok());
    }

    #[test]
    fn panicking_preps_count_against_the_retry_budget() {
        let pool = PrepPool::new();
        for _ in 0..MAX_PREP_ATTEMPTS {
            let err = pool
                .try_get_or_prepare(key("bitcount", 900), || panic!("flaky source"))
                .err()
                .expect("expected a preparation failure");
            assert!(matches!(err, crate::error::HarnessError::Panicked { .. }), "{err}");
        }
        let err = pool
            .try_get_or_prepare(key("bitcount", 900), || Ok(tiny_prep("bitcount")))
            .err()
            .expect("expected a preparation failure");
        assert!(matches!(err, crate::error::HarnessError::Exhausted { .. }), "{err}");
    }

    #[test]
    fn injected_prep_panics_are_contained_and_deterministic() {
        let pool = PrepPool::new();
        // permille 1000 + one-fire cap: exactly the first preparation
        // panics, the retry succeeds.
        pool.set_fault_plan(Some(Arc::new(mg_fault::FaultPlan::new(7).with_burst(
            mg_fault::points::PREP_PANIC,
            1000,
            1,
        ))));
        let err = pool
            .try_get_or_prepare(key("crc32", 950), || Ok(tiny_prep("crc32")))
            .err()
            .expect("expected a preparation failure");
        assert!(
            matches!(err, crate::error::HarnessError::Panicked { ref message, .. }
                if message.contains("injected fault")),
            "{err}"
        );
        let ok = pool.try_get_or_prepare(key("crc32", 950), || Ok(tiny_prep("crc32")));
        assert!(ok.is_ok(), "slot recovered after the injected panic");
        assert_eq!((pool.prepared(), pool.retried()), (1, 1));
    }
}
