//! Fused multi-config sweep execution.
//!
//! The paper's headline figures sweep many near-identical [`SimConfig`]s
//! over the same (workload, input, policy) cell. Running those one
//! config at a time re-reads the whole trace and rebuilds the predecode
//! plane per config; the fused executor instead advances **K pipeline
//! replicas over one shared instruction stream**:
//!
//! * **Batching rule**: only runs over the *same image artifacts*
//!   (program, trace, catalog — i.e. one matrix cell group) fuse; the
//!   replicas share one [`Predecode`] plane and walk one trace, so the
//!   stream's bytes stay cache-resident across all K replicas instead of
//!   being streamed K times.
//! * **Dedup**: identical configurations in a sweep (common at sweep
//!   anchor points — e.g. a register-file sweep whose mid point equals
//!   the baseline machine) simulate **once** and fan the stats out to
//!   every requesting column.
//! * **Divergence**: replicas are *not* cycle-locked. Each advances
//!   independently to a shared fetch-position target
//!   ([`FUSE_CHUNK`] trace ops at a time), so configs that diverge in
//!   time (taken branches, cache misses, squashes) simply spend
//!   different cycle counts inside the same trace window and retire
//!   independently; a finished replica drops out of the round-robin.
//!
//! Chunked advancing is possible because [`Simulator::advance`] pauses
//! *between* cycles: resuming with a larger target re-enters the cycle
//! loop with every field intact, so a fused run is **bit-identical** to
//! K scalar runs by construction — enforced end-to-end by the
//! scalar-vs-fused differential test in `tests/fused.rs`.

use mg_isa::{HandleCatalog, Program};
use mg_profile::Trace;
use mg_uarch::{Predecode, SimConfig, SimStats, Simulator};
use std::sync::Arc;

/// Shared fetch-position step, in trace operations. Large enough that
/// per-replica switching cost is noise, small enough that the window's
/// trace bytes and predecode lanes stay hot across all replicas
/// (4096 ops ≈ 160KB of trace — L2-resident — walked K times per step).
pub const FUSE_CHUNK: usize = 4096;

/// Simulates one image under every configuration of `cfgs`, sharing the
/// predecode plane and fetch stream across replicas and deduplicating
/// identical configurations. Returns one [`SimStats`] per input config,
/// in order — bit-identical to calling
/// [`simulate_with`](mg_uarch::simulate_with) per config.
pub fn run_fused(
    prog: &Program,
    trace: &Trace,
    catalog: &HandleCatalog,
    predecode: &Arc<Predecode>,
    cfgs: &[SimConfig],
) -> Vec<SimStats> {
    // Dedup identical configurations: `reps[j]` is the index of the
    // first config simulating replica `j`; `assign[i]` maps config `i`
    // to its replica.
    let mut reps: Vec<usize> = Vec::new();
    let mut assign: Vec<usize> = Vec::with_capacity(cfgs.len());
    for (i, cfg) in cfgs.iter().enumerate() {
        match reps.iter().position(|&r| cfgs[r] == *cfg) {
            Some(j) => assign.push(j),
            None => {
                assign.push(reps.len());
                reps.push(i);
            }
        }
    }
    let mut sims: Vec<Option<Simulator>> = reps
        .iter()
        .map(|&i| {
            Some(Simulator::with_predecode(
                cfgs[i].clone(),
                prog,
                trace,
                catalog,
                Arc::clone(predecode),
            ))
        })
        .collect();
    let mut stats: Vec<Option<SimStats>> = vec![None; sims.len()];
    // Round-robin over a monotonically advancing shared fetch target.
    // `advance` returns `true` when the replica drains (its own op cap
    // may stop it well before the target); the final `usize::MAX` round
    // is reached once the target passes the trace length.
    let mut target = 0usize;
    while stats.iter().any(|s| s.is_none()) {
        target =
            if target >= trace.len() { usize::MAX } else { target.saturating_add(FUSE_CHUNK) };
        for (slot, out) in sims.iter_mut().zip(stats.iter_mut()) {
            if let Some(sim) = slot {
                if sim.advance(target) {
                    *out = Some(slot.take().expect("sim present").into_stats());
                }
            }
        }
    }
    // Fan replica stats out to every requesting config column.
    assign.into_iter().map(|j| stats[j].clone().expect("all replicas finished")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm, Memory};
    use mg_profile::record_trace;
    use mg_uarch::simulate_with;

    fn tiny_image() -> (Program, Trace) {
        let mut a = Asm::new();
        a.li(reg(1), 500);
        a.li(reg(4), 0x10_0000);
        a.label("top");
        a.ldq(reg(2), 0, reg(4));
        a.addq(reg(2), 1, reg(2));
        a.stq(reg(2), 0, reg(4));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let prog = a.finish().unwrap();
        let trace = record_trace(&prog, &mut Memory::new(), None, 100_000).unwrap();
        (prog, trace)
    }

    #[test]
    fn fused_matches_scalar_and_dedups() {
        let (prog, trace) = tiny_image();
        let catalog = HandleCatalog::new();
        let pd = Arc::new(Predecode::new(&prog, &catalog));
        // A sweep with a deliberate duplicate (first == last).
        let cfgs = [
            SimConfig::baseline(),
            SimConfig::baseline().with_phys_regs(96),
            SimConfig::baseline().with_front_width(4),
            SimConfig::baseline(),
        ];
        let fused = run_fused(&prog, &trace, &catalog, &pd, &cfgs);
        for (cfg, f) in cfgs.iter().zip(&fused) {
            let scalar = simulate_with(cfg, &prog, &trace, &catalog, &pd);
            assert_eq!(*f, scalar, "fused stats must be bit-identical");
        }
        assert_eq!(fused[0], fused[3], "duplicate configs share one replica");
    }
}
