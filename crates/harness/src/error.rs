//! Typed failures of the preparation and run stages.
//!
//! Historically the harness treated every failure as a programming error
//! and panicked (`expect("workload halts")`). That is fine for the
//! built-in registry — its kernels are tested to halt — but wrong for an
//! embeddable library: an out-of-tree workload registered through
//! `mg_api` can fail to build, fail to halt, or panic, and the host must
//! get a value back, not a unwound thread. Every stage therefore has a
//! `try_*` variant returning [`HarnessError`]; the panicking entry points
//! remain as thin wrappers for the registry-only callers (experiment
//! binaries, benches) whose inputs are statically known-good.
//!
//! `mg_api::MgError` wraps these at the API boundary, preserving the
//! source chain (`Error::source`) end-to-end: an `ExecError` raised five
//! layers down in `mg-isa` is still reachable from the error a `Session`
//! caller receives.

use mg_isa::exec::ExecError;
use std::error::Error;
use std::fmt;

/// A boxed error a workload build closure may return (see
/// [`BuildFn`](crate::prep::BuildFn)).
pub type BuildError = Box<dyn Error + Send + Sync + 'static>;

/// A failure in workload preparation or matrix execution.
#[derive(Debug)]
pub enum HarnessError {
    /// A workload name did not resolve against the registry (or the
    /// engine's extra sources).
    UnknownWorkload {
        /// The unresolved name.
        name: String,
    },
    /// The workload's build function failed to produce a program image.
    Build {
        /// Workload name.
        workload: String,
        /// The build function's own error.
        source: BuildError,
    },
    /// Functional execution failed (profiling or baseline trace
    /// recording): the program faulted or exceeded its step budget.
    Exec {
        /// Workload name.
        workload: String,
        /// Which functional pass failed (`"profile"` or `"trace"`).
        phase: &'static str,
        /// The functional-simulator error.
        source: ExecError,
    },
    /// The *rewritten* image failed functional execution: the mini-graph
    /// rewrite (or the selection it came from) broke the program.
    Rewrite {
        /// Workload name.
        workload: String,
        /// The functional-simulator error from the rewritten image.
        source: ExecError,
    },
    /// Preparation panicked (e.g. an out-of-tree build closure), or a
    /// shared [`PrepPool`](crate::pool::PrepPool) slot was poisoned by an
    /// earlier panic. The panic is contained; the slot stays retryable.
    Panicked {
        /// Workload name.
        workload: String,
        /// Best-effort panic payload text.
        message: String,
    },
    /// A shared [`PrepPool`](crate::pool::PrepPool) slot failed its
    /// bounded retry budget: every attempt errored or panicked, and the
    /// slot now refuses further preparations (terminal — retrying the
    /// same closure a fourth time is not going to go differently).
    Exhausted {
        /// Workload name.
        workload: String,
        /// How many preparation attempts failed.
        attempts: u64,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::UnknownWorkload { name } => {
                write!(f, "workload {name:?} is not registered")
            }
            HarnessError::Build { workload, source } => {
                write!(f, "building workload {workload:?} failed: {source}")
            }
            HarnessError::Exec { workload, phase, source } => {
                write!(f, "functional {phase} of workload {workload:?} failed: {source}")
            }
            HarnessError::Rewrite { workload, source } => {
                write!(
                    f,
                    "rewritten image of workload {workload:?} failed to execute: {source}"
                )
            }
            HarnessError::Panicked { workload, message } => {
                write!(f, "preparation of workload {workload:?} panicked: {message}")
            }
            HarnessError::Exhausted { workload, attempts, last } => {
                write!(
                    f,
                    "preparation of workload {workload:?} failed {attempts} times and is \
                     exhausted; last failure: {last}"
                )
            }
        }
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarnessError::UnknownWorkload { .. }
            | HarnessError::Panicked { .. }
            | HarnessError::Exhausted { .. } => None,
            HarnessError::Build { source, .. } => Some(source.as_ref()),
            HarnessError::Exec { source, .. } | HarnessError::Rewrite { source, .. } => {
                Some(source)
            }
        }
    }
}

impl HarnessError {
    /// The workload the failure belongs to, when there is one.
    pub fn workload(&self) -> Option<&str> {
        match self {
            HarnessError::UnknownWorkload { .. } => None,
            HarnessError::Build { workload, .. }
            | HarnessError::Exec { workload, .. }
            | HarnessError::Rewrite { workload, .. }
            | HarnessError::Panicked { workload, .. }
            | HarnessError::Exhausted { workload, .. } => Some(workload),
        }
    }
}

/// Renders a caught panic payload as text (`String` and `&str` payloads
/// verbatim, anything else a placeholder).
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| panic.downcast_ref::<&str>().copied())
        .unwrap_or("panic payload is not a string")
        .to_string()
}
