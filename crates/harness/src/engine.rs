//! Stage two of the experiment flow: the run engine.
//!
//! An [`Engine`] owns a set of prepared workloads ([`Prep`]) and executes
//! matrices of timing-simulation runs — the cross product of its
//! workloads with a list of [`Run`] specifications — fanning the work out
//! across OS threads with **deterministic** results: every cell of the
//! returned matrix is a pure function of (workload, run spec), and cells
//! are stored by index, so a parallel run is bit-identical to a
//! sequential one (`threads = 1`).
//!
//! ```no_run
//! use mg_harness::{Engine, Run};
//! use mg_core::{Policy, RewriteStyle};
//! use mg_uarch::SimConfig;
//!
//! let engine = Engine::builder().workloads(&["crc32", "rgba.conv"]).build();
//! let matrix = engine.run(&[
//!     Run::baseline(SimConfig::baseline()),
//!     Run::mini_graph(Policy::integer_memory(), RewriteStyle::NopPadded,
//!                     SimConfig::mg_integer_memory()),
//! ]);
//! for row in &matrix.rows {
//!     println!("{}: {:.3}x", row.prep.name, row.speedup_over(0, 1));
//! }
//! ```

use crate::error::{panic_message, HarnessError};
use crate::pool::{PoolKey, PrepPool};
use crate::prep::{by_suite, BuildFn, Prep};
use crate::prep_cache::PrepCache;
use crate::quick::{apply_quick, quick_mode};
use crate::report::speedup;
use mg_core::{Policy, RewriteStyle};
use mg_uarch::{SimConfig, SimStats};
use mg_workloads::{Input, Suite, Workload};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The image a run simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum Image {
    /// The original program.
    Baseline,
    /// The program rewritten with the mini-graphs `policy` selects.
    MiniGraph {
        /// The selection policy.
        policy: Policy,
        /// The rewrite style (nop-padded or compressed).
        style: RewriteStyle,
    },
}

/// One cell of a run matrix: which image to simulate on which machine.
#[derive(Clone)]
pub struct Run {
    /// Display label (defaults to `"baseline"` / `"mg"`).
    pub label: String,
    /// The image under test.
    pub image: Image,
    /// The machine configuration.
    pub cfg: SimConfig,
}

impl Run {
    /// A baseline-image run under `cfg`.
    pub fn baseline(cfg: SimConfig) -> Run {
        Run { label: "baseline".into(), image: Image::Baseline, cfg }
    }

    /// A mini-graph run: select under `policy`, rewrite with `style`,
    /// simulate under `cfg`.
    pub fn mini_graph(policy: Policy, style: RewriteStyle, cfg: SimConfig) -> Run {
        Run { label: "mg".into(), image: Image::MiniGraph { policy, style }, cfg }
    }

    /// Sets the display label.
    pub fn label(mut self, label: impl Into<String>) -> Run {
        self.label = label.into();
        self
    }
}

/// One workload's row of a completed matrix: its stats per [`Run`], in
/// spec order.
pub struct RunRow {
    /// The prepared workload this row belongs to.
    pub prep: Arc<Prep>,
    /// One result per run spec, in the order given to [`Engine::run`].
    pub stats: Vec<SimStats>,
}

impl RunRow {
    /// Speedup of run `of` relative to run `over` (IPC ratio over original
    /// program instructions; see [`speedup`]).
    pub fn speedup_over(&self, over: usize, of: usize) -> f64 {
        speedup(&self.stats[over], &self.stats[of])
    }
}

/// A completed (workload × run) matrix, in deterministic order: rows
/// follow the engine's workload order, columns the run-spec order.
pub struct RunMatrix {
    /// The run labels, in column order.
    pub labels: Vec<String>,
    /// One row per workload.
    pub rows: Vec<RunRow>,
}

impl RunMatrix {
    /// Rows grouped by suite, preserving row order.
    pub fn by_suite(&self) -> Vec<(Suite, Vec<&RunRow>)> {
        Suite::ALL
            .iter()
            .map(|&s| (s, self.rows.iter().filter(|r| r.prep.suite == s).collect()))
            .collect()
    }

    /// The row for a named workload.
    pub fn row(&self, name: &str) -> Option<&RunRow> {
        self.rows.iter().find(|r| r.prep.name == name)
    }
}

/// An out-of-registry workload source resolvable by name: how `mg_api`
/// feeds `WorkloadSource` registrations into an engine without forking
/// `mg_workloads::all`. Unlike an ad-hoc [`EngineBuilder::program`]
/// closure, an extra source carries a caller-declared **stable id**,
/// which becomes the prep's cache id: it keys the warm-prep pool and is
/// folded into every persistent-cache fingerprint, exactly like a
/// registered workload's `stable_id()` (the cache additionally
/// fingerprints the built program and data images, so even a lying id
/// cannot replay artifacts across a content change).
#[derive(Clone)]
pub struct ExtraSource {
    /// Workload name (resolvable via [`EngineBuilder::workloads`]).
    pub name: String,
    /// Owning suite (used for report grouping).
    pub suite: Suite,
    /// Stable identity for pool and cache keys; must change whenever the
    /// source's built program or data changes.
    pub stable_id: String,
    /// The (fallible) image builder.
    pub build: BuildFn,
}

enum Source {
    Registered(Workload),
    Extra(ExtraSource),
    Custom { name: String, suite: Suite, build: BuildFn },
}

impl Source {
    fn name(&self) -> &str {
        match self {
            Source::Registered(w) => w.name,
            Source::Extra(x) => &x.name,
            Source::Custom { name, .. } => name,
        }
    }
}

/// One completed matrix cell, reported to a [`CellObserver`] as workers
/// finish it (completion order, not matrix order).
#[derive(Clone, Debug)]
pub struct CellDone {
    /// Workload name of the cell's row.
    pub workload: String,
    /// Label of the cell's [`Run`] spec.
    pub label: String,
    /// Simulated cycles of the cell.
    pub cycles: u64,
    /// Committed fetched operations of the cell.
    pub ops: u64,
}

/// Callback invoked by [`Engine::run`] for every cell the moment a worker
/// completes it. Called from worker threads, concurrently and in
/// completion order; the deterministic matrix itself is unaffected.
/// `mg serve` uses this to stream per-cell progress to clients while a
/// request is still running.
pub type CellObserver = Arc<dyn Fn(&CellDone) + Send + Sync>;

/// Configures and builds an [`Engine`]. See [`Engine::builder`].
pub struct EngineBuilder {
    input: Input,
    sources: Vec<Source>,
    extra: Vec<ExtraSource>,
    threads: usize,
    quick: bool,
    fuse: bool,
    trace_budget: Option<u64>,
    cache_dir: Option<PathBuf>,
    cache_fallback_dir: Option<PathBuf>,
    pool: Option<Arc<PrepPool>>,
    observer: Option<CellObserver>,
    fault_plan: Option<Arc<mg_fault::FaultPlan>>,
}

impl EngineBuilder {
    fn new() -> EngineBuilder {
        EngineBuilder {
            input: Input::reference(),
            sources: Vec::new(),
            extra: Vec::new(),
            threads: default_threads(),
            quick: quick_mode(),
            fuse: fuse_default(),
            trace_budget: None,
            cache_dir: None,
            cache_fallback_dir: None,
            pool: None,
            observer: None,
            fault_plan: None,
        }
    }

    /// Sets the workload input (default: [`Input::reference`]).
    pub fn input(mut self, input: Input) -> EngineBuilder {
        self.input = input;
        self
    }

    /// Restricts the engine to the named registered workloads, in the
    /// given order.
    ///
    /// # Panics
    ///
    /// Panics if a name is not registered.
    pub fn workloads(self, names: &[&str]) -> EngineBuilder {
        self.try_workloads(names).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`EngineBuilder::workloads`]: names resolve against the
    /// registry first, then against any [`EngineBuilder::extra_source`]
    /// registrations (among duplicate extra names the **last**
    /// registration wins, matching the default-set and
    /// [`EngineBuilder::suite`] resolution).
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownWorkload`] for the first unresolved name.
    pub fn try_workloads<S: AsRef<str>>(
        mut self,
        names: &[S],
    ) -> Result<EngineBuilder, HarnessError> {
        for name in names {
            let name = name.as_ref();
            if let Some(w) = mg_workloads::by_name(name) {
                self.sources.push(Source::Registered(w));
            } else if let Some(x) = self.extra.iter().rev().find(|x| x.name == name) {
                self.sources.push(Source::Extra(x.clone()));
            } else {
                return Err(HarnessError::UnknownWorkload { name: name.to_string() });
            }
        }
        Ok(self)
    }

    /// Adds every registered workload of `suite` (plus any
    /// [`EngineBuilder::extra_source`] registrations in that suite,
    /// minus shadowed names).
    pub fn suite(mut self, suite: Suite) -> EngineBuilder {
        self.sources.extend(
            mg_workloads::all()
                .into_iter()
                .filter(|w| w.suite == suite)
                .map(Source::Registered),
        );
        let extras: Vec<Source> = Self::unshadowed_extras(&self.extra)
            .filter(|x| x.suite == suite)
            .cloned()
            .map(Source::Extra)
            .collect();
        self.sources.extend(extras);
        self
    }

    /// The extra sources that actually resolve: a name shadowed by the
    /// built-in registry resolves to the registry (the [`WorkloadSource`
    /// contract](ExtraSource)), and among duplicate extra names the last
    /// registration wins — so neither may contribute a default-set row.
    fn unshadowed_extras(extra: &[ExtraSource]) -> impl Iterator<Item = &ExtraSource> {
        extra.iter().enumerate().filter_map(|(i, x)| {
            let shadowed = mg_workloads::by_name(&x.name).is_some();
            let superseded = extra[i + 1..].iter().any(|y| y.name == x.name);
            (!shadowed && !superseded).then_some(x)
        })
    }

    /// Registers an [`ExtraSource`]: it joins the name-resolution set of
    /// [`EngineBuilder::try_workloads`] / [`EngineBuilder::suite`] and —
    /// when no explicit selection is made — the default all-workloads
    /// set, after every registered workload.
    pub fn extra_source(mut self, source: ExtraSource) -> EngineBuilder {
        self.extra.push(source);
        self
    }

    /// Adds an ad-hoc program under `name`, built by `build` — the same
    /// preparation flow registered workloads get.
    pub fn program(
        mut self,
        name: impl Into<String>,
        suite: Suite,
        build: impl Fn(&Input) -> (mg_isa::Program, mg_isa::Memory) + Send + Sync + 'static,
    ) -> EngineBuilder {
        self.sources.push(Source::Custom {
            name: name.into(),
            suite,
            build: Arc::new(move |i: &Input| Ok(build(i))),
        });
        self
    }

    /// Caps worker threads (default: available parallelism, overridable
    /// with `MG_THREADS`). `1` forces fully sequential execution.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads.max(1);
        self
    }

    /// Forces quick mode on or off (default: the `MG_QUICK` environment
    /// flag; see [`quick_mode`]). Quick mode caps simulated operations
    /// per run.
    pub fn quick(mut self, quick: bool) -> EngineBuilder {
        self.quick = quick;
        self
    }

    /// Forces fused sweep execution on or off (default: on unless the
    /// `MG_NO_FUSE` environment variable is set; see [`fuse_default`]).
    /// When on, matrix cells sharing one (workload, image) group run as
    /// one fused sweep (see [`crate::fused`]); results are bit-identical
    /// either way, so this is purely a throughput switch.
    pub fn fuse(mut self, fuse: bool) -> EngineBuilder {
        self.fuse = fuse;
        self
    }

    /// Overrides the recorded-trace budget (ops). The default is derived
    /// from quick mode ([`QUICK_MAX_OPS`](crate::quick::QUICK_MAX_OPS)
    /// quick, [`STEP_BUDGET`](crate::prep::STEP_BUDGET) full); sessions
    /// that know their simulations replay less can lower it further.
    pub fn trace_budget(mut self, ops: u64) -> EngineBuilder {
        self.trace_budget = Some(ops);
        self
    }

    /// Enables (or disables) the persistent artifact cache at its default
    /// root ([`PrepCache::default_root`]). Off by default — library and
    /// test contexts stay hermetic; the experiment binaries turn it on.
    /// `MG_NO_CACHE=1` overrides even an explicit `cache(true)` as an
    /// operational kill switch.
    pub fn cache(self, enabled: bool) -> EngineBuilder {
        if enabled {
            self.cache_dir(PrepCache::default_root())
        } else {
            EngineBuilder { cache_dir: None, ..self }
        }
    }

    /// Enables the persistent artifact cache rooted at `dir` (see
    /// [`EngineBuilder::cache`]).
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Chains a shared read-through root behind the primary cache (see
    /// [`PrepCache::with_fallback`]): loads fall through to `dir` on a
    /// primary miss (and repopulate the primary), stores land in both.
    /// No effect unless a primary root is set via
    /// [`EngineBuilder::cache`] / [`EngineBuilder::cache_dir`].
    pub fn cache_fallback_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.cache_fallback_dir = Some(dir.into());
        self
    }

    /// Shares warm preps through `pool` (see [`PrepPool`]): registered
    /// workloads whose (input, trace budget, cache root) match an entry
    /// already prepared — by this engine or any other holding the same
    /// pool — reuse it instead of re-preparing. Ad-hoc
    /// [`EngineBuilder::program`] sources are never pooled (closure
    /// identity is unverifiable).
    pub fn pool(mut self, pool: Arc<PrepPool>) -> EngineBuilder {
        self.pool = Some(pool);
        self
    }

    /// Registers a per-cell completion callback for [`Engine::run`] (see
    /// [`CellObserver`]).
    pub fn observer(mut self, observer: CellObserver) -> EngineBuilder {
        self.observer = Some(observer);
        self
    }

    /// Arms deterministic fault injection (see [`mg_fault::FaultPlan`])
    /// for this engine's preparation side effects: the artifact cache's
    /// `harness.cache.*` points fire on store. Chaos-testing machinery —
    /// production builds never set this.
    pub fn fault_plan(mut self, plan: Arc<mg_fault::FaultPlan>) -> EngineBuilder {
        self.fault_plan = Some(plan);
        self
    }

    /// Prepares all selected workloads — every registered one if none
    /// were named — in parallel, and returns the engine.
    ///
    /// A quick engine also caps its preps' recorded traces at the quick
    /// op limit: its simulations replay at most that prefix, so
    /// functionally executing (and storing) the rest of the committed
    /// path would be pure waste.
    pub fn build(self) -> Engine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`EngineBuilder::build`] — the `mg_api` session path.
    /// Preparation failures (build, profiling, a panicking out-of-tree
    /// source) surface as [`HarnessError`] instead of unwinding the
    /// worker scope; pool slots stay retryable after a failure.
    ///
    /// # Errors
    ///
    /// The first [`HarnessError`] any workload's preparation raised (in
    /// workload order, deterministically).
    pub fn try_build(self) -> Result<Engine, HarnessError> {
        let EngineBuilder {
            input,
            mut sources,
            extra,
            threads,
            quick,
            fuse,
            trace_budget,
            cache_dir,
            cache_fallback_dir,
            pool,
            observer,
            fault_plan,
        } = self;
        if sources.is_empty() {
            sources.extend(mg_workloads::all().into_iter().map(Source::Registered));
            sources.extend(Self::unshadowed_extras(&extra).cloned().map(Source::Extra));
        }
        let cache = match cache_dir {
            Some(dir) if !PrepCache::disabled_by_env() => {
                let mut cache = PrepCache::new(dir);
                if let Some(shared) = cache_fallback_dir {
                    cache = cache.with_fallback(shared);
                }
                if let Some(plan) = fault_plan {
                    cache = cache.with_fault_plan(plan);
                }
                Some(Arc::new(cache))
            }
            _ => None,
        };
        // Everything a pooled prep's identity depends on beyond the
        // workload itself: the trace budget the engine will apply and the
        // resolved cache root.
        let trace_budget = trace_budget.unwrap_or(if quick {
            crate::quick::QUICK_MAX_OPS
        } else {
            crate::prep::STEP_BUDGET
        });
        let cache_root = cache.as_ref().map(|c| c.root().to_path_buf());
        let prepare = |source: &Source| -> Result<Prep, HarnessError> {
            let prep = match source {
                Source::Registered(w) => Prep::try_new(w, &input)?,
                Source::Extra(x) => Prep::try_with_source(
                    x.name.clone(),
                    x.suite,
                    Arc::clone(&x.build),
                    &input,
                    x.stable_id.clone(),
                )?,
                Source::Custom { name, suite, build } => {
                    Prep::try_with_build(name.clone(), *suite, Arc::clone(build), &input)?
                }
            };
            // `STEP_BUDGET` (the full default) is the prep's own default,
            // so applying the resolved budget unconditionally matches the
            // old quick-only behaviour bit for bit.
            Ok(prep.with_trace_budget(trace_budget).with_cache(cache.clone()))
        };
        let sources: Vec<Source> = sources;
        let preps: Vec<Result<Arc<Prep>, HarnessError>> =
            run_indexed(threads, sources.len(), |i| {
                let source = &sources[i];
                let pool_key = match source {
                    Source::Registered(w) => Some(w.stable_id()),
                    Source::Extra(x) => Some(x.stable_id.clone()),
                    // Ad-hoc closures carry no identity contract, so they
                    // are never pooled (two different closures could
                    // share a name).
                    Source::Custom { .. } => None,
                };
                match (&pool, pool_key) {
                    (Some(pool), Some(id)) => {
                        let key = PoolKey::new(id, &input, trace_budget, cache_root.clone());
                        pool.try_get_or_prepare(key, || prepare(source)).map_err(|e| match e {
                            // The pool only knows the key's cache id;
                            // report the workload name, like the
                            // non-pooled branch does.
                            HarnessError::Panicked { message, .. } => HarnessError::Panicked {
                                workload: source.name().to_string(),
                                message,
                            },
                            other => other,
                        })
                    }
                    _ => std::panic::catch_unwind(AssertUnwindSafe(|| prepare(source)))
                        .unwrap_or_else(|panic| {
                            Err(HarnessError::Panicked {
                                workload: source.name().to_string(),
                                message: panic_message(panic.as_ref()),
                            })
                        })
                        .map(Arc::new),
                }
            });
        let preps = preps.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(Engine { preps, threads, quick, fuse, observer })
    }
}

/// The staged experiment engine: prepared workloads plus a thread budget.
pub struct Engine {
    preps: Vec<Arc<Prep>>,
    threads: usize,
    quick: bool,
    fuse: bool,
    observer: Option<CellObserver>,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The prepared workloads, in registration (or selection) order.
    pub fn preps(&self) -> &[Arc<Prep>] {
        &self.preps
    }

    /// The prepared workload named `name`.
    pub fn prep(&self, name: &str) -> Option<&Arc<Prep>> {
        self.preps.iter().find(|p| p.name == name)
    }

    /// Whether quick mode is active (see [`EngineBuilder::quick`]).
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Whether sweeps run fused (see [`EngineBuilder::fuse`]).
    pub fn fuse(&self) -> bool {
        self.fuse
    }

    /// The engine's prepared workloads grouped by suite.
    pub fn by_suite(&self) -> Vec<(Suite, Vec<&Prep>)> {
        by_suite(&self.preps)
    }

    /// Applies the engine's quick-mode cap to a configuration.
    pub fn tune(&self, mut cfg: SimConfig) -> SimConfig {
        apply_quick(&mut cfg, self.quick);
        cfg
    }

    /// Maps `f` over every prepared workload in parallel; results are in
    /// workload order regardless of scheduling.
    pub fn map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Prep) -> R + Sync,
    {
        run_indexed(self.threads, self.preps.len(), |i| f(&self.preps[i]))
    }

    /// Executes the (workload × run) matrix, fanning cells out across the
    /// engine's threads. Quick mode caps each run's `max_ops`.
    ///
    /// Cells are claimed with the workload as the fastest-varying
    /// dimension, so concurrently claimed cells land on distinct
    /// workloads and the per-[`Prep`] artifact caches see one miss per
    /// (policy, style) each instead of racing duplicate computations.
    pub fn run(&self, runs: &[Run]) -> RunMatrix {
        self.try_run(runs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Engine::run`] — the `mg_api` session path. A failing
    /// (or panicking) cell fails the whole matrix with the first error in
    /// claim order; successful sibling cells are discarded.
    ///
    /// # Errors
    ///
    /// Whatever the failing cell's [`Prep`] accessor raised, or
    /// [`HarnessError::Panicked`] for a panicking cell.
    pub fn try_run(&self, runs: &[Run]) -> Result<RunMatrix, HarnessError> {
        if self.fuse {
            return self.try_run_fused(runs);
        }
        let n_preps = self.preps.len();
        let cells = n_preps * runs.len();
        let stats = run_indexed(self.threads, cells, |claim| {
            let prep = &self.preps[claim % n_preps];
            let run = &runs[claim / n_preps];
            let cfg = self.tune(run.cfg.clone());
            let stats = std::panic::catch_unwind(AssertUnwindSafe(|| match &run.image {
                Image::Baseline => prep.try_run_baseline(&cfg),
                Image::MiniGraph { policy, style } => prep.try_run_policy(policy, *style, &cfg),
            }))
            .unwrap_or_else(|panic| {
                Err(HarnessError::Panicked {
                    workload: prep.name.clone(),
                    message: panic_message(panic.as_ref()),
                })
            })?;
            if let Some(observer) = &self.observer {
                observer(&CellDone {
                    workload: prep.name.clone(),
                    label: run.label.clone(),
                    cycles: stats.cycles,
                    ops: stats.ops,
                });
            }
            Ok(stats)
        });
        // stats[claim] belongs to (prep = claim % n_preps, run = claim /
        // n_preps); scatter into workload-major rows.
        let mut rows: Vec<RunRow> = self
            .preps
            .iter()
            .map(|prep| RunRow {
                prep: Arc::clone(prep),
                stats: Vec::with_capacity(runs.len()),
            })
            .collect();
        for (claim, s) in stats.into_iter().enumerate() {
            rows[claim % n_preps].stats.push(s?);
        }
        Ok(RunMatrix { labels: runs.iter().map(|r| r.label.clone()).collect(), rows })
    }

    /// Fused [`Engine::try_run`]: matrix cells sharing one (workload,
    /// image) pair — a sweep's configurations over one cell group — run
    /// as **one fused pass** over that image's trace (see
    /// [`crate::fused`]). Work units are (workload, image) groups rather
    /// than single cells; results are scattered back to spec order, so
    /// the matrix is bit-identical to the unfused path.
    fn try_run_fused(&self, runs: &[Run]) -> Result<RunMatrix, HarnessError> {
        let n_preps = self.preps.len();
        // Group run columns by image, preserving first-seen order.
        let mut groups: Vec<(&Image, Vec<usize>)> = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            match groups.iter_mut().find(|(img, _)| **img == run.image) {
                Some((_, cols)) => cols.push(i),
                None => groups.push((&run.image, vec![i])),
            }
        }
        // One work unit per (workload, image group), workload
        // fastest-varying like the unfused claim order.
        let units = n_preps * groups.len();
        let results = run_indexed(self.threads, units, |claim| {
            let prep = &self.preps[claim % n_preps];
            let (image, cols) = &groups[claim / n_preps];
            let cfgs: Vec<SimConfig> =
                cols.iter().map(|&i| self.tune(runs[i].cfg.clone())).collect();
            let stats = std::panic::catch_unwind(AssertUnwindSafe(|| match image {
                Image::Baseline => prep.try_run_baseline_sweep(&cfgs),
                Image::MiniGraph { policy, style } => {
                    prep.try_run_policy_sweep(policy, *style, &cfgs)
                }
            }))
            .unwrap_or_else(|panic| {
                Err(HarnessError::Panicked {
                    workload: prep.name.clone(),
                    message: panic_message(panic.as_ref()),
                })
            })?;
            if let Some(observer) = &self.observer {
                for (&col, s) in cols.iter().zip(&stats) {
                    observer(&CellDone {
                        workload: prep.name.clone(),
                        label: runs[col].label.clone(),
                        cycles: s.cycles,
                        ops: s.ops,
                    });
                }
            }
            Ok(stats)
        });
        let mut rows: Vec<RunRow> = self
            .preps
            .iter()
            .map(|prep| RunRow {
                prep: Arc::clone(prep),
                stats: vec![SimStats::default(); runs.len()],
            })
            .collect();
        for (claim, unit) in results.into_iter().enumerate() {
            let (_, cols) = &groups[claim / n_preps];
            for (&col, s) in cols.iter().zip(unit?) {
                rows[claim % n_preps].stats[col] = s;
            }
        }
        Ok(RunMatrix { labels: runs.iter().map(|r| r.label.clone()).collect(), rows })
    }
}

/// Default fusion switch: on unless the `MG_NO_FUSE` environment
/// variable is set (to anything). The CLI's `--no-fuse` flag sets the
/// variable so the whole process — including `mg serve` worker engines —
/// inherits the choice.
pub fn fuse_default() -> bool {
    std::env::var_os("MG_NO_FUSE").is_none()
}

/// Default worker-thread count: `MG_THREADS` if set, else available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MG_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Computes `f(0..count)` across up to `threads` scoped workers and
/// returns the results in index order. With `threads == 1` (or a single
/// item) everything runs on the calling thread; `f` must be deterministic
/// for parallel and sequential execution to agree.
fn run_indexed<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(count);
    results.resize_with(count, || None);
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    done.push((i, f(i)));
                }
                let mut slots = slots.lock().unwrap();
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all cells computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extra(name: &str) -> ExtraSource {
        ExtraSource {
            name: name.into(),
            suite: Suite::MiBench,
            stable_id: format!("custom/{name}@r1"),
            build: Arc::new(|_| panic!("never built in this test")),
        }
    }

    #[test]
    fn shadowed_and_superseded_extras_do_not_resolve() {
        // "crc32" is a registry name: the registry wins, so the extra
        // must not contribute a (duplicate) default-set row. Duplicate
        // extra names keep only the last registration.
        let extras = vec![extra("crc32"), extra("acme.one"), extra("acme.one")];
        let kept: Vec<&str> =
            EngineBuilder::unshadowed_extras(&extras).map(|x| x.name.as_str()).collect();
        assert_eq!(kept, ["acme.one"]);
        // Exactly one survivor, and it is the later registration.
        let survivor = EngineBuilder::unshadowed_extras(&extras).next().unwrap();
        assert!(std::ptr::eq(survivor, &extras[2]));
    }
}
