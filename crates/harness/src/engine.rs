//! Stage two of the experiment flow: the run engine.
//!
//! An [`Engine`] owns a set of prepared workloads ([`Prep`]) and executes
//! matrices of timing-simulation runs — the cross product of its
//! workloads with a list of [`Run`] specifications — fanning the work out
//! across OS threads with **deterministic** results: every cell of the
//! returned matrix is a pure function of (workload, run spec), and cells
//! are stored by index, so a parallel run is bit-identical to a
//! sequential one (`threads = 1`).
//!
//! ```no_run
//! use mg_harness::{Engine, Run};
//! use mg_core::{Policy, RewriteStyle};
//! use mg_uarch::SimConfig;
//!
//! let engine = Engine::builder().workloads(&["crc32", "rgba.conv"]).build();
//! let matrix = engine.run(&[
//!     Run::baseline(SimConfig::baseline()),
//!     Run::mini_graph(Policy::integer_memory(), RewriteStyle::NopPadded,
//!                     SimConfig::mg_integer_memory()),
//! ]);
//! for row in &matrix.rows {
//!     println!("{}: {:.3}x", row.prep.name, row.speedup_over(0, 1));
//! }
//! ```

use crate::pool::{PoolKey, PrepPool};
use crate::prep::{by_suite, BuildFn, Prep};
use crate::prep_cache::PrepCache;
use crate::quick::{apply_quick, quick_mode};
use crate::report::speedup;
use mg_core::{Policy, RewriteStyle};
use mg_uarch::{SimConfig, SimStats};
use mg_workloads::{Input, Suite, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The image a run simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum Image {
    /// The original program.
    Baseline,
    /// The program rewritten with the mini-graphs `policy` selects.
    MiniGraph {
        /// The selection policy.
        policy: Policy,
        /// The rewrite style (nop-padded or compressed).
        style: RewriteStyle,
    },
}

/// One cell of a run matrix: which image to simulate on which machine.
#[derive(Clone)]
pub struct Run {
    /// Display label (defaults to `"baseline"` / `"mg"`).
    pub label: String,
    /// The image under test.
    pub image: Image,
    /// The machine configuration.
    pub cfg: SimConfig,
}

impl Run {
    /// A baseline-image run under `cfg`.
    pub fn baseline(cfg: SimConfig) -> Run {
        Run { label: "baseline".into(), image: Image::Baseline, cfg }
    }

    /// A mini-graph run: select under `policy`, rewrite with `style`,
    /// simulate under `cfg`.
    pub fn mini_graph(policy: Policy, style: RewriteStyle, cfg: SimConfig) -> Run {
        Run { label: "mg".into(), image: Image::MiniGraph { policy, style }, cfg }
    }

    /// Sets the display label.
    pub fn label(mut self, label: impl Into<String>) -> Run {
        self.label = label.into();
        self
    }
}

/// One workload's row of a completed matrix: its stats per [`Run`], in
/// spec order.
pub struct RunRow {
    /// The prepared workload this row belongs to.
    pub prep: Arc<Prep>,
    /// One result per run spec, in the order given to [`Engine::run`].
    pub stats: Vec<SimStats>,
}

impl RunRow {
    /// Speedup of run `of` relative to run `over` (IPC ratio over original
    /// program instructions; see [`speedup`]).
    pub fn speedup_over(&self, over: usize, of: usize) -> f64 {
        speedup(&self.stats[over], &self.stats[of])
    }
}

/// A completed (workload × run) matrix, in deterministic order: rows
/// follow the engine's workload order, columns the run-spec order.
pub struct RunMatrix {
    /// The run labels, in column order.
    pub labels: Vec<String>,
    /// One row per workload.
    pub rows: Vec<RunRow>,
}

impl RunMatrix {
    /// Rows grouped by suite, preserving row order.
    pub fn by_suite(&self) -> Vec<(Suite, Vec<&RunRow>)> {
        Suite::ALL
            .iter()
            .map(|&s| (s, self.rows.iter().filter(|r| r.prep.suite == s).collect()))
            .collect()
    }

    /// The row for a named workload.
    pub fn row(&self, name: &str) -> Option<&RunRow> {
        self.rows.iter().find(|r| r.prep.name == name)
    }
}

enum Source {
    Registered(Workload),
    Custom { name: String, suite: Suite, build: BuildFn },
}

/// One completed matrix cell, reported to a [`CellObserver`] as workers
/// finish it (completion order, not matrix order).
#[derive(Clone, Debug)]
pub struct CellDone {
    /// Workload name of the cell's row.
    pub workload: String,
    /// Label of the cell's [`Run`] spec.
    pub label: String,
    /// Simulated cycles of the cell.
    pub cycles: u64,
    /// Committed fetched operations of the cell.
    pub ops: u64,
}

/// Callback invoked by [`Engine::run`] for every cell the moment a worker
/// completes it. Called from worker threads, concurrently and in
/// completion order; the deterministic matrix itself is unaffected.
/// `mg serve` uses this to stream per-cell progress to clients while a
/// request is still running.
pub type CellObserver = Arc<dyn Fn(&CellDone) + Send + Sync>;

/// Configures and builds an [`Engine`]. See [`Engine::builder`].
pub struct EngineBuilder {
    input: Input,
    sources: Vec<Source>,
    threads: usize,
    quick: bool,
    cache_dir: Option<PathBuf>,
    pool: Option<Arc<PrepPool>>,
    observer: Option<CellObserver>,
}

impl EngineBuilder {
    fn new() -> EngineBuilder {
        EngineBuilder {
            input: Input::reference(),
            sources: Vec::new(),
            threads: default_threads(),
            quick: quick_mode(),
            cache_dir: None,
            pool: None,
            observer: None,
        }
    }

    /// Sets the workload input (default: [`Input::reference`]).
    pub fn input(mut self, input: Input) -> EngineBuilder {
        self.input = input;
        self
    }

    /// Restricts the engine to the named registered workloads, in the
    /// given order.
    ///
    /// # Panics
    ///
    /// Panics if a name is not registered.
    pub fn workloads(mut self, names: &[&str]) -> EngineBuilder {
        for name in names {
            let w = mg_workloads::by_name(name)
                .unwrap_or_else(|| panic!("workload {name:?} is not registered"));
            self.sources.push(Source::Registered(w));
        }
        self
    }

    /// Adds every registered workload of `suite`.
    pub fn suite(mut self, suite: Suite) -> EngineBuilder {
        self.sources.extend(
            mg_workloads::all()
                .into_iter()
                .filter(|w| w.suite == suite)
                .map(Source::Registered),
        );
        self
    }

    /// Adds an ad-hoc program under `name`, built by `build` — the same
    /// preparation flow registered workloads get.
    pub fn program(
        mut self,
        name: impl Into<String>,
        suite: Suite,
        build: impl Fn(&Input) -> (mg_isa::Program, mg_isa::Memory) + Send + Sync + 'static,
    ) -> EngineBuilder {
        self.sources.push(Source::Custom { name: name.into(), suite, build: Arc::new(build) });
        self
    }

    /// Caps worker threads (default: available parallelism, overridable
    /// with `MG_THREADS`). `1` forces fully sequential execution.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads.max(1);
        self
    }

    /// Forces quick mode on or off (default: the `MG_QUICK` environment
    /// flag; see [`quick_mode`]). Quick mode caps simulated operations
    /// per run.
    pub fn quick(mut self, quick: bool) -> EngineBuilder {
        self.quick = quick;
        self
    }

    /// Enables (or disables) the persistent artifact cache at its default
    /// root ([`PrepCache::default_root`]). Off by default — library and
    /// test contexts stay hermetic; the experiment binaries turn it on.
    /// `MG_NO_CACHE=1` overrides even an explicit `cache(true)` as an
    /// operational kill switch.
    pub fn cache(self, enabled: bool) -> EngineBuilder {
        if enabled {
            self.cache_dir(PrepCache::default_root())
        } else {
            EngineBuilder { cache_dir: None, ..self }
        }
    }

    /// Enables the persistent artifact cache rooted at `dir` (see
    /// [`EngineBuilder::cache`]).
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Shares warm preps through `pool` (see [`PrepPool`]): registered
    /// workloads whose (input, trace budget, cache root) match an entry
    /// already prepared — by this engine or any other holding the same
    /// pool — reuse it instead of re-preparing. Ad-hoc
    /// [`EngineBuilder::program`] sources are never pooled (closure
    /// identity is unverifiable).
    pub fn pool(mut self, pool: Arc<PrepPool>) -> EngineBuilder {
        self.pool = Some(pool);
        self
    }

    /// Registers a per-cell completion callback for [`Engine::run`] (see
    /// [`CellObserver`]).
    pub fn observer(mut self, observer: CellObserver) -> EngineBuilder {
        self.observer = Some(observer);
        self
    }

    /// Prepares all selected workloads — every registered one if none
    /// were named — in parallel, and returns the engine.
    ///
    /// A quick engine also caps its preps' recorded traces at the quick
    /// op limit: its simulations replay at most that prefix, so
    /// functionally executing (and storing) the rest of the committed
    /// path would be pure waste.
    pub fn build(self) -> Engine {
        let EngineBuilder { input, mut sources, threads, quick, cache_dir, pool, observer } =
            self;
        if sources.is_empty() {
            sources.extend(mg_workloads::all().into_iter().map(Source::Registered));
        }
        let cache = match cache_dir {
            Some(dir) if !PrepCache::disabled_by_env() => Some(Arc::new(PrepCache::new(dir))),
            _ => None,
        };
        // Everything a pooled prep's identity depends on beyond the
        // workload itself: the trace budget the engine will apply and the
        // resolved cache root.
        let trace_budget =
            if quick { crate::quick::QUICK_MAX_OPS } else { crate::prep::STEP_BUDGET };
        let cache_root = cache.as_ref().map(|c| c.root().to_path_buf());
        let prepare = |source: &Source| {
            let prep = match source {
                Source::Registered(w) => Prep::new(w, &input),
                Source::Custom { name, suite, build } => {
                    Prep::with_build(name.clone(), *suite, Arc::clone(build), &input)
                }
            };
            let prep =
                if quick { prep.with_trace_budget(crate::quick::QUICK_MAX_OPS) } else { prep };
            prep.with_cache(cache.clone())
        };
        let sources: Vec<Source> = sources;
        let preps: Vec<Arc<Prep>> = run_indexed(threads, sources.len(), |i| {
            let source = &sources[i];
            match (&pool, source) {
                (Some(pool), Source::Registered(w)) => {
                    let key =
                        PoolKey::new(w.stable_id(), &input, trace_budget, cache_root.clone());
                    pool.get_or_prepare(key, || prepare(source))
                }
                _ => Arc::new(prepare(source)),
            }
        });
        Engine { preps, threads, quick, observer }
    }
}

/// The staged experiment engine: prepared workloads plus a thread budget.
pub struct Engine {
    preps: Vec<Arc<Prep>>,
    threads: usize,
    quick: bool,
    observer: Option<CellObserver>,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The prepared workloads, in registration (or selection) order.
    pub fn preps(&self) -> &[Arc<Prep>] {
        &self.preps
    }

    /// The prepared workload named `name`.
    pub fn prep(&self, name: &str) -> Option<&Arc<Prep>> {
        self.preps.iter().find(|p| p.name == name)
    }

    /// Whether quick mode is active (see [`EngineBuilder::quick`]).
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// The engine's prepared workloads grouped by suite.
    pub fn by_suite(&self) -> Vec<(Suite, Vec<&Prep>)> {
        by_suite(&self.preps)
    }

    /// Applies the engine's quick-mode cap to a configuration.
    pub fn tune(&self, mut cfg: SimConfig) -> SimConfig {
        apply_quick(&mut cfg, self.quick);
        cfg
    }

    /// Maps `f` over every prepared workload in parallel; results are in
    /// workload order regardless of scheduling.
    pub fn map<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Prep) -> R + Sync,
    {
        run_indexed(self.threads, self.preps.len(), |i| f(&self.preps[i]))
    }

    /// Executes the (workload × run) matrix, fanning cells out across the
    /// engine's threads. Quick mode caps each run's `max_ops`.
    ///
    /// Cells are claimed with the workload as the fastest-varying
    /// dimension, so concurrently claimed cells land on distinct
    /// workloads and the per-[`Prep`] artifact caches see one miss per
    /// (policy, style) each instead of racing duplicate computations.
    pub fn run(&self, runs: &[Run]) -> RunMatrix {
        let n_preps = self.preps.len();
        let cells = n_preps * runs.len();
        let stats = run_indexed(self.threads, cells, |claim| {
            let prep = &self.preps[claim % n_preps];
            let run = &runs[claim / n_preps];
            let cfg = self.tune(run.cfg.clone());
            let stats = match &run.image {
                Image::Baseline => prep.run_baseline(&cfg),
                Image::MiniGraph { policy, style } => prep.run_policy(policy, *style, &cfg),
            };
            if let Some(observer) = &self.observer {
                observer(&CellDone {
                    workload: prep.name.clone(),
                    label: run.label.clone(),
                    cycles: stats.cycles,
                    ops: stats.ops,
                });
            }
            stats
        });
        // stats[claim] belongs to (prep = claim % n_preps, run = claim /
        // n_preps); scatter into workload-major rows.
        let mut rows: Vec<RunRow> = self
            .preps
            .iter()
            .map(|prep| RunRow {
                prep: Arc::clone(prep),
                stats: Vec::with_capacity(runs.len()),
            })
            .collect();
        for (claim, s) in stats.into_iter().enumerate() {
            rows[claim % n_preps].stats.push(s);
        }
        RunMatrix { labels: runs.iter().map(|r| r.label.clone()).collect(), rows }
    }
}

/// Default worker-thread count: `MG_THREADS` if set, else available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MG_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Computes `f(0..count)` across up to `threads` scoped workers and
/// returns the results in index order. With `threads == 1` (or a single
/// item) everything runs on the calling thread; `f` must be deterministic
/// for parallel and sequential execution to agree.
fn run_indexed<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(count);
    results.resize_with(count, || None);
    let slots = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    done.push((i, f(i)));
                }
                let mut slots = slots.lock().unwrap();
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all cells computed")).collect()
}
