//! A fixed-width table printer for experiment output.

/// A fixed-width table printer for experiment output.
#[derive(Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns. Column widths cover the widest row,
    /// so rows longer than the header get real columns of their own
    /// rather than reusing the last header column's width.
    pub fn render(&self) -> String {
        let ncols =
            self.rows.iter().map(Vec::len).chain([self.header.len()]).max().unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for r in std::iter::once(&self.header).chain(&self.rows) {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "ipc"]);
        t.row(vec!["crafty.bits".into(), "2.10".into()]);
        t.row(vec!["mcf".into(), "0.27".into()]);
        let s = t.render();
        assert!(s.contains("crafty.bits"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn wide_rows_get_their_own_column_widths() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into(), "y".into(), "a-much-longer-extra-cell".into(), "z".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into(), "4444".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Both wide rows align their extra columns with each other: the
        // last cell starts at the same offset in each.
        let off3 = lines[2].find('z').unwrap();
        let off4 = lines[3].find("4444").unwrap();
        assert_eq!(off3, off4 + 3, "extra columns are right-aligned consistently");
        // And the extra column is as wide as its widest cell, not the
        // last header column.
        assert!(lines[2].contains("a-much-longer-extra-cell  "));
    }
}
