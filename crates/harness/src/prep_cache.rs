//! Persistent on-disk cache of preparation artifacts.
//!
//! [`Prep`](crate::prep::Prep) memoizes per-policy selections, rewritten
//! images, and dynamic traces *in process*; this module extends that memo
//! across processes. A [`PrepCache`] serializes each artifact (via the
//! `mg-isa::wire` codec) to a versioned file under `target/mg-cache/`, so
//! repeated experiment sweeps — and the CI smoke jobs that rerun every
//! figure — skip recomputing selection, rewriting, and functional trace
//! recording entirely. Timing simulation itself is never cached: it *is*
//! the experiment.
//!
//! # Key and invalidation scheme (see `DESIGN.md` §5)
//!
//! Every artifact key starts from the owning prep's **fingerprint**, an
//! FNV-1a hash over
//!
//! 1. the cache schema version ([`CACHE_SCHEMA_VERSION`]),
//! 2. the `mg-harness` crate version,
//! 3. the opcode-set fingerprint (`mg_isa::wire::opcode_fingerprint`),
//! 4. the workload registry version (`mg_workloads::REGISTRY_VERSION`),
//! 5. the workload's stable id and its [`Input`](mg_workloads::Input)
//!    (seed, scale),
//! 6. the built program image's exact encoding, and
//! 7. the candidate-enumeration size
//!    ([`ENUMERATION_SIZE`](crate::prep::ENUMERATION_SIZE)).
//!
//! to which each artifact appends its own coordinates: the wire-encoded
//! [`Policy`] (selections), plus the [`RewriteStyle`] and the trace budget
//! (images and traces). Artifacts produced by a non-default
//! [`Selector`](mg_core::Selector) additionally append the selector id —
//! appended *only* when the id differs from
//! [`GREEDY_SELECTOR_ID`](mg_core::GREEDY_SELECTOR_ID), so greedy keys
//! are byte-identical to the pre-selector layout and new selection
//! policies can never poison (or be poisoned by) cached greedy
//! artifacts. The fingerprint deliberately hashes the *program
//! image* rather than trusting names: editing a kernel invalidates its
//! artifacts immediately, while memory-image (data generation) changes are
//! covered by the registry version, whose bump is forced by the committed
//! workload checksum table (`crates/workloads/tests/checksums.rs`).
//! Selection/rewrite/trace *algorithm* changes must bump
//! [`CACHE_SCHEMA_VERSION`]; the golden-stats regression tests are the
//! tripwire that such a change happened.
//!
//! Files are named by the FNV hash of the full key, and the full key bytes
//! are stored in each file's header and verified on load — a hash
//! collision degrades to a miss, never to a wrong artifact. Every file
//! ends in a whole-file FNV-1a checksum trailer, verified before any
//! byte reaches the payload decoder: a flipped bit that would still
//! decode structurally (the codec cannot range-check cross-references)
//! is a miss, never a wrong prep. Writes go to a
//! unique temp file renamed into place, so concurrent writers (the
//! engine's worker threads, or parallel CI jobs sharing a target dir)
//! race benignly: both compute the identical artifact, last rename wins,
//! and readers only ever see complete files. Any read error — truncation,
//! foreign bytes, corruption, stale schema — is a miss; the artifact is
//! recomputed and the file overwritten.

use crate::prep::MgImage;
use mg_core::{Policy, RewriteStyle, Selection};
use mg_isa::wire::{self, Wire, Writer};
use mg_profile::Trace;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump when the meaning of cached bytes changes: a new wire layout, or a
/// behavioural change to selection, rewriting, or trace recording.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Magic bytes opening every cache file.
const MAGIC: &[u8; 4] = b"MGC\x01";

/// Traces longer than this many ops are not persisted (a full-size trace
/// can run to hundreds of millions of ops; writing those would trade a
/// recomputation for disk churn of the same magnitude). Quick-mode traces
/// are four orders of magnitude below this bound.
pub const TRACE_STORE_CAP_OPS: u64 = 2_000_000;

/// Artifact kinds, used as a file-name prefix and a header tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Selection,
    Trace,
    Image,
}

impl Kind {
    fn tag(self) -> u8 {
        match self {
            Kind::Selection => 1,
            Kind::Trace => 2,
            Kind::Image => 3,
        }
    }

    fn prefix(self) -> &'static str {
        match self {
            Kind::Selection => "sel",
            Kind::Trace => "trace",
            Kind::Image => "img",
        }
    }
}

/// Aggregate cache statistics (for `mg cache stats`).
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Cached selection files.
    pub selections: u64,
    /// Cached trace files.
    pub traces: u64,
    /// Cached image files.
    pub images: u64,
    /// Files that are none of the known kinds (foreign or stale layouts).
    pub other: u64,
    /// Total bytes across all files.
    pub bytes: u64,
}

impl CacheStats {
    /// Total files of any kind.
    pub fn files(&self) -> u64 {
        self.selections + self.traces + self.images + self.other
    }
}

/// A persistent artifact cache rooted at one directory.
///
/// Cheap to clone conceptually — share it across preps with `Arc`.
#[derive(Debug)]
pub struct PrepCache {
    root: PathBuf,
    /// Read-through second level (see [`PrepCache::with_fallback`]):
    /// a primary miss falls through here, and a fallback hit is copied
    /// back into the primary root. `None` in the single-root case.
    fallback: Option<Box<PrepCache>>,
    /// Deterministic fault schedule for the write path (see
    /// [`PrepCache::with_fault_plan`]); `None` in production.
    fault_plan: Option<std::sync::Arc<mg_fault::FaultPlan>>,
}

/// Uniquifier for temp-file names within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl PrepCache {
    /// Opens (lazily — no I/O happens until the first store) a cache
    /// rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> PrepCache {
        PrepCache { root: root.into(), fallback: None, fault_plan: None }
    }

    /// Chains a shared read-through root behind this cache: a load that
    /// misses the primary root is retried against `root`, and a hit
    /// there is copied (byte-identical, temp file + rename) into the
    /// primary root before it is returned; stores land in **both**
    /// roots. This is the cluster's cache topology — each shard owns a
    /// private primary root (so shard-local churn stays local) in front
    /// of one shared root that accumulates every shard's artifacts, and
    /// a workload re-routed to a fresh shard finds its preparation
    /// already paid for.
    pub fn with_fallback(mut self, root: impl Into<PathBuf>) -> PrepCache {
        self.fallback = Some(Box::new(PrepCache::new(root)));
        self
    }

    /// The shared read-through root, if one is chained.
    pub fn fallback_root(&self) -> Option<&Path> {
        self.fallback.as_deref().map(PrepCache::root)
    }

    /// Installs a deterministic fault plan: stores consult
    /// `harness.cache.write_fail` (the write is skipped, degrading to a
    /// recompute on the next load) and `harness.cache.corrupt` (one byte
    /// of the landed file is flipped *after* the rename, so the next
    /// load must reject it as a miss). Both faults must be invisible to
    /// results — the cache's own contract is that any bad file is a
    /// miss, never an error or a wrong artifact.
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<mg_fault::FaultPlan>) -> PrepCache {
        self.fault_plan = Some(plan);
        self
    }

    /// The default cache root: `$MG_CACHE_DIR`, or `target/mg-cache`
    /// relative to the current directory.
    pub fn default_root() -> PathBuf {
        match std::env::var_os("MG_CACHE_DIR") {
            Some(d) if !d.is_empty() => PathBuf::from(d),
            _ => PathBuf::from("target").join("mg-cache"),
        }
    }

    /// Whether the environment disables the cache (`MG_NO_CACHE=1`).
    pub fn disabled_by_env() -> bool {
        matches!(
            std::env::var("MG_NO_CACHE").as_deref().map(str::trim),
            Ok("1") | Ok("true") | Ok("yes")
        )
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The versioned directory artifacts live in.
    fn dir(&self) -> PathBuf {
        self.root.join(format!("v{CACHE_SCHEMA_VERSION}"))
    }

    fn file_path(&self, kind: Kind, key: &[u8]) -> PathBuf {
        self.dir().join(format!("{}-{:016x}.bin", kind.prefix(), wire::fnv1a(key)))
    }

    /// Loads an artifact: the primary root first, then the read-through
    /// fallback (whose hit repopulates the primary root byte-for-byte).
    fn load<T: Wire>(&self, kind: Kind, key: &[u8]) -> Option<T> {
        if let Some(v) = self.load_local(kind, key) {
            return Some(v);
        }
        let fb = self.fallback.as_ref()?;
        let v = fb.load_local(kind, key)?;
        // Copy the fallback's file (already checksum-verified by the
        // load above) into the primary root so the next lookup stays
        // local. Best effort: a failed copy just means another
        // fall-through later.
        if let Ok(bytes) = std::fs::read(fb.file_path(kind, key)) {
            self.write_bytes(kind, key, &bytes);
        }
        Some(v)
    }

    /// Loads and payload-decodes an artifact from this root only,
    /// verifying the whole-file checksum, the magic, the kind, and the
    /// full key. Any mismatch or error is a miss.
    fn load_local<T: Wire>(&self, kind: Kind, key: &[u8]) -> Option<T> {
        let bytes = std::fs::read(self.file_path(kind, key)).ok()?;
        // Checksum first: nothing downstream (including the payload
        // decoder, which cannot range-check cross-references) ever
        // sees a damaged byte.
        if bytes.len() < 8 {
            return None;
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        if trailer != &wire::fnv1a(body).to_le_bytes()[..] {
            return None;
        }
        let bytes = body;
        let mut r = wire::Reader::new(bytes);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8().ok()?;
        }
        if &magic != MAGIC || r.u8().ok()? != kind.tag() {
            return None;
        }
        let stored_key_len = r.seq_len().ok()?;
        if stored_key_len != key.len() {
            return None;
        }
        let mut stored_key = vec![0u8; stored_key_len];
        for b in &mut stored_key {
            *b = r.u8().ok()?;
        }
        if stored_key != key {
            return None; // hash collision: treat as miss
        }
        let v = T::take(&mut r).ok()?;
        r.is_exhausted().then_some(v)
    }

    /// Serializes and stores an artifact under `key` (temp file + rename;
    /// failures are ignored — the cache is an accelerator, not a store of
    /// record).
    fn store<T: Wire>(&self, kind: Kind, key: &[u8], value: &T) {
        if let Some(plan) = &self.fault_plan {
            if plan.fires(mg_fault::points::CACHE_WRITE_FAIL) {
                return; // an ignored write failure: next load recomputes
            }
        }
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u8(kind.tag());
        w.u64(key.len() as u64);
        w.raw(key);
        value.put(&mut w);
        // Whole-file checksum trailer: a flipped bit anywhere in the
        // body — including one that still decodes to a structurally
        // valid but semantically wrong artifact — must be a miss, not
        // a wrong prep (or a panic deep inside selection/rewriting).
        let mut bytes = w.into_bytes();
        let sum = wire::fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        self.write_bytes(kind, key, &bytes);
        if let Some(fb) = &self.fallback {
            // Stores populate both levels; the fault plan (injected
            // corruption below) stays scoped to the primary root, so a
            // corrupted shard root degrades to a shared-root hit.
            fb.write_bytes(kind, key, &bytes);
        }
        let path = self.file_path(kind, key);
        if let Some(plan) = &self.fault_plan {
            if plan.fires(mg_fault::points::CACHE_CORRUPT) {
                // Post-write corruption: flip one byte in place, at a
                // key-dependent offset so different artifacts corrupt
                // in different places (header, key, payload, or
                // trailer). The checksum must turn every one of these
                // into a miss on the next load.
                if let Ok(mut corrupted) = std::fs::read(&path) {
                    if !corrupted.is_empty() {
                        let at = (wire::fnv1a(key) as usize) % corrupted.len();
                        corrupted[at] ^= 0x40;
                        let _ = std::fs::write(&path, corrupted);
                    }
                }
            }
        }
    }

    /// Looks up a cached (greedy) selection.
    pub fn load_selection(&self, fingerprint: u64, policy: &Policy) -> Option<Selection> {
        self.load_selection_with(fingerprint, mg_core::GREEDY_SELECTOR_ID, policy)
    }

    /// Persists a (greedy) selection.
    pub fn store_selection(&self, fingerprint: u64, policy: &Policy, sel: &Selection) {
        self.store_selection_with(fingerprint, mg_core::GREEDY_SELECTOR_ID, policy, sel);
    }

    /// Looks up a cached selection produced by the selector named
    /// `selector_id` (see the module docs: the greedy id keys exactly
    /// like the id-less legacy layout).
    pub fn load_selection_with(
        &self,
        fingerprint: u64,
        selector_id: &str,
        policy: &Policy,
    ) -> Option<Selection> {
        self.load(Kind::Selection, &selection_key(fingerprint, selector_id, policy))
    }

    /// Persists a selection produced by the selector named `selector_id`.
    pub fn store_selection_with(
        &self,
        fingerprint: u64,
        selector_id: &str,
        policy: &Policy,
        sel: &Selection,
    ) {
        self.store(Kind::Selection, &selection_key(fingerprint, selector_id, policy), sel);
    }

    /// Looks up a cached baseline trace (prefix) recorded under `budget`.
    pub fn load_trace(&self, fingerprint: u64, budget: u64) -> Option<Trace> {
        self.load(Kind::Trace, &trace_key(fingerprint, budget))
    }

    /// Persists a baseline trace, unless it exceeds
    /// [`TRACE_STORE_CAP_OPS`].
    pub fn store_trace(&self, fingerprint: u64, budget: u64, trace: &Trace) {
        if trace.len() as u64 > TRACE_STORE_CAP_OPS {
            return;
        }
        self.store(Kind::Trace, &trace_key(fingerprint, budget), trace);
    }

    /// Looks up a cached rewritten image (program + trace + catalog)
    /// produced by the greedy selector.
    pub fn load_image(
        &self,
        fingerprint: u64,
        policy: &Policy,
        style: RewriteStyle,
        budget: u64,
    ) -> Option<MgImage> {
        self.load_image_with(fingerprint, mg_core::GREEDY_SELECTOR_ID, policy, style, budget)
    }

    /// Persists a (greedy) rewritten image, unless its trace exceeds
    /// [`TRACE_STORE_CAP_OPS`].
    pub fn store_image(
        &self,
        fingerprint: u64,
        policy: &Policy,
        style: RewriteStyle,
        budget: u64,
        img: &MgImage,
    ) {
        self.store_image_with(
            fingerprint,
            mg_core::GREEDY_SELECTOR_ID,
            policy,
            style,
            budget,
            img,
        );
    }

    /// Looks up a cached rewritten image produced by the selector named
    /// `selector_id`.
    pub fn load_image_with(
        &self,
        fingerprint: u64,
        selector_id: &str,
        policy: &Policy,
        style: RewriteStyle,
        budget: u64,
    ) -> Option<MgImage> {
        let (program, (trace, catalog)) = self
            .load(Kind::Image, &image_key(fingerprint, selector_id, policy, style, budget))?;
        Some(MgImage::new(program, trace, catalog))
    }

    /// Persists a rewritten image produced by the selector named
    /// `selector_id`, unless its trace exceeds [`TRACE_STORE_CAP_OPS`].
    pub fn store_image_with(
        &self,
        fingerprint: u64,
        selector_id: &str,
        policy: &Policy,
        style: RewriteStyle,
        budget: u64,
        img: &MgImage,
    ) {
        if img.trace.len() as u64 > TRACE_STORE_CAP_OPS {
            return;
        }
        let mut w = Writer::new();
        img.program.put(&mut w);
        img.trace.put(&mut w);
        img.catalog.put(&mut w);
        self.store_raw(
            Kind::Image,
            &image_key(fingerprint, selector_id, policy, style, budget),
            w,
        );
    }

    /// Lands an already-encoded cache file (checksum trailer included)
    /// under this root via the temp-file + rename discipline. Failures
    /// are ignored, as everywhere on the store path.
    fn write_bytes(&self, kind: Kind, key: &[u8], bytes: &[u8]) {
        let dir = self.dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let path = self.file_path(kind, key);
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
        let _ = std::fs::remove_file(&tmp); // no-op after a successful rename
    }

    /// Like [`PrepCache::store`] but for a pre-encoded payload.
    fn store_raw(&self, kind: Kind, key: &[u8], payload: Writer) {
        struct RawBytes(Vec<u8>);
        impl Wire for RawBytes {
            fn put(&self, w: &mut Writer) {
                w.raw(&self.0);
            }
            fn take(_: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
                unreachable!("raw payloads are decoded field-by-field")
            }
        }
        self.store(kind, key, &RawBytes(payload.into_bytes()));
    }

    /// Walks the whole cache root — the current schema directory, stale
    /// ones from older schema versions, and nested roots like the perf
    /// driver's sweep dir — and tallies files and bytes.
    pub fn stats(&self) -> CacheStats {
        fn walk(dir: &Path, s: &mut CacheStats) {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let Ok(meta) = entry.metadata() else { continue };
                if meta.is_dir() {
                    walk(&entry.path(), s);
                    continue;
                }
                if !meta.is_file() {
                    continue;
                }
                let name = entry.file_name();
                let name = name.to_string_lossy();
                s.bytes += meta.len();
                if name.starts_with("sel-") {
                    s.selections += 1;
                } else if name.starts_with("trace-") {
                    s.traces += 1;
                } else if name.starts_with("img-") {
                    s.images += 1;
                } else {
                    s.other += 1;
                }
            }
        }
        let mut s = CacheStats::default();
        walk(&self.root, &mut s);
        s
    }

    /// Deletes every cached artifact: all versioned directories under the
    /// root (current schema *and* stale older ones) plus nested cache
    /// roots (e.g. the perf driver's sweep dir). Foreign files placed
    /// directly in the root are left alone — `clear` only removes
    /// directories this cache layout owns, so a misdirected
    /// `MG_CACHE_DIR` cannot wipe unrelated data.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the directory not existing.
    pub fn clear(&self) -> std::io::Result<()> {
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let owned_dir = name == "perf-sweep"
                || (name.starts_with('v') && name[1..].chars().all(|c| c.is_ascii_digit()));
            if entry.metadata().map(|m| m.is_dir()).unwrap_or(false) && owned_dir {
                std::fs::remove_dir_all(entry.path())?;
            }
        }
        Ok(())
    }
}

fn selection_key(fingerprint: u64, selector_id: &str, policy: &Policy) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(fingerprint);
    policy.put(&mut w);
    // The selector id is appended only for non-default selectors: greedy
    // keys must stay byte-identical to the pre-selector layout so the
    // selector dimension cannot invalidate — or be served from — any
    // previously cached greedy artifact.
    if selector_id != mg_core::GREEDY_SELECTOR_ID {
        w.str(selector_id);
    }
    w.into_bytes()
}

fn trace_key(fingerprint: u64, budget: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(fingerprint);
    w.u64(budget);
    w.into_bytes()
}

fn image_key(
    fingerprint: u64,
    selector_id: &str,
    policy: &Policy,
    style: RewriteStyle,
    budget: u64,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(fingerprint);
    policy.put(&mut w);
    w.u8(match style {
        RewriteStyle::NopPadded => 0,
        RewriteStyle::Compressed => 1,
    });
    w.u64(budget);
    // Trailing for the same reason as in `selection_key`: greedy image
    // keys are byte-identical to the pre-selector layout.
    if selector_id != mg_core::GREEDY_SELECTOR_ID {
        w.str(selector_id);
    }
    w.into_bytes()
}

/// Computes a prep's cache fingerprint (see the module docs for the
/// ingredient list).
pub fn fingerprint(
    workload_id: &str,
    input: &mg_workloads::Input,
    prog: &mg_isa::Program,
    mem_hash: u64,
) -> u64 {
    let mut w = Writer::new();
    w.u32(CACHE_SCHEMA_VERSION);
    w.str(env!("CARGO_PKG_VERSION"));
    w.u64(wire::opcode_fingerprint());
    w.u32(mg_workloads::REGISTRY_VERSION);
    w.str(workload_id);
    w.u64(input.seed);
    w.u32(input.scale);
    prog.put(&mut w);
    // The initial data image ([`mg_isa::Memory::content_hash`]): without
    // it, a custom workload whose build closure changes only its data
    // generation would silently replay stale artifacts (registered
    // workloads additionally have the REGISTRY_VERSION + checksum-table
    // guard).
    w.u64(mem_hash);
    // The preparation knobs selections depend on: the enumeration size
    // and the profiling step budget (a truncated profile changes
    // candidate frequencies and therefore the correct selection).
    w.u64(crate::prep::ENUMERATION_SIZE as u64);
    w.u64(crate::prep::STEP_BUDGET);
    wire::fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm};

    fn tmp_cache(tag: &str) -> PrepCache {
        let dir =
            std::env::temp_dir().join(format!("mg-cache-test-{tag}-{}", std::process::id()));
        let c = PrepCache::new(&dir);
        c.clear().unwrap();
        c
    }

    fn sample_selection() -> Selection {
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 20);
        a.label("top");
        a.addl(reg(18), 2, reg(18));
        a.cmplt(reg(18), reg(5), reg(7));
        a.bne(reg(7), "top");
        a.halt();
        let prog = a.finish().unwrap();
        mg_core::extract(&prog, &mut mg_isa::Memory::new(), &Policy::default(), 100_000)
            .unwrap()
            .selection
    }

    #[test]
    fn selection_round_trips_and_misses_on_other_keys() {
        let c = tmp_cache("sel");
        let sel = sample_selection();
        let policy = Policy::default();
        assert!(c.load_selection(1, &policy).is_none(), "cold cache misses");
        c.store_selection(1, &policy, &sel);
        let back = c.load_selection(1, &policy).expect("warm cache hits");
        assert_eq!(wire::to_bytes(&back), wire::to_bytes(&sel), "bit-identical");
        assert!(c.load_selection(2, &policy).is_none(), "fingerprint isolates");
        assert!(c.load_selection(1, &Policy::integer()).is_none(), "policy isolates");
        assert_eq!(c.stats().selections, 1);
        c.clear().unwrap();
        assert!(c.load_selection(1, &policy).is_none(), "clear removes");
    }

    #[test]
    fn corrupt_files_read_as_misses() {
        let c = tmp_cache("corrupt");
        let policy = Policy::default();
        c.store_selection(9, &policy, &sample_selection());
        let path = c.file_path(
            Kind::Selection,
            &selection_key(9, mg_core::GREEDY_SELECTOR_ID, &policy),
        );
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, bytes).unwrap();
        assert!(c.load_selection(9, &policy).is_none(), "truncated file is a miss");
        std::fs::write(&path, b"not a cache file").unwrap();
        assert!(c.load_selection(9, &policy).is_none(), "foreign file is a miss");
        c.clear().unwrap();
    }

    #[test]
    fn fallback_reads_through_and_repopulates_the_primary() {
        let base =
            std::env::temp_dir().join(format!("mg-cache-test-fallback-{}", std::process::id()));
        let primary_root = base.join("shard0");
        let shared_root = base.join("shared");
        let _ = std::fs::remove_dir_all(&base);
        let sel = sample_selection();
        let policy = Policy::default();

        // Seed only the shared root (another shard's store).
        PrepCache::new(&shared_root).store_selection(7, &policy, &sel);

        let c = PrepCache::new(&primary_root).with_fallback(&shared_root);
        assert_eq!(c.fallback_root(), Some(shared_root.as_path()));
        let hit = c.load_selection(7, &policy).expect("read-through hit");
        assert_eq!(wire::to_bytes(&hit), wire::to_bytes(&sel), "bit-identical");
        // The fall-through repopulated the primary root byte-for-byte.
        let key = selection_key(7, mg_core::GREEDY_SELECTOR_ID, &policy);
        let local = c.file_path(Kind::Selection, &key);
        let shared_file = PrepCache::new(&shared_root).file_path(Kind::Selection, &key);
        assert_eq!(
            std::fs::read(&local).expect("primary populated").as_slice(),
            std::fs::read(&shared_file).unwrap().as_slice(),
        );

        // A fresh store lands in both roots.
        c.store_selection(8, &policy, &sel);
        assert!(
            PrepCache::new(&shared_root).load_selection(8, &policy).is_some(),
            "store populated the shared root too"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn selector_ids_isolate_but_greedy_keys_match_the_legacy_layout() {
        let policy = Policy::default();
        // The greedy id must key byte-identically to the pre-selector
        // layout (fingerprint + policy, nothing appended): an id-free
        // legacy key and a greedy-id key are the same bytes.
        let legacy = {
            let mut w = Writer::new();
            w.u64(11);
            policy.put(&mut w);
            w.into_bytes()
        };
        assert_eq!(
            selection_key(11, mg_core::GREEDY_SELECTOR_ID, &policy),
            legacy,
            "greedy selection keys are the legacy layout"
        );
        assert_ne!(
            selection_key(11, "tiling", &policy),
            legacy,
            "non-greedy selector ids isolate"
        );

        // End-to-end: a greedy store is visible through both entry
        // points, and a non-greedy store lives under its own key.
        let c = tmp_cache("selector-ids");
        let sel = sample_selection();
        c.store_selection(11, &policy, &sel);
        assert!(c.load_selection_with(11, mg_core::GREEDY_SELECTOR_ID, &policy).is_some());
        assert!(c.load_selection_with(11, "tiling", &policy).is_none(), "id isolates");
        let empty = Selection::default();
        c.store_selection_with(11, "tiling", &policy, &empty);
        let greedy_back = c.load_selection(11, &policy).expect("greedy artifact intact");
        assert_eq!(
            wire::to_bytes(&greedy_back),
            wire::to_bytes(&sel),
            "storing a non-greedy selection must not poison the greedy artifact"
        );
        c.clear().unwrap();
    }

    #[test]
    fn fingerprints_separate_programs_and_inputs() {
        let prog_a = {
            let mut a = Asm::new();
            a.li(reg(1), 1);
            a.halt();
            a.finish().unwrap()
        };
        let prog_b = {
            let mut a = Asm::new();
            a.li(reg(1), 2);
            a.halt();
            a.finish().unwrap()
        };
        let tiny = mg_workloads::Input::tiny();
        let reference = mg_workloads::Input::reference();
        let f = fingerprint("t/w@r1", &tiny, &prog_a, 0);
        assert_eq!(f, fingerprint("t/w@r1", &tiny, &prog_a, 0), "deterministic");
        assert_ne!(f, fingerprint("t/w@r1", &tiny, &prog_b, 0), "program image keys");
        assert_ne!(f, fingerprint("t/w@r1", &reference, &prog_a, 0), "input keys");
        assert_ne!(f, fingerprint("t/other@r1", &tiny, &prog_a, 0), "workload id keys");
        assert_ne!(f, fingerprint("t/w@r1", &tiny, &prog_a, 1), "data image keys");
    }
}
