//! Quick-mode plumbing and the tiny argument parser the experiment
//! binaries share.
//!
//! Quick mode caps simulated operations per run so every experiment
//! finishes in seconds. It is controlled by the `MG_QUICK` environment
//! variable (`1`/`true`/`yes`) — an explicit channel that criterion
//! wrappers and test harnesses cannot mis-parse from argv — or by the
//! `--quick` flag of the experiment binaries themselves, which parse
//! their own (known) arguments through [`CliArgs`].

use mg_uarch::SimConfig;

/// Operation cap applied by quick mode.
pub const QUICK_MAX_OPS: u64 = 30_000;

/// Whether the `MG_QUICK` environment flag requests quick mode.
///
/// Deliberately does **not** scan `std::env::args`: binaries opt into the
/// `--quick` flag via [`CliArgs`], while library/bench/test contexts
/// (whose argv belongs to their harness) can only be switched through the
/// environment.
pub fn quick_mode() -> bool {
    match std::env::var("MG_QUICK") {
        Ok(v) => matches!(v.trim(), "1" | "true" | "yes"),
        Err(_) => false,
    }
}

/// Applies the quick-mode operation cap to a configuration.
pub fn apply_quick(cfg: &mut SimConfig, quick: bool) {
    if quick {
        cfg.max_ops = QUICK_MAX_OPS;
    }
}

/// Arguments shared by the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    /// `--quick` (or `MG_QUICK=1`): cap simulated operations per run.
    pub quick: bool,
    /// `--best`: extra per-benchmark best-policy report (fig7 only).
    pub best: bool,
    /// `--threads N`: worker-thread override.
    pub threads: Option<usize>,
    /// `--no-cache` (or `MG_NO_CACHE=1`): disable the persistent artifact
    /// cache under `target/mg-cache/`.
    pub no_cache: bool,
}

impl CliArgs {
    /// Parses the binary's own argv (skipping the program name).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments, so typos fail
    /// loudly instead of silently running the full-size experiment.
    pub fn parse() -> CliArgs {
        let mut args = CliArgs { quick: quick_mode(), ..CliArgs::default() };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--best" => args.best = true,
                "--no-cache" => args.no_cache = true,
                "--threads" => {
                    let n = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads requires a positive integer");
                    args.threads = Some(n);
                }
                other => panic!(
                    "unknown argument {other:?} (expected --quick, --best, --no-cache, \
                     or --threads N)"
                ),
            }
        }
        args
    }

    /// An engine builder pre-configured from these arguments. The
    /// persistent artifact cache is on by default for binaries; `--no-cache`
    /// (or `MG_NO_CACHE=1`) turns it off.
    pub fn engine(&self) -> crate::engine::EngineBuilder {
        let mut b = crate::engine::Engine::builder().quick(self.quick).cache(!self.no_cache);
        if let Some(t) = self.threads {
            b = b.threads(t);
        }
        b
    }
}
