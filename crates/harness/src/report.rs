//! Shared measurement helpers for experiment reports.

use mg_uarch::SimStats;

/// Geometric mean of `xs` (1.0 for an empty slice).
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Speedup of `mg` over `base`, computed as the ratio of IPCs over
/// *original program* instructions. For full-trace runs both images
/// represent identical instruction streams and this equals the cycle
/// ratio; under `max_ops` truncation (quick mode) the IPC ratio correctly
/// normalizes for the differing amounts of represented work per fetched
/// operation.
pub fn speedup(base: &SimStats, mg: &SimStats) -> f64 {
    mg.ipc() / base.ipc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 1.0);
        assert!((gmean(&[1.0]) - 1.0).abs() < 1e-12);
    }
}
