//! placeholder
