//! Staged experiment engine for the mini-graphs reproduction.
//!
//! The experiment flow has two stages with very different costs:
//!
//! 1. **Preparation** ([`Prep`]) — build a workload, profile it, and
//!    enumerate its mini-graph candidates; memoize per-policy selections,
//!    rewritten images, and dynamic traces.
//! 2. **Simulation** ([`Engine`]) — run a matrix of (workload × [`Run`])
//!    timing simulations, fanned out across threads with deterministic
//!    result ordering: a parallel run is bit-identical to a sequential
//!    one because every cell is a pure function of its inputs.
//!
//! The unified `mg` CLI in `mg-bench` (`mg run <experiment>` and the
//! deprecated per-figure shims), the `mg serve` daemon, the criterion
//! benches, and the examples all build on this crate; each registry
//! experiment regenerates one table/figure of the paper's evaluation.
//! Long-running services share warm preps across engines through
//! [`PrepPool`] and stream per-cell completions through a
//! [`CellObserver`]. `README.md` shows the flow end-to-end and
//! `DESIGN.md` documents the engine's caching and determinism
//! contracts (§6 covers serving).
//!
//! # Example
//!
//! ```
//! use mg_harness::{Engine, Run};
//! use mg_core::{Policy, RewriteStyle};
//! use mg_uarch::SimConfig;
//!
//! // Two workloads, two machine configurations, one parallel fan-out.
//! let engine = Engine::builder()
//!     .workloads(&["bitcount", "crc32"])
//!     .input(mg_workloads::Input::tiny())
//!     .quick(true)
//!     .build();
//! let matrix = engine.run(&[
//!     Run::baseline(SimConfig::baseline()),
//!     Run::mini_graph(Policy::integer_memory(), RewriteStyle::NopPadded,
//!                     SimConfig::mg_integer_memory())
//!         .label("intmem"),
//! ]);
//! for row in &matrix.rows {
//!     assert!(row.stats[0].ipc() > 0.0);
//!     assert!(row.stats[1].handles > 0);
//! }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod engine;
pub mod error;
pub mod fused;
pub mod pool;
pub mod prep;
pub mod prep_cache;
pub mod quick;
pub mod report;
pub mod table;

pub use engine::{
    default_threads, CellDone, CellObserver, Engine, EngineBuilder, ExtraSource, Image, Run,
    RunMatrix, RunRow,
};
pub use error::{BuildError, HarnessError};
pub use fused::{run_fused, FUSE_CHUNK};
pub use pool::{PoolKey, PrepPool};
pub use prep::{by_suite, BuildFn, MgImage, Prep, ENUMERATION_SIZE, STEP_BUDGET};
pub use prep_cache::{CacheStats, PrepCache, CACHE_SCHEMA_VERSION};
pub use quick::{apply_quick, quick_mode, CliArgs, QUICK_MAX_OPS};
pub use report::{gmean, speedup};
pub use table::Table;
