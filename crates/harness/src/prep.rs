//! Stage one of the experiment flow: workload preparation.
//!
//! A [`Prep`] owns everything the simulation stages need and is computed
//! once per (workload, input): the program image, its CFG and basic-block
//! frequency profile, and the full candidate pool (enumerated at the
//! maximum size studied, so any smaller-size policy selects from the same
//! pool). On top of that it memoizes the per-policy [`Selection`]s, the
//! baseline trace, and the rewritten images with their traces — so a
//! matrix of simulation runs shares every artifact that does not depend
//! on the machine configuration.
//!
//! All caches are behind locks: a `Prep` is `Sync` and is shared freely
//! across the [`Engine`](crate::engine::Engine)'s worker threads. Every
//! cached artifact is a deterministic function of the preparation inputs,
//! so concurrent fills are benign (first writer wins; any loser computed
//! an identical value).

use crate::error::{BuildError, HarnessError};
use crate::prep_cache::{self, PrepCache};
use mg_core::{
    enumerate_candidates, rewrite, GreedySelector, MiniGraph, Policy, RewriteStyle,
    SelectInputs, Selection, Selector,
};
use mg_isa::{HandleCatalog, Memory, Program};
use mg_profile::{build_cfg, profile_program, record_trace, BlockProfile, Cfg, Trace};
use mg_uarch::{simulate_with, Predecode, SimConfig, SimStats};
use mg_workloads::{Input, Suite, Workload};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Functional-simulation step budget for profiling/tracing runs.
pub const STEP_BUDGET: u64 = 200_000_000;

/// The maximum mini-graph size candidates are enumerated at.
pub const ENUMERATION_SIZE: usize = 8;

/// Rewritten images (each holding a full dynamic trace) retained per
/// prep. Traces dominate memory on full-size inputs, so the cache is
/// bounded: FIFO eviction once this many (policy, style) keys are live.
/// Evicted images stay alive only while an in-flight run still holds
/// their `Arc`.
pub const IMAGE_CACHE_CAP: usize = 4;

/// Builds a fresh `(Program, Memory)` image for an [`Input`].
///
/// Registered workloads wrap their (infallible) `fn` pointer in `Ok`;
/// ad-hoc programs and `mg_api` workload sources can return any boxed
/// error, which preparation surfaces as [`HarnessError::Build`].
pub type BuildFn = Arc<dyn Fn(&Input) -> Result<(Program, Memory), BuildError> + Send + Sync>;

/// A rewritten image ready for timing simulation: the handle program, its
/// committed-path trace, and the catalog the image refers to.
pub struct MgImage {
    /// The rewritten (handle) program.
    pub program: Program,
    /// Its committed-path dynamic trace.
    pub trace: Trace,
    /// The mini-graph catalog the image's handles refer to.
    pub catalog: HandleCatalog,
    /// Lazily-built predecode plane shared by every simulation of this
    /// image (scalar runs and fused sweeps alike).
    predecode: OnceLock<Arc<Predecode>>,
}

impl MgImage {
    /// Wraps image artifacts for simulation.
    pub fn new(program: Program, trace: Trace, catalog: HandleCatalog) -> MgImage {
        MgImage { program, trace, catalog, predecode: OnceLock::new() }
    }

    /// The image's predecode plane, built on first use and shared by
    /// every subsequent simulation of this image.
    pub fn predecode(&self) -> Arc<Predecode> {
        Arc::clone(
            self.predecode
                .get_or_init(|| Arc::new(Predecode::new(&self.program, &self.catalog))),
        )
    }
}

/// A workload prepared for experimentation: profiled and with all legal
/// mini-graph candidates enumerated.
pub struct Prep {
    /// Workload name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// The original (baseline) program image.
    pub prog: Program,
    /// Static basic blocks of `prog`.
    pub cfg: Cfg,
    /// Execution frequencies per basic block (the profiling run).
    pub prof: BlockProfile,
    /// Total dynamic instructions of the profiling run (the coverage
    /// denominator).
    pub total_dyn: u64,
    /// All legal candidates (enumerated with `max_size` =
    /// [`ENUMERATION_SIZE`]).
    pub candidates: Vec<MiniGraph>,
    build: BuildFn,
    input: Input,
    /// Cap on recorded trace length (ops). Defaults to [`STEP_BUDGET`]
    /// (effectively unbounded); quick-mode engines lower it to the op cap
    /// their simulations consume, so preparation never functionally
    /// executes work no run will replay.
    trace_budget: u64,
    /// Stable identifier for cache keys and reports (see
    /// [`mg_workloads::stable_id`]; ad-hoc programs get `custom/<name>`).
    cache_id: String,
    /// Cache fingerprint over everything the artifacts depend on (see
    /// [`prep_cache::fingerprint`]).
    fingerprint: u64,
    /// Optional persistent artifact cache shared with other preps.
    cache: Option<Arc<PrepCache>>,
    // Memoized downstream artifacts (see module docs). Selections and
    // images carry a selector-id dimension so alternative selection
    // algorithms (see `mg_policy`) memoize alongside — never instead
    // of — the default greedy artifacts.
    selections: Mutex<HashMap<(String, Policy), Arc<Selection>>>,
    base_trace: OnceLock<Arc<Trace>>,
    /// Serializes fallible base-trace initialization: recording is the
    /// most expensive per-prep artifact and many matrix cells need it,
    /// so racers must block on one recording, not duplicate it (an
    /// `Err` releases the lock without caching anything).
    base_trace_init: Mutex<()>,
    /// Predecode plane of the baseline program, built on first use.
    base_predecode: OnceLock<Arc<Predecode>>,
    /// The (empty) catalog every baseline simulation shares.
    base_catalog: HandleCatalog,
    images: Mutex<ImageCache>,
}

/// Key of a memoized rewritten image: selector id, policy, style.
type ImageKey = (String, Policy, RewriteStyle);

/// Bounded FIFO cache of rewritten images (see [`IMAGE_CACHE_CAP`]).
#[derive(Default)]
struct ImageCache {
    map: HashMap<ImageKey, Arc<MgImage>>,
    order: VecDeque<ImageKey>,
}

impl ImageCache {
    fn get(&self, key: &ImageKey) -> Option<Arc<MgImage>> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: ImageKey, img: Arc<MgImage>) -> Arc<MgImage> {
        if let Some(existing) = self.map.get(&key) {
            return Arc::clone(existing); // first writer wins
        }
        while self.map.len() >= IMAGE_CACHE_CAP {
            let oldest = self.order.pop_front().expect("order tracks map");
            self.map.remove(&oldest);
        }
        self.order.push_back(key.clone());
        self.map.insert(key, Arc::clone(&img));
        img
    }
}

impl Prep {
    /// Profiles `w` on `input` and enumerates candidates. Registered
    /// workloads cache under their registry stable id; ad-hoc programs
    /// ([`Prep::with_build`]) under `custom/<name>`.
    pub fn new(w: &Workload, input: &Input) -> Prep {
        Prep::try_new(w, input).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::new`]: the same preparation, surfacing build and
    /// functional-execution failures as [`HarnessError`] instead of
    /// panicking (the `mg_api` session path).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Exec`] if the profiling run faults or exceeds its
    /// step budget (registered builders themselves are infallible).
    pub fn try_new(w: &Workload, input: &Input) -> Result<Prep, HarnessError> {
        let build = w.build;
        Prep::try_prepare(
            w.name.to_string(),
            w.suite,
            Arc::new(move |i: &Input| Ok(build(i))),
            input,
            w.stable_id(),
        )
    }

    /// Prepares an ad-hoc program (not in the workload registry) from any
    /// build closure — the same flow the examples use.
    pub fn with_build(
        name: impl Into<String>,
        suite: Suite,
        build: BuildFn,
        input: &Input,
    ) -> Prep {
        Prep::try_with_build(name, suite, build, input).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::with_build`]; the cache id is `custom/<name>`.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Build`] if `build` fails, [`HarnessError::Exec`]
    /// if the profiling run faults or exceeds its step budget.
    pub fn try_with_build(
        name: impl Into<String>,
        suite: Suite,
        build: BuildFn,
        input: &Input,
    ) -> Result<Prep, HarnessError> {
        let name = name.into();
        let cache_id = format!("custom/{name}");
        Prep::try_prepare(name, suite, build, input, cache_id)
    }

    /// Like [`Prep::try_with_build`] but with a caller-declared stable
    /// cache id (an [`ExtraSource`](crate::engine::ExtraSource) /
    /// `mg_api` workload source): the id keys the warm-prep pool and is
    /// folded into every persistent-cache fingerprint, so bumping it
    /// invalidates the source's cached artifacts exactly like a
    /// registry-version bump does for registered workloads.
    ///
    /// # Errors
    ///
    /// As [`Prep::try_with_build`].
    pub fn try_with_source(
        name: impl Into<String>,
        suite: Suite,
        build: BuildFn,
        input: &Input,
        stable_id: impl Into<String>,
    ) -> Result<Prep, HarnessError> {
        Prep::try_prepare(name.into(), suite, build, input, stable_id.into())
    }

    fn try_prepare(
        name: String,
        suite: Suite,
        build: BuildFn,
        input: &Input,
        cache_id: String,
    ) -> Result<Prep, HarnessError> {
        let (prog, mut mem) = build(input)
            .map_err(|source| HarnessError::Build { workload: name.clone(), source })?;
        // Hash the data image before profiling mutates it: the
        // fingerprint must cover the *initial* memory.
        let mem_hash = mem.content_hash();
        let cfg = build_cfg(&prog);
        let prof = profile_program(&prog, &mut mem, None, STEP_BUDGET).map_err(|source| {
            HarnessError::Exec { workload: name.clone(), phase: "profile", source }
        })?;
        let candidates = enumerate_candidates(&prog, &cfg, &prof, ENUMERATION_SIZE);
        let fingerprint = prep_cache::fingerprint(&cache_id, input, &prog, mem_hash);
        Ok(Prep {
            name,
            suite,
            prog,
            cfg,
            total_dyn: prof.total,
            prof,
            candidates,
            build,
            input: *input,
            trace_budget: STEP_BUDGET,
            cache_id,
            fingerprint,
            cache: None,
            selections: Mutex::new(HashMap::new()),
            base_trace: OnceLock::new(),
            base_trace_init: Mutex::new(()),
            base_predecode: OnceLock::new(),
            base_catalog: HandleCatalog::new(),
            images: Mutex::new(ImageCache::default()),
        })
    }

    /// Caps recorded traces at `ops` operations (a prefix of the full
    /// committed path). Intended for quick-mode engines whose simulations
    /// are op-capped anyway: a capped trace yields bit-identical
    /// simulation results for any run with `max_ops <= ops` while
    /// skipping the functional execution of the never-replayed tail.
    ///
    /// Call before the first trace is recorded (traces and images
    /// memoize); the [`Engine`](crate::engine::Engine) builder does this
    /// at preparation time.
    ///
    /// # Panics
    ///
    /// Panics if a trace has already been recorded: a budget applied
    /// after the fact would leave memoized full-length traces alongside
    /// capped ones, silently skewing any cross-image comparison.
    pub fn with_trace_budget(mut self, ops: u64) -> Prep {
        assert!(
            self.base_trace.get().is_none() && self.images.lock().unwrap().map.is_empty(),
            "with_trace_budget must be called before any trace is recorded"
        );
        self.trace_budget = ops;
        self
    }

    /// Attaches a persistent artifact cache (see
    /// [`crate::prep_cache`]): selections, baseline traces,
    /// and rewritten images are loaded from disk when present and stored
    /// after computation. The in-process memo caches sit in front, so the
    /// disk is consulted at most once per artifact per prep.
    ///
    /// Attach before the first artifact is requested; artifacts computed
    /// earlier stay memoized in-process but are not written back.
    pub fn with_cache(mut self, cache: Option<Arc<PrepCache>>) -> Prep {
        self.cache = cache;
        self
    }

    /// The stable identifier used in cache keys and machine-readable
    /// reports (`<suite>/<name>@r<version>`, or `custom/<name>` for ad-hoc
    /// programs).
    pub fn cache_id(&self) -> &str {
        &self.cache_id
    }

    /// The artifact-cache fingerprint (see [`prep_cache::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Prepares every registered workload on the given input
    /// (sequentially; [`Engine`](crate::engine::Engine) does this in
    /// parallel).
    pub fn all(input: &Input) -> Vec<Prep> {
        mg_workloads::all().iter().map(|w| Prep::new(w, input)).collect()
    }

    /// The input this prep was built from.
    pub fn input(&self) -> Input {
        self.input
    }

    /// Builds a fresh memory image (the program is identical every time).
    pub fn fresh_memory(&self) -> Memory {
        self.try_fresh_memory().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::fresh_memory`].
    ///
    /// # Errors
    ///
    /// [`HarnessError::Build`] if the build function fails on a rebuild
    /// (registered workloads never do; an `mg_api` source might).
    pub fn try_fresh_memory(&self) -> Result<Memory, HarnessError> {
        let (_, mem) = (self.build)(&self.input)
            .map_err(|source| HarnessError::Build { workload: self.name.clone(), source })?;
        Ok(mem)
    }

    /// The selection inputs this prep exposes to a [`Selector`]: its
    /// candidate pool, CFG, and block profile.
    pub fn select_inputs(&self) -> SelectInputs<'_> {
        SelectInputs { candidates: &self.candidates, cfg: &self.cfg, prof: &self.prof }
    }

    /// Selects mini-graphs under `policy` with the default greedy
    /// selector, memoized per policy (and, with a [`PrepCache`] attached,
    /// persisted across processes).
    pub fn select(&self, policy: &Policy) -> Arc<Selection> {
        self.select_with(&GreedySelector, policy)
    }

    /// Selects mini-graphs under `(selector, policy)`, memoized per pair
    /// (and, with a [`PrepCache`] attached, persisted across processes).
    /// The greedy selector's artifacts are keyed exactly as before the
    /// selector dimension existed, so alternative selectors never poison
    /// — or collide with — cached greedy selections.
    pub fn select_with(&self, selector: &dyn Selector, policy: &Policy) -> Arc<Selection> {
        let memo_key = (selector.id().to_string(), policy.clone());
        if let Some(sel) = self.selections.lock().unwrap().get(&memo_key) {
            return Arc::clone(sel);
        }
        // Computed outside the lock: selection over a large candidate pool
        // is the expensive part and must not serialize other policies.
        let sel = if let Some(hit) = self
            .cache
            .as_deref()
            .and_then(|c| c.load_selection_with(self.fingerprint, selector.id(), policy))
        {
            Arc::new(hit)
        } else {
            let sel = Arc::new(selector.select(&self.select_inputs(), policy));
            if let Some(c) = self.cache.as_deref() {
                c.store_selection_with(self.fingerprint, selector.id(), policy, &sel);
            }
            sel
        };
        let mut cache = self.selections.lock().unwrap();
        Arc::clone(cache.entry(memo_key).or_insert(sel))
    }

    /// The baseline dynamic trace (fresh memory, same input), memoized
    /// (and, with a [`PrepCache`] attached, persisted across processes).
    pub fn base_trace(&self) -> Arc<Trace> {
        self.try_base_trace().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::base_trace`]. Concurrent callers block on one
    /// recording (exactly-once, like the panicking path's `get_or_init`);
    /// a failed recording releases the lock and stays retryable.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Build`] / [`HarnessError::Exec`] if rebuilding the
    /// memory image or recording the trace fails.
    pub fn try_base_trace(&self) -> Result<Arc<Trace>, HarnessError> {
        if let Some(t) = self.base_trace.get() {
            return Ok(Arc::clone(t));
        }
        // Poison means a racer panicked mid-recording; the slot is still
        // uninitialized, so taking over the guard and retrying is sound.
        let _guard =
            self.base_trace_init.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(t) = self.base_trace.get() {
            return Ok(Arc::clone(t));
        }
        let trace = if let Some(hit) = self
            .cache
            .as_deref()
            .and_then(|c| c.load_trace(self.fingerprint, self.trace_budget))
        {
            Arc::new(hit)
        } else {
            let mut mem = self.try_fresh_memory()?;
            let trace = record_trace(&self.prog, &mut mem, None, self.trace_budget).map_err(
                |source| HarnessError::Exec {
                    workload: self.name.clone(),
                    phase: "trace",
                    source,
                },
            )?;
            if let Some(c) = self.cache.as_deref() {
                c.store_trace(self.fingerprint, self.trace_budget, &trace);
            }
            Arc::new(trace)
        };
        Ok(Arc::clone(self.base_trace.get_or_init(|| trace)))
    }

    /// The rewritten image for `(policy, style)` with its trace, memoized
    /// in a bounded FIFO cache ([`IMAGE_CACHE_CAP`]) (and, with a
    /// [`PrepCache`] attached, persisted across processes — a disk hit
    /// skips selection, rewriting, and trace recording in one step).
    pub fn image(&self, policy: &Policy, style: RewriteStyle) -> Arc<MgImage> {
        self.try_image(policy, style).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::image`].
    ///
    /// # Errors
    ///
    /// [`HarnessError::Build`] if the memory rebuild fails,
    /// [`HarnessError::Rewrite`] if the rewritten image faults or fails
    /// to halt.
    pub fn try_image(
        &self,
        policy: &Policy,
        style: RewriteStyle,
    ) -> Result<Arc<MgImage>, HarnessError> {
        self.try_image_with(&GreedySelector, policy, style)
    }

    /// The rewritten image for `(selector, policy, style)`, memoized and
    /// persisted like [`Prep::try_image`] (which is the
    /// [`GreedySelector`] instance of this method, with byte-identical
    /// cache keys).
    ///
    /// # Errors
    ///
    /// As [`Prep::try_image`].
    pub fn try_image_with(
        &self,
        selector: &dyn Selector,
        policy: &Policy,
        style: RewriteStyle,
    ) -> Result<Arc<MgImage>, HarnessError> {
        let key = (selector.id().to_string(), policy.clone(), style);
        if let Some(img) = self.images.lock().unwrap().get(&key) {
            return Ok(img);
        }
        let img = if let Some(hit) = self.cache.as_deref().and_then(|c| {
            c.load_image_with(self.fingerprint, selector.id(), policy, style, self.trace_budget)
        }) {
            Arc::new(hit)
        } else {
            let selection = self.select_with(selector, policy);
            let img = Arc::new(self.try_build_image(&selection, style)?);
            if let Some(c) = self.cache.as_deref() {
                c.store_image_with(
                    self.fingerprint,
                    selector.id(),
                    policy,
                    style,
                    self.trace_budget,
                    &img,
                );
            }
            img
        };
        Ok(self.images.lock().unwrap().insert(key, img))
    }

    /// Rewrites with `selection` and returns the handle image + its trace
    /// (uncached; prefer [`Prep::image`] when the selection came from a
    /// policy).
    pub fn build_image(&self, selection: &Selection, style: RewriteStyle) -> MgImage {
        self.try_build_image(selection, style).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::build_image`].
    ///
    /// # Errors
    ///
    /// [`HarnessError::Build`] if the memory rebuild fails,
    /// [`HarnessError::Rewrite`] if the rewritten image faults or fails
    /// to halt within the trace budget.
    pub fn try_build_image(
        &self,
        selection: &Selection,
        style: RewriteStyle,
    ) -> Result<MgImage, HarnessError> {
        let rw = rewrite(&self.prog, selection, style);
        let mut mem = self.try_fresh_memory()?;
        let trace =
            record_trace(&rw.program, &mut mem, Some(&selection.catalog), self.trace_budget)
                .map_err(|source| HarnessError::Rewrite {
                    workload: self.name.clone(),
                    source,
                })?;
        Ok(MgImage::new(rw.program, trace, selection.catalog.clone()))
    }

    /// Simulates the baseline image under `cfg`.
    pub fn run_baseline(&self, cfg: &SimConfig) -> SimStats {
        self.try_run_baseline(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::run_baseline`].
    ///
    /// # Errors
    ///
    /// Whatever [`Prep::try_base_trace`] raises (simulation itself is
    /// total over a recorded trace).
    pub fn try_run_baseline(&self, cfg: &SimConfig) -> Result<SimStats, HarnessError> {
        let t = self.try_base_trace()?;
        Ok(simulate_with(cfg, &self.prog, &t, &self.base_catalog, &self.base_predecode()))
    }

    /// The baseline program's predecode plane, built on first use and
    /// shared by every baseline simulation of this prep.
    pub fn base_predecode(&self) -> Arc<Predecode> {
        Arc::clone(
            self.base_predecode
                .get_or_init(|| Arc::new(Predecode::new(&self.prog, &self.base_catalog))),
        )
    }

    /// Simulates the baseline image under every configuration of `cfgs`
    /// with the fused executor (see [`crate::fused`]): one shared fetch
    /// stream, deduplicated configs, bit-identical per-config stats.
    ///
    /// # Errors
    ///
    /// As [`Prep::try_run_baseline`].
    pub fn try_run_baseline_sweep(
        &self,
        cfgs: &[SimConfig],
    ) -> Result<Vec<SimStats>, HarnessError> {
        let t = self.try_base_trace()?;
        Ok(crate::fused::run_fused(
            &self.prog,
            &t,
            &self.base_catalog,
            &self.base_predecode(),
            cfgs,
        ))
    }

    /// Simulates the rewritten image of `policy` under every
    /// configuration of `cfgs` with the fused executor (see
    /// [`crate::fused`]).
    ///
    /// # Errors
    ///
    /// As [`Prep::try_run_policy`].
    pub fn try_run_policy_sweep(
        &self,
        policy: &Policy,
        style: RewriteStyle,
        cfgs: &[SimConfig],
    ) -> Result<Vec<SimStats>, HarnessError> {
        self.try_run_selector_sweep(&GreedySelector, policy, style, cfgs)
    }

    /// Simulates the rewritten image of `(selector, policy)` under every
    /// configuration of `cfgs` with the fused executor (see
    /// [`crate::fused`]) — the selector-generalized
    /// [`Prep::try_run_policy_sweep`].
    ///
    /// # Errors
    ///
    /// As [`Prep::try_image_with`].
    pub fn try_run_selector_sweep(
        &self,
        selector: &dyn Selector,
        policy: &Policy,
        style: RewriteStyle,
        cfgs: &[SimConfig],
    ) -> Result<Vec<SimStats>, HarnessError> {
        let img = self.try_image_with(selector, policy, style)?;
        Ok(crate::fused::run_fused(
            &img.program,
            &img.trace,
            &img.catalog,
            &img.predecode(),
            cfgs,
        ))
    }

    /// Simulates the rewritten image of `policy` under `cfg`, reusing the
    /// cached selection, image, and trace.
    pub fn run_policy(
        &self,
        policy: &Policy,
        style: RewriteStyle,
        cfg: &SimConfig,
    ) -> SimStats {
        self.try_run_policy(policy, style, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Prep::run_policy`].
    ///
    /// # Errors
    ///
    /// Whatever [`Prep::try_image`] raises.
    pub fn try_run_policy(
        &self,
        policy: &Policy,
        style: RewriteStyle,
        cfg: &SimConfig,
    ) -> Result<SimStats, HarnessError> {
        let img = self.try_image(policy, style)?;
        Ok(simulate_with(cfg, &img.program, &img.trace, &img.catalog, &img.predecode()))
    }

    /// Simulates the rewritten image of an explicit `selection` under
    /// `cfg` (uncached path for ad-hoc selections).
    pub fn run_selection(
        &self,
        selection: &Selection,
        style: RewriteStyle,
        cfg: &SimConfig,
    ) -> SimStats {
        let img = self.build_image(selection, style);
        simulate_with(cfg, &img.program, &img.trace, &img.catalog, &img.predecode())
    }
}

/// Groups prepared workloads by suite, preserving registration order.
pub fn by_suite<P: std::borrow::Borrow<Prep>>(preps: &[P]) -> Vec<(Suite, Vec<&Prep>)> {
    Suite::ALL
        .iter()
        .map(|&s| (s, preps.iter().map(|p| p.borrow()).filter(|p| p.suite == s).collect()))
        .collect()
}
