//! Deterministic fault injection for the mini-graphs serving stack.
//!
//! A [`FaultPlan`] is a *seed-driven schedule of failures*: each named
//! injection point (see [`points`]) carries a firing rate in permille,
//! and every time the instrumented code passes the point it asks the
//! plan whether to fail **this** hit. The decision is a pure function of
//! `(seed, point, hit index)` — an xorshift generator keyed on all
//! three, with **no wall clock and no global RNG** — so two runs with
//! the same seed and the same hit sequence inject the same faults, and
//! a soak failure reproduces under its seed.
//!
//! The hooks are plain runtime calls (`plan.fires(point)`), not
//! `#[cfg]`-gated code: production binaries carry them, pay one atomic
//! increment plus a rate check when a plan is installed, and pay a
//! no-op `Option` check when none is (the common case — every hook site
//! threads an `Option<Arc<FaultPlan>>`).
//!
//! What fires where is owned by the instrumented crates: `mg-serve`
//! wraps accepted connections in [`FaultyStream`] (torn writes, injected
//! `WouldBlock` / `Interrupted` / `ConnectionReset`, delayed reads) and
//! panics worker closures; `mg-harness` panics pool preparations and
//! fails or corrupts cache writes. `docs/../DESIGN.md` §9 enumerates
//! every point and the recovery contract it exercises.
//!
//! ```
//! use mg_fault::{points, FaultPlan};
//!
//! let plan = FaultPlan::new(7).with(points::WORKER_PANIC, 500);
//! // Deterministic: the same seed yields the same decision sequence.
//! let a: Vec<bool> = (0..8).map(|_| plan.fires(points::WORKER_PANIC)).collect();
//! let replay = FaultPlan::new(7).with(points::WORKER_PANIC, 500);
//! let b: Vec<bool> = (0..8).map(|_| replay.fires(points::WORKER_PANIC)).collect();
//! assert_eq!(a, b);
//! assert!(plan.fired(points::WORKER_PANIC) > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The named injection points the mini-graphs stack instruments.
///
/// Point names are dotted paths (`<crate area>.<operation>.<fault>`);
/// [`points::ALL`] lists every one, and `mg chaos --faults` accepts the
/// names verbatim.
pub mod points {
    /// Server-side socket read returns `ErrorKind::Interrupted` once
    /// (benign: `read_exact` retries it transparently — the hook proves
    /// that).
    pub const SERVE_READ_INTERRUPT: &str = "serve.read.interrupt";
    /// Server-side socket read sleeps briefly before reading (a slow
    /// client on the request path, exercising the connection
    /// `io_timeout`).
    pub const SERVE_READ_DELAY: &str = "serve.read.delay";
    /// Server-side socket read fails with `ConnectionReset` (client
    /// vanished mid-request).
    pub const SERVE_READ_RESET: &str = "serve.read.reset";
    /// Server-side frame write is torn: half the bytes are written, the
    /// next write on the stream fails with `ConnectionReset`.
    pub const SERVE_WRITE_TORN: &str = "serve.write.torn";
    /// Server-side frame write fails immediately with `ConnectionReset`.
    pub const SERVE_WRITE_RESET: &str = "serve.write.reset";
    /// Server-side frame write fails with `WouldBlock`, what a blocking
    /// socket returns when its peer stops reading past the write
    /// timeout — the slow-client eviction path in batch broadcast.
    pub const SERVE_WRITE_STALL: &str = "serve.write.stall";
    /// The worker closure panics before running the experiment (the
    /// batch must answer every joiner with an `Error` frame, and the
    /// worker thread must survive).
    pub const WORKER_PANIC: &str = "serve.worker.panic";
    /// A pool preparation panics mid-build (the slot must stay
    /// retryable, bounded by the pool's attempt cap).
    pub const PREP_PANIC: &str = "harness.prep.panic";
    /// A cache artifact write fails before the temp file hits the disk
    /// (the cache must degrade to recompute, never to an error).
    pub const CACHE_WRITE_FAIL: &str = "harness.cache.write_fail";
    /// A cache artifact is corrupted *after* its rename lands (one byte
    /// flipped); the next load must be a miss, never a panic or a wrong
    /// artifact.
    pub const CACHE_CORRUPT: &str = "harness.cache.corrupt";
    /// A whole shard dies: the cluster router consults this point once
    /// per routed run and, when it fires, hard-kills the target shard
    /// (non-draining shutdown) before routing around it. Clients whose
    /// requests were queued on the dead shard get a terminal `Error` and
    /// retry; the router reroutes the retries to the ring successor.
    pub const SHARD_PANIC: &str = "cluster.shard.panic";

    /// Every injection point, in documentation order.
    pub const ALL: [&str; 11] = [
        SERVE_READ_INTERRUPT,
        SERVE_READ_DELAY,
        SERVE_READ_RESET,
        SERVE_WRITE_TORN,
        SERVE_WRITE_RESET,
        SERVE_WRITE_STALL,
        WORKER_PANIC,
        PREP_PANIC,
        CACHE_WRITE_FAIL,
        CACHE_CORRUPT,
        SHARD_PANIC,
    ];
}

/// FNV-1a over a byte string (local copy so the crate stays
/// dependency-free; the constant matches `mg_isa::wire::fnv1a`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One xorshift64* step — the only "randomness" in the crate, keyed
/// entirely by its input.
fn xorshift64star(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Per-point firing configuration plus its live counters.
struct Point {
    name: &'static str,
    /// Firing rate out of 1000 hits (0 = disabled).
    permille: u32,
    /// Cap on total fires (`u64::MAX` = unlimited). `with_burst` uses
    /// this to make "fail exactly the first hit" deterministic in tests.
    max_fires: u64,
    hits: AtomicU64,
    fired: AtomicU64,
}

/// A deterministic, seed-driven fault schedule (see the [module
/// docs](self)).
///
/// Cheap to share: wrap in an [`Arc`] and hand clones to the server
/// config, the session builder, and the harness hooks. All state is
/// atomic — hooks run concurrently from worker and handler threads.
pub struct FaultPlan {
    seed: u64,
    points: Vec<Point>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("points", &self.report())
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan under `seed`: every point disabled until
    /// [`FaultPlan::with`] enables it.
    pub fn new(seed: u64) -> FaultPlan {
        let points = points::ALL
            .iter()
            .map(|&name| Point {
                name,
                permille: 0,
                max_fires: u64::MAX,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            })
            .collect();
        FaultPlan { seed, points }
    }

    /// A plan with **every** point enabled at `permille` (the
    /// `mg chaos --faults all` configuration).
    pub fn all(seed: u64, permille: u32) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for point in &mut plan.points {
            point.permille = permille.min(1000);
        }
        plan
    }

    /// Enables `point` at `permille` fires per 1000 hits (builder
    /// style). Unknown names are ignored — plans are configuration, not
    /// assertions.
    pub fn with(mut self, point: &str, permille: u32) -> FaultPlan {
        if let Some(p) = self.points.iter_mut().find(|p| p.name == point) {
            p.permille = permille.min(1000);
        }
        self
    }

    /// Enables `point` at `permille` but caps it at `max_fires` total
    /// fires — `with_burst(p, 1000, 1)` means "fail exactly the first
    /// hit, then behave", the deterministic shape resilience tests want.
    pub fn with_burst(mut self, point: &str, permille: u32, max_fires: u64) -> FaultPlan {
        if let Some(p) = self.points.iter_mut().find(|p| p.name == point) {
            p.permille = permille.min(1000);
            p.max_fires = max_fires;
        }
        self
    }

    /// The plan's seed (for reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Records one hit of `point` and decides whether the fault fires.
    /// The decision depends only on `(seed, point name, hit index)`.
    pub fn fires(&self, point: &str) -> bool {
        let Some(p) = self.points.iter().find(|p| p.name == point) else {
            return false;
        };
        let hit = p.hits.fetch_add(1, Ordering::Relaxed);
        if p.permille == 0 || p.fired.load(Ordering::Relaxed) >= p.max_fires {
            return false;
        }
        let roll = xorshift64star(
            self.seed ^ fnv1a(point.as_bytes()) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if roll % 1000 < p.permille as u64 {
            // Racing hits may overshoot max_fires by the number of
            // concurrent callers; the cap is a test-determinism device
            // (used with single-threaded hit sequences), not a hard
            // budget, so the relaxed check is enough.
            p.fired.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// How many times `point` has fired so far.
    pub fn fired(&self, point: &str) -> u64 {
        self.points
            .iter()
            .find(|p| p.name == point)
            .map_or(0, |p| p.fired.load(Ordering::Relaxed))
    }

    /// How many times `point` has been hit (fired or not).
    pub fn hits(&self, point: &str) -> u64 {
        self.points
            .iter()
            .find(|p| p.name == point)
            .map_or(0, |p| p.hits.load(Ordering::Relaxed))
    }

    /// `(point, fires)` for every point that fired at least once — the
    /// soak report's fault ledger.
    pub fn report(&self) -> Vec<(&'static str, u64)> {
        self.points
            .iter()
            .filter_map(|p| {
                let fired = p.fired.load(Ordering::Relaxed);
                (fired > 0).then_some((p.name, fired))
            })
            .collect()
    }
}

/// How long [`FaultyStream`] sleeps when [`points::SERVE_READ_DELAY`]
/// fires. Short enough to keep soaks fast, long enough to be a real
/// stall relative to loopback round-trips.
pub const READ_DELAY: std::time::Duration = std::time::Duration::from_millis(50);

/// A [`Read`] + [`Write`] wrapper that injects the `serve.*` socket
/// faults of a [`FaultPlan`] into an underlying stream. The server
/// wraps every accepted connection in one when a plan is installed.
pub struct FaultyStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    /// Set after a torn write: the stream wrote a partial frame and the
    /// next write must fail, like a peer that vanished mid-frame.
    torn: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> FaultyStream<S> {
        FaultyStream { inner, plan, torn: false }
    }

    /// The wrapped stream (for delegating non-I/O operations like
    /// socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.plan.fires(points::SERVE_READ_RESET) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected read reset",
            ));
        }
        if self.plan.fires(points::SERVE_READ_INTERRUPT) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected read interrupt",
            ));
        }
        if self.plan.fires(points::SERVE_READ_DELAY) {
            std::thread::sleep(READ_DELAY);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.torn {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected torn-write reset",
            ));
        }
        if self.plan.fires(points::SERVE_WRITE_RESET) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected write reset",
            ));
        }
        if self.plan.fires(points::SERVE_WRITE_STALL) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "injected write stall (slow client)",
            ));
        }
        if buf.len() >= 2 && self.plan.fires(points::SERVE_WRITE_TORN) {
            // Write a strict prefix, then arm the reset: the caller's
            // `write_all` loop comes back for the rest and fails — the
            // peer sees a torn frame.
            self.torn = true;
            return self.inner.write(&buf[..buf.len() / 2]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_differ_across_seeds() {
        let seq = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).with(points::SERVE_WRITE_RESET, 300);
            (0..64).map(|_| plan.fires(points::SERVE_WRITE_RESET)).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same schedule");
        assert_ne!(seq(7), seq(8), "different seed, different schedule");
        // The rate is roughly honoured (300‰ over 64 hits: expect a
        // handful, not zero and not all).
        let fires = seq(7).iter().filter(|f| **f).count();
        assert!((1..64).contains(&fires), "fires={fires}");
    }

    #[test]
    fn points_are_independent_and_unknown_points_never_fire() {
        let plan = FaultPlan::new(1).with(points::PREP_PANIC, 1000);
        assert!(plan.fires(points::PREP_PANIC));
        assert!(!plan.fires(points::CACHE_CORRUPT), "other points stay disabled");
        assert!(!plan.fires("no.such.point"));
        assert_eq!(plan.hits(points::PREP_PANIC), 1);
        assert_eq!(plan.hits(points::CACHE_CORRUPT), 1);
        assert_eq!(plan.report(), vec![(points::PREP_PANIC, 1)]);
    }

    #[test]
    fn burst_caps_total_fires() {
        let plan = FaultPlan::new(3).with_burst(points::SERVE_WRITE_STALL, 1000, 2);
        let fires: Vec<bool> = (0..16).map(|_| plan.fires(points::SERVE_WRITE_STALL)).collect();
        assert_eq!(fires.iter().filter(|f| **f).count(), 2, "capped at two fires");
        assert_eq!(fires[..2], [true, true], "at full rate the first hits fire");
        assert_eq!(plan.fired(points::SERVE_WRITE_STALL), 2);
    }

    #[test]
    fn faulty_stream_tears_exactly_one_frame_then_resets() {
        let plan = Arc::new(FaultPlan::new(5).with_burst(points::SERVE_WRITE_TORN, 1000, 1));
        let mut out = Vec::new();
        let mut s = FaultyStream::new(&mut out, Arc::clone(&plan));
        let err = s.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(out, b"01234", "half the frame landed before the tear");
    }

    #[test]
    fn faulty_stream_read_interrupt_is_transparent_to_read_exact() {
        // `Read::read_exact` retries Interrupted, so an injected
        // interrupt must not surface — that transparency is exactly what
        // the point exists to prove.
        let plan =
            Arc::new(FaultPlan::new(9).with_burst(points::SERVE_READ_INTERRUPT, 1000, 1));
        let data = b"abcdef".as_slice();
        let mut s = FaultyStream::new(data, plan);
        let mut buf = [0u8; 6];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn all_points_have_distinct_names() {
        let mut names = points::ALL.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), points::ALL.len());
    }
}
