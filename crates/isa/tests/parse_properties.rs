//! Property tests for the text assembler: every instruction the builder
//! can produce must round-trip through `Display` → `assemble`, and the
//! sparse memory must behave like a flat byte map.

use mg_isa::{assemble, reg, Inst, Memory, Opcode, Operand};
use proptest::prelude::*;
use std::collections::HashMap;

fn operate_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addl,
        Opcode::Addq,
        Opcode::Subl,
        Opcode::Subq,
        Opcode::S4addl,
        Opcode::S8addq,
        Opcode::Lda,
        Opcode::Mull,
        Opcode::And,
        Opcode::Bis,
        Opcode::Xor,
        Opcode::Bic,
        Opcode::Ornot,
        Opcode::Eqv,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Cmpeq,
        Opcode::Cmplt,
        Opcode::Cmpule,
        Opcode::Zapnot,
        Opcode::Extbl,
        Opcode::Sextb,
        Opcode::Sextw,
    ])
}

fn mem_opcode() -> impl Strategy<Value = (Opcode, bool)> {
    prop::sample::select(vec![
        (Opcode::Ldq, false),
        (Opcode::Ldl, false),
        (Opcode::Ldwu, false),
        (Opcode::Ldbu, false),
        (Opcode::Stq, true),
        (Opcode::Stl, true),
        (Opcode::Stw, true),
        (Opcode::Stb, true),
    ])
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (operate_opcode(), 0u8..32, 0u8..32, 0u8..32, any::<bool>(), -500i64..500).prop_map(
            |(op, a, b, c, use_imm, imm)| {
                let rb: Operand =
                    if use_imm { Operand::Imm(imm) } else { Operand::Reg(reg(b)) };
                Inst::op3(op, reg(a), rb, reg(c))
            }
        ),
        (mem_opcode(), 0u8..32, 0u8..32, -512i64..512).prop_map(|((op, store), x, base, d)| {
            if store {
                Inst::store(op, reg(x), d, reg(base))
            } else {
                Inst::load(op, reg(x), d, reg(base))
            }
        }),
        (0u8..32, 0i64..1000).prop_map(|(a, t)| Inst::branch(Opcode::Bne, reg(a), t)),
        (0u8..32, 0u8..32, 0u8..32, 0u32..2048)
            .prop_map(|(a, b, c, id)| { Inst::handle(reg(a), reg(b), reg(c), id, None) }),
        Just(Inst::nop()),
        Just(Inst::halt()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Display` output re-assembles to the identical instruction.
    #[test]
    fn display_assemble_round_trip(inst in arb_inst()) {
        let text = inst.to_string();
        let prog = assemble(&text).map_err(|e| {
            TestCaseError::fail(format!("`{text}` failed to parse: {e}"))
        })?;
        prop_assert_eq!(prog.len(), 1);
        prop_assert_eq!(prog.insts[0], inst, "`{}` round-tripped differently", text);
    }

    /// Sparse memory behaves exactly like a flat byte map for arbitrary
    /// interleavings of multi-width reads and writes.
    #[test]
    fn memory_matches_flat_map(
        writes in prop::collection::vec(
            (0u64..0x3000, prop::sample::select(vec![1u8, 2, 4, 8]), any::<u64>()),
            1..100,
        ),
    ) {
        let mut mem = Memory::new();
        let mut flat: HashMap<u64, u8> = HashMap::new();
        for (addr, width, value) in writes {
            mem.write_uint(addr, width, value);
            for (i, b) in value.to_le_bytes().iter().take(width as usize).enumerate() {
                flat.insert(addr + i as u64, *b);
            }
            // Read back a window covering the write.
            for off in 0..width as u64 {
                let expect = *flat.get(&(addr + off)).expect("just written");
                prop_assert_eq!(mem.read_u8(addr + off), expect);
            }
        }
        // Full sweep: every byte agrees (untouched bytes read zero).
        for a in (0..0x3000u64).step_by(97) {
            prop_assert_eq!(mem.read_u8(a), flat.get(&a).copied().unwrap_or(0));
        }
    }
}
