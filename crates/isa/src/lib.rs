//! An Alpha-flavoured 64-bit RISC instruction set, assembler, sparse memory,
//! and functional execution semantics.
//!
//! This crate is the ISA substrate for the reproduction of *Dataflow
//! Mini-Graphs: Amplifying Superscalar Capacity and Bandwidth* (MICRO-37,
//! 2004). The paper evaluates on Alpha AXP binaries; we define a compact
//! Alpha-like ISA carrying the same opcode families the paper's examples use
//! (`addl`, `s8addl`, `cmplt`, `bne`, `ldq`, `srl`, `and`, `bis`, `lda`, …)
//! plus the reserved `mg` handle opcode that stands in for an entire
//! mini-graph.
//!
//! # Layout
//!
//! * [`Reg`] — architectural integer registers `r0..r31` (`r31` reads zero).
//! * [`Opcode`] / [`OpClass`] — operations and their pipeline classes.
//! * [`Inst`] — a decoded instruction; uniform 3-operand layout.
//! * [`Program`] — a code image with labels and a base address.
//! * [`Asm`] — a builder-style assembler with label fix-ups.
//! * [`Memory`] — sparse paged byte-addressable memory.
//! * [`exec`] — functional (architectural) semantics, handle-aware.
//! * [`handle`] — mini-graph execution templates (`E0`/`E1`/`M(i)` operands)
//!   shared by the functional simulator and the timing model.
//!
//! # Example
//!
//! ```
//! use mg_isa::{Asm, reg, exec::{CpuState, run_to_halt}, Memory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! let (r1, r2) = (reg(1), reg(2));
//! a.li(r1, 10);
//! a.li(r2, 0);
//! a.label("loop");
//! a.addq(r2, r1, r2);
//! a.subq(r1, 1, r1);
//! a.bne(r1, "loop");
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut cpu = CpuState::new(prog.entry);
//! let mut mem = Memory::new();
//! run_to_halt(&prog, &mut cpu, &mut mem, None, 1_000)?;
//! assert_eq!(cpu.regs[2], 10 + 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod asm;
pub mod exec;
pub mod handle;
pub mod inst;
pub mod mem;
pub mod opcode;
pub mod parse;
pub mod program;
pub mod reg;
pub mod wire;

pub use asm::{Asm, AsmError};
pub use handle::{HandleCatalog, MgTemplate, TmplInst, TmplOperand};
pub use inst::{Inst, Operand};
pub use mem::Memory;
pub use opcode::{OpClass, Opcode};
pub use parse::assemble;
pub use program::Program;
pub use reg::{reg, Reg, NUM_REGS};
pub use wire::{Wire, WireError};
