//! Opcodes and their pipeline classification.

use std::fmt;

/// The pipeline class of an [`Opcode`].
///
/// Classes determine which functional unit executes an instruction, how the
/// scheduler treats it, and whether it is eligible for inclusion in a
/// mini-graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (eligible for ALU pipelines).
    IntAlu,
    /// Multi-cycle integer multiply (excluded from mini-graphs).
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (may terminate a mini-graph).
    CondBranch,
    /// Direct unconditional branch (`br`, `bsr`).
    UncondBranch,
    /// Indirect jump (`jmp`, `jsr`, `ret`); never part of a mini-graph.
    Jump,
    /// Mini-graph handle / DISE codeword (`mg`).
    Handle,
    /// No-operation.
    Nop,
    /// Rewriter padding: a nop that occupies instruction-cache space but is
    /// squashed at fetch and consumes no pipeline bandwidth (paper §6.2:
    /// interior instructions are replaced with nops purely to neutralize
    /// the code-compression effect).
    Pad,
    /// Program termination.
    Halt,
}

impl OpClass {
    /// Whether instructions of this class reference memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether instructions of this class transfer control.
    pub fn is_control(self) -> bool {
        matches!(self, OpClass::CondBranch | OpClass::UncondBranch | OpClass::Jump)
    }
}

macro_rules! opcodes {
    ($( $variant:ident => ($mnem:literal, $class:ident, $lat:literal) ),+ $(,)?) => {
        /// An operation code.
        ///
        /// The set mirrors the integer portion of the Alpha AXP ISA that the
        /// paper's examples and workloads exercise, plus the reserved `mg`
        /// handle opcode. Floating-point is omitted: every benchmark suite in
        /// the paper's evaluation (SPECint, MediaBench, CommBench, MiBench)
        /// is integer-dominated and our workload kernels are integer-only.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnem, "`")]
                $variant,
            )+
        }

        impl Opcode {
            /// All opcodes, in declaration order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$variant),+ ];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnem,)+
                }
            }

            /// Parses a mnemonic.
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                match s {
                    $($mnem => Some(Opcode::$variant),)+
                    _ => None,
                }
            }

            /// The pipeline class.
            pub fn class(self) -> OpClass {
                match self {
                    $(Opcode::$variant => OpClass::$class,)+
                }
            }

            /// Nominal execution latency in cycles.
            ///
            /// Memory-class latencies given here are the address-generation
            /// portion only; cache access time is added by the memory
            /// system model.
            pub fn latency(self) -> u32 {
                match self {
                    $(Opcode::$variant => $lat,)+
                }
            }
        }
    };
}

opcodes! {
    // Integer arithmetic (operate format: rc = ra OP rb/imm).
    Addl   => ("addl",   IntAlu, 1),
    Addq   => ("addq",   IntAlu, 1),
    Subl   => ("subl",   IntAlu, 1),
    Subq   => ("subq",   IntAlu, 1),
    S4addl => ("s4addl", IntAlu, 1),
    S8addl => ("s8addl", IntAlu, 1),
    S4addq => ("s4addq", IntAlu, 1),
    S8addq => ("s8addq", IntAlu, 1),
    Lda    => ("lda",    IntAlu, 1),
    Mull   => ("mull",   IntMul, 3),
    Mulq   => ("mulq",   IntMul, 3),
    // Logical.
    And    => ("and",    IntAlu, 1),
    Bis    => ("bis",    IntAlu, 1),
    Xor    => ("xor",    IntAlu, 1),
    Bic    => ("bic",    IntAlu, 1),
    Ornot  => ("ornot",  IntAlu, 1),
    Eqv    => ("eqv",    IntAlu, 1),
    // Shifts.
    Sll    => ("sll",    IntAlu, 1),
    Srl    => ("srl",    IntAlu, 1),
    Sra    => ("sra",    IntAlu, 1),
    // Comparisons (rc = cond ? 1 : 0).
    Cmpeq  => ("cmpeq",  IntAlu, 1),
    Cmplt  => ("cmplt",  IntAlu, 1),
    Cmple  => ("cmple",  IntAlu, 1),
    Cmpult => ("cmpult", IntAlu, 1),
    Cmpule => ("cmpule", IntAlu, 1),
    // Byte manipulation.
    Zapnot => ("zapnot", IntAlu, 1),
    Extbl  => ("extbl",  IntAlu, 1),
    Sextb  => ("sextb",  IntAlu, 1),
    Sextw  => ("sextw",  IntAlu, 1),
    // Loads (rc = MEM[ra + disp]).
    Ldq    => ("ldq",    Load, 1),
    Ldl    => ("ldl",    Load, 1),
    Ldwu   => ("ldwu",   Load, 1),
    Ldbu   => ("ldbu",   Load, 1),
    // Stores (MEM[ra + disp] = rb).
    Stq    => ("stq",    Store, 1),
    Stl    => ("stl",    Store, 1),
    Stw    => ("stw",    Store, 1),
    Stb    => ("stb",    Store, 1),
    // Conditional branches (test ra against zero).
    Beq    => ("beq",    CondBranch, 1),
    Bne    => ("bne",    CondBranch, 1),
    Blt    => ("blt",    CondBranch, 1),
    Ble    => ("ble",    CondBranch, 1),
    Bgt    => ("bgt",    CondBranch, 1),
    Bge    => ("bge",    CondBranch, 1),
    // Unconditional control.
    Br     => ("br",     UncondBranch, 1),
    Bsr    => ("bsr",    UncondBranch, 1),
    Jmp    => ("jmp",    Jump, 1),
    Jsr    => ("jsr",    Jump, 1),
    Ret    => ("ret",    Jump, 1),
    // Special.
    Mg     => ("mg",     Handle, 1),
    Nop    => ("nop",    Nop, 1),
    Pad    => ("pad",    Pad, 1),
    Halt   => ("halt",   Halt, 1),
}

impl Opcode {
    /// Whether this opcode is a single-cycle integer ALU operation, i.e.
    /// eligible to execute on an ALU pipeline stage.
    pub fn is_single_cycle_int(self) -> bool {
        self.class() == OpClass::IntAlu
    }

    /// Whether this opcode may appear *inside* a mini-graph.
    ///
    /// Integer ALU ops, loads, stores, conditional branches and direct
    /// unconditional branches qualify; multiplies (multi-cycle), indirect
    /// jumps, handles, nops and halt do not.
    pub fn is_mini_graph_eligible(self) -> bool {
        matches!(
            self.class(),
            OpClass::IntAlu
                | OpClass::Load
                | OpClass::Store
                | OpClass::CondBranch
                | OpClass::UncondBranch
        ) && !matches!(self, Opcode::Bsr)
    }

    /// Whether this is a load.
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// Whether this is a store.
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// Whether this transfers control.
    pub fn is_control(self) -> bool {
        self.class().is_control()
    }

    /// Access width in bytes for memory opcodes, `None` otherwise.
    pub fn mem_width(self) -> Option<u8> {
        match self {
            Opcode::Ldq | Opcode::Stq => Some(8),
            Opcode::Ldl | Opcode::Stl => Some(4),
            Opcode::Ldwu | Opcode::Stw => Some(2),
            Opcode::Ldbu | Opcode::Stb => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        assert_eq!(Opcode::from_mnemonic("fnord"), None);
    }

    #[test]
    fn classes() {
        assert_eq!(Opcode::Addl.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Ldq.class(), OpClass::Load);
        assert_eq!(Opcode::Stb.class(), OpClass::Store);
        assert_eq!(Opcode::Bne.class(), OpClass::CondBranch);
        assert_eq!(Opcode::Ret.class(), OpClass::Jump);
        assert_eq!(Opcode::Mg.class(), OpClass::Handle);
    }

    #[test]
    fn mini_graph_eligibility() {
        assert!(Opcode::Addl.is_mini_graph_eligible());
        assert!(Opcode::Ldq.is_mini_graph_eligible());
        assert!(Opcode::Stq.is_mini_graph_eligible());
        assert!(Opcode::Bne.is_mini_graph_eligible());
        assert!(Opcode::Br.is_mini_graph_eligible());
        assert!(!Opcode::Mull.is_mini_graph_eligible(), "multi-cycle ops excluded");
        assert!(!Opcode::Jmp.is_mini_graph_eligible());
        assert!(!Opcode::Bsr.is_mini_graph_eligible(), "call leaves a live return address");
        assert!(!Opcode::Mg.is_mini_graph_eligible(), "handles never nest");
        assert!(!Opcode::Halt.is_mini_graph_eligible());
    }

    #[test]
    fn mem_widths() {
        assert_eq!(Opcode::Ldq.mem_width(), Some(8));
        assert_eq!(Opcode::Stw.mem_width(), Some(2));
        assert_eq!(Opcode::Addl.mem_width(), None);
    }

    #[test]
    fn multiply_is_multi_cycle() {
        assert!(Opcode::Mull.latency() > 1);
        assert!(!Opcode::Mull.is_single_cycle_int());
        assert!(Opcode::Addq.is_single_cycle_int());
    }
}
