//! Mini-graph execution templates.
//!
//! A *template* is the handle-to-instruction-sequence definition stored in
//! the mini-graph table (MGT). This module defines only the data types and
//! their architectural (functional) meaning, so that both the functional
//! simulator (`mg-profile`) and the timing simulator (`mg-uarch`) can
//! interpret handles without depending on the extraction machinery in
//! `mg-core` (which constructs these templates).
//!
//! Operands use the paper's mnemonics: `E0`/`E1` are the handle's explicit
//! interface input registers; `M(i)` is the interior value produced by the
//! template's `i`-th instruction; immediates are encoded directly.

use crate::opcode::{OpClass, Opcode};
use std::fmt;

/// An operand of a template instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TmplOperand {
    /// First interface input register (the handle's `ra`).
    E0,
    /// Second interface input register (the handle's `rb`).
    E1,
    /// The interior value produced by template instruction `i`.
    M(u8),
    /// An immediate.
    Imm(i64),
}

impl fmt::Display for TmplOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmplOperand::E0 => f.write_str("E0"),
            TmplOperand::E1 => f.write_str("E1"),
            TmplOperand::M(i) => write!(f, "M{i}"),
            TmplOperand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// One instruction of a mini-graph template.
///
/// Field meaning mirrors [`crate::Inst`]:
///
/// | class        | `a`            | `b`         | `disp`                     |
/// |--------------|----------------|-------------|----------------------------|
/// | operate      | source 1       | source 2    | —                          |
/// | load         | base address   | —           | displacement               |
/// | store        | data           | base        | displacement               |
/// | branch       | test source    | —           | relative target (informational; the executed target comes from the handle's `aux` field) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TmplInst {
    /// Operation.
    pub op: Opcode,
    /// First operand.
    pub a: TmplOperand,
    /// Second operand.
    pub b: TmplOperand,
    /// Displacement (memory offset, or branch displacement relative to the
    /// handle's own index).
    pub disp: i64,
}

impl fmt::Display for TmplInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op.class() {
            OpClass::Load => write!(f, "{} {}({})", self.op, self.disp, self.a),
            OpClass::Store => write!(f, "{} {},{}({})", self.op, self.a, self.disp, self.b),
            OpClass::CondBranch => write!(f, "{} {},{:+}", self.op, self.a, self.disp),
            OpClass::UncondBranch => write!(f, "{} {:+}", self.op, self.disp),
            _ => write!(f, "{} {},{}", self.op, self.a, self.b),
        }
    }
}

/// A complete mini-graph template: the instruction sequence one MGT row
/// describes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MgTemplate {
    /// Constituent instructions in execution (program) order.
    pub ops: Vec<TmplInst>,
    /// Index of the instruction that produces the mini-graph's interface
    /// output register, or `None` if the mini-graph has no live register
    /// output (e.g. a compare feeding only its terminal branch).
    pub out: Option<u8>,
}

impl MgTemplate {
    /// Number of constituent instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the template is empty (never true for legal templates).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The terminal control transfer, if any.
    pub fn terminal_branch(&self) -> Option<&TmplInst> {
        self.ops.last().filter(|t| t.op.is_control())
    }

    /// The single memory operation, if any.
    pub fn mem_op(&self) -> Option<(usize, &TmplInst)> {
        self.ops.iter().enumerate().find(|(_, t)| t.op.class().is_mem())
    }

    /// Whether every constituent is a single-cycle integer ALU op (i.e. the
    /// whole graph can execute on an ALU pipeline), allowing a terminal
    /// branch.
    pub fn is_integer_only(&self) -> bool {
        self.ops.iter().all(|t| t.op.is_single_cycle_int() || t.op.is_control())
    }

    /// Whether the template is a pure serial dependence chain: instruction
    /// `i+1` consumes `M(i)` for every adjacent pair.
    pub fn is_serial_chain(&self) -> bool {
        self.ops.iter().enumerate().skip(1).all(|(i, t)| {
            let want = TmplOperand::M(i as u8 - 1);
            t.a == want || t.b == want
        })
    }

    /// Whether any instruction other than the first consumes an external
    /// interface input (`E0`/`E1`) — the condition for *external
    /// serialization* (paper §4.1).
    pub fn is_externally_serial(&self) -> bool {
        self.ops.iter().skip(1).any(|t| {
            matches!(t.a, TmplOperand::E0 | TmplOperand::E1)
                || matches!(t.b, TmplOperand::E0 | TmplOperand::E1)
        })
    }

    /// Whether the template contains a load in a non-terminal position
    /// (vulnerable to whole-graph cache-miss replay, paper §4.3).
    pub fn has_interior_load(&self) -> bool {
        let n = self.ops.len();
        self.ops.iter().enumerate().any(|(i, t)| t.op.is_load() && i + 1 != n)
    }
}

impl fmt::Display for MgTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out={:?} ", self.out)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// The set of mini-graph templates a program image refers to, indexed by
/// MGID. This is the architectural content of the MGT; the timing-level
/// MGHT/MGST organization is built on top of it by `mg-core`.
#[derive(Clone, Debug, Default)]
pub struct HandleCatalog {
    templates: Vec<MgTemplate>,
}

impl HandleCatalog {
    /// Creates an empty catalog.
    pub fn new() -> HandleCatalog {
        HandleCatalog::default()
    }

    /// Adds a template, returning its MGID.
    pub fn add(&mut self, t: MgTemplate) -> u32 {
        self.templates.push(t);
        (self.templates.len() - 1) as u32
    }

    /// Looks up a template by MGID.
    pub fn get(&self, mgid: u32) -> Option<&MgTemplate> {
        self.templates.get(mgid as usize)
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Iterates over `(mgid, template)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &MgTemplate)> {
        self.templates.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 mini-graph 12: addl E0,2; cmplt M0,E1; bne M1.
    fn mg12() -> MgTemplate {
        MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addl,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(2),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Cmplt,
                    a: TmplOperand::M(0),
                    b: TmplOperand::E1,
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Bne,
                    a: TmplOperand::M(1),
                    b: TmplOperand::Imm(0),
                    disp: -3,
                },
            ],
            out: Some(0),
        }
    }

    /// The paper's Figure 1 mini-graph 34: ldq 16(E0); srl M0,14; and M1,1.
    fn mg34() -> MgTemplate {
        MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Ldq,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(0),
                    disp: 16,
                },
                TmplInst {
                    op: Opcode::Srl,
                    a: TmplOperand::M(0),
                    b: TmplOperand::Imm(14),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::And,
                    a: TmplOperand::M(1),
                    b: TmplOperand::Imm(1),
                    disp: 0,
                },
            ],
            out: Some(2),
        }
    }

    #[test]
    fn paper_examples_classify_correctly() {
        let g12 = mg12();
        assert!(g12.is_integer_only());
        assert!(g12.is_serial_chain());
        assert!(g12.is_externally_serial(), "cmplt consumes E1 in slot 1");
        assert!(!g12.has_interior_load());
        assert!(g12.terminal_branch().is_some());

        let g34 = mg34();
        assert!(!g34.is_integer_only(), "contains a load");
        assert!(g34.is_serial_chain());
        assert!(!g34.is_externally_serial());
        assert!(g34.has_interior_load(), "load is in slot 0 of 3");
        assert!(g34.terminal_branch().is_none());
        assert_eq!(g34.mem_op().unwrap().0, 0);
    }

    #[test]
    fn terminal_load_is_not_interior() {
        let t = MgTemplate {
            ops: vec![
                TmplInst { op: Opcode::Addq, a: TmplOperand::E0, b: TmplOperand::E1, disp: 0 },
                TmplInst {
                    op: Opcode::Ldq,
                    a: TmplOperand::M(0),
                    b: TmplOperand::Imm(0),
                    disp: 8,
                },
            ],
            out: Some(1),
        };
        assert!(!t.has_interior_load());
    }

    #[test]
    fn catalog_assigns_sequential_mgids() {
        let mut c = HandleCatalog::new();
        assert_eq!(c.add(mg12()), 0);
        assert_eq!(c.add(mg34()), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().len(), 3);
        assert!(c.get(2).is_none());
    }

    #[test]
    fn display_forms() {
        let g = mg34();
        let s = g.to_string();
        assert!(s.contains("ldq 16(E0)"), "got {s}");
        assert!(s.contains("srl M0,14"), "got {s}");
        assert!(s.contains("and M1,1"), "got {s}");
    }

    #[test]
    fn internal_parallelism_detected() {
        // op2 consumes M0 and E0: ops 0 and 1 are independent of each other.
        let t = MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addq,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(1),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Subq,
                    a: TmplOperand::E1,
                    b: TmplOperand::Imm(1),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Xor,
                    a: TmplOperand::M(0),
                    b: TmplOperand::M(1),
                    disp: 0,
                },
            ],
            out: Some(2),
        };
        assert!(!t.is_serial_chain());
    }
}
