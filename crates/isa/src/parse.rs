//! A text assembler: parses the same syntax [`crate::Inst`]'s
//! `Display` produces, plus labels, comments, and named branch targets.
//!
//! ```
//! use mg_isa::parse::assemble;
//!
//! # fn main() -> Result<(), mg_isa::parse::ParseError> {
//! let prog = assemble(
//!     "
//!     ; sum the integers 1..=10
//!             lda   r31,10,r1
//!             lda   r31,0,r2
//!     loop:   addq  r2,r1,r2
//!             subq  r1,1,r1
//!             bne   r1,loop
//!             halt
//!     ",
//! )?;
//! assert_eq!(prog.label("loop"), Some(2));
//! # Ok(())
//! # }
//! ```

use crate::asm::{Asm, AsmError, Target};
use crate::inst::{Inst, Operand};
use crate::opcode::{OpClass, Opcode};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Errors produced by [`assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Unknown mnemonic.
    UnknownOpcode {
        /// 1-based source line.
        line: usize,
        /// The unrecognized mnemonic text.
        mnemonic: String,
    },
    /// An operand could not be parsed.
    BadOperand {
        /// 1-based source line.
        line: usize,
        /// The offending operand text.
        text: String,
    },
    /// Wrong number/shape of operands for the opcode.
    BadOperands {
        /// 1-based source line.
        line: usize,
        /// The mnemonic whose operand list was malformed.
        mnemonic: String,
    },
    /// Label resolution failed.
    Asm(AsmError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownOpcode { line, mnemonic } => {
                write!(f, "line {line}: unknown opcode `{mnemonic}`")
            }
            ParseError::BadOperand { line, text } => {
                write!(f, "line {line}: bad operand `{text}`")
            }
            ParseError::BadOperands { line, mnemonic } => {
                write!(f, "line {line}: wrong operands for `{mnemonic}`")
            }
            ParseError::Asm(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError::Asm(e)
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let bad = || ParseError::BadOperand { line, text: s.to_string() };
    let n = s.strip_prefix('r').ok_or_else(bad)?;
    let idx: u8 = n.parse().map_err(|_| bad())?;
    Reg::try_new(idx).ok_or_else(bad)
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, ParseError> {
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) {
        return Ok(Operand::Reg(parse_reg(s, line)?));
    }
    let v: i64 = s.parse().map_err(|_| ParseError::BadOperand { line, text: s.to_string() })?;
    Ok(Operand::Imm(v))
}

fn parse_imm(s: &str, line: usize) -> Result<i64, ParseError> {
    s.parse().map_err(|_| ParseError::BadOperand { line, text: s.to_string() })
}

/// Splits `disp(base)` into its displacement and base register.
fn parse_mem(s: &str, line: usize) -> Result<(i64, Reg), ParseError> {
    let bad = || ParseError::BadOperand { line, text: s.to_string() };
    let open = s.find('(').ok_or_else(bad)?;
    let close = s.strip_suffix(')').ok_or_else(bad)?;
    let disp = parse_imm(&s[..open], line)?;
    let base = parse_reg(&close[open + 1..], line)?;
    Ok((disp, base))
}

/// A branch target: `@<index>` (absolute) or a label name.
fn parse_target(s: &str, line: usize) -> Result<Target, ParseError> {
    if let Some(abs) = s.strip_prefix('@') {
        let idx: usize =
            abs.parse().map_err(|_| ParseError::BadOperand { line, text: s.to_string() })?;
        return Ok(Target::Abs(idx));
    }
    Ok(Target::Label(s.to_string()))
}

/// Assembles source text into a [`Program`](crate::Program).
///
/// Syntax: one instruction per line in the `Display` form of [`Inst`]
/// (`addl r1,2,r3`, `ldq r2,16(r4)`, `stq r2,-8(r30)`, `bne r7,target`);
/// labels end with `:` and may share a line with an instruction; `;` and
/// `#` start comments. Branch targets may be label names or `@index`.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn assemble(src: &str) -> Result<crate::Program, ParseError> {
    let mut a = Asm::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find([';', '#']) {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            a.label(label);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let op = Opcode::from_mnemonic(mnemonic).ok_or_else(|| ParseError::UnknownOpcode {
            line,
            mnemonic: mnemonic.to_string(),
        })?;
        let ops: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let wrong = || ParseError::BadOperands { line, mnemonic: mnemonic.to_string() };

        match op.class() {
            OpClass::IntAlu | OpClass::IntMul => {
                let [ra, rb, rc] = ops[..] else { return Err(wrong()) };
                a.push(Inst::op3(
                    op,
                    parse_reg(ra, line)?,
                    parse_operand(rb, line)?,
                    parse_reg(rc, line)?,
                ));
            }
            OpClass::Load => {
                let [rc, mem] = ops[..] else { return Err(wrong()) };
                let (disp, base) = parse_mem(mem, line)?;
                a.push(Inst::load(op, parse_reg(rc, line)?, disp, base));
            }
            OpClass::Store => {
                let [data, mem] = ops[..] else { return Err(wrong()) };
                let (disp, base) = parse_mem(mem, line)?;
                a.push(Inst::store(op, parse_reg(data, line)?, disp, base));
            }
            OpClass::CondBranch => {
                let [ra, target] = ops[..] else { return Err(wrong()) };
                let ra = parse_reg(ra, line)?;
                match parse_target(target, line)? {
                    Target::Abs(i) => {
                        a.push(Inst::branch(op, ra, i as i64));
                    }
                    t => {
                        match op {
                            Opcode::Beq => a.beq(ra, t),
                            Opcode::Bne => a.bne(ra, t),
                            Opcode::Blt => a.blt(ra, t),
                            Opcode::Ble => a.ble(ra, t),
                            Opcode::Bgt => a.bgt(ra, t),
                            Opcode::Bge => a.bge(ra, t),
                            _ => unreachable!("cond branch opcodes covered"),
                        };
                    }
                }
            }
            OpClass::UncondBranch => match (op, &ops[..]) {
                (Opcode::Br, [target]) => {
                    a.br(parse_target(target, line)?);
                }
                (Opcode::Bsr, [rc, target]) => {
                    let rc = parse_reg(rc, line)?;
                    let t = parse_target(target, line)?;
                    a.bsr(rc, t);
                }
                _ => return Err(wrong()),
            },
            OpClass::Jump => match (op, &ops[..]) {
                (Opcode::Jmp, [ra]) => {
                    a.jmp(parse_paren_reg(ra, line)?);
                }
                (Opcode::Ret, [ra]) => {
                    a.ret(parse_paren_reg(ra, line)?);
                }
                (Opcode::Jsr, [rc, ra]) => {
                    let rc = parse_reg(rc, line)?;
                    a.jsr(rc, parse_paren_reg(ra, line)?);
                }
                _ => return Err(wrong()),
            },
            OpClass::Handle => {
                let [ra, rb, rc, mgid] = ops[..] else { return Err(wrong()) };
                a.push(Inst::handle(
                    parse_reg(ra, line)?,
                    parse_reg(rb, line)?,
                    parse_reg(rc, line)?,
                    parse_imm(mgid, line)? as u32,
                    None,
                ));
            }
            OpClass::Nop => {
                a.nop();
            }
            OpClass::Pad => {
                a.push(Inst::pad());
            }
            OpClass::Halt => {
                a.halt();
            }
        }
    }
    Ok(a.finish()?)
}

/// Accepts `(r5)` or bare `r5`.
fn parse_paren_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let inner = s.strip_prefix('(').and_then(|x| x.strip_suffix(')')).unwrap_or(s);
    parse_reg(inner, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_to_halt, CpuState};
    use crate::mem::Memory;

    #[test]
    fn parses_and_executes() {
        let p = assemble(
            "
            ; simple countdown
                    lda  r31,5,r1
            top:    subq r1,1,r1
                    bne  r1,top
                    halt
            ",
        )
        .unwrap();
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        run_to_halt(&p, &mut cpu, &mut mem, None, 1000).unwrap();
        assert_eq!(cpu.regs[1], 0);
    }

    #[test]
    fn display_round_trip() {
        // Whatever Display prints must re-assemble to the same instruction.
        let src = "
            addl r18,2,r18
            s8addl r7,r0,r7
            cmplt r18,r5,r7
            ldq r2,16(r4)
            stq r2,-8(r30)
            bne r7,@0
            mg r18,r5,r18,12
            halt
        ";
        let p = assemble(src).unwrap();
        for inst in &p.insts {
            let reprinted = inst.to_string();
            let again = assemble(&reprinted).unwrap();
            assert_eq!(again.insts[0], *inst, "round trip failed for `{reprinted}`");
        }
    }

    #[test]
    fn memory_and_jump_forms() {
        let p = assemble(
            "
                lda r31,100,r26
                jsr r26,(r26)
                ret (r26)
            ",
        )
        .unwrap();
        assert_eq!(p.insts[1].op, Opcode::Jsr);
        assert_eq!(p.insts[2].op, Opcode::Ret);
    }

    #[test]
    fn errors_name_the_line() {
        let e = assemble("nop\nfrobnicate r1,r2,r3\n").unwrap_err();
        assert_eq!(e, ParseError::UnknownOpcode { line: 2, mnemonic: "frobnicate".into() });
        let e = assemble("addl r1,r2\n").unwrap_err();
        assert!(matches!(e, ParseError::BadOperands { line: 1, .. }));
        let e = assemble("ldq r2,16[r4]\n").unwrap_err();
        assert!(matches!(e, ParseError::BadOperand { line: 1, .. }));
    }

    #[test]
    fn undefined_label_propagates() {
        let e = assemble("br nowhere\n").unwrap_err();
        assert_eq!(e, ParseError::Asm(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn comments_and_shared_label_lines() {
        let p = assemble(
            "
            start: nop            # hash comment
            end:   halt           ; semicolon comment
            ",
        )
        .unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("end"), Some(1));
        assert_eq!(p.len(), 2);
    }
}
