//! A builder-style assembler with label fix-ups.

use crate::inst::{Inst, Operand};
use crate::opcode::Opcode;
use crate::program::{Program, DEFAULT_BASE_ADDR};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A branch target: a named label or an absolute instruction index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// A label to be resolved at [`Asm::finish`] time.
    Label(String),
    /// An absolute instruction index.
    Abs(usize),
}

impl From<&str> for Target {
    fn from(s: &str) -> Target {
        Target::Label(s.to_string())
    }
}

impl From<String> for Target {
    fn from(s: String) -> Target {
        Target::Label(s)
    }
}

impl From<usize> for Target {
    fn from(i: usize) -> Target {
        Target::Abs(i)
    }
}

/// Errors produced by [`Asm::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

macro_rules! operate_methods {
    ($($name:ident => $op:ident),+ $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " ra,rb,rc` (`rc = ra ",
                stringify!($name), " rb`).")]
            pub fn $name(&mut self, ra: Reg, rb: impl Into<Operand>, rc: Reg) -> &mut Self {
                self.push(Inst::op3(Opcode::$op, ra, rb, rc))
            }
        )+
    };
}

macro_rules! load_methods {
    ($($name:ident => $op:ident),+ $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " rc,disp(base)`.")]
            pub fn $name(&mut self, rc: Reg, disp: i64, base: Reg) -> &mut Self {
                self.push(Inst::load(Opcode::$op, rc, disp, base))
            }
        )+
    };
}

macro_rules! store_methods {
    ($($name:ident => $op:ident),+ $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name), " data,disp(base)`.")]
            pub fn $name(&mut self, data: Reg, disp: i64, base: Reg) -> &mut Self {
                self.push(Inst::store(Opcode::$op, data, disp, base))
            }
        )+
    };
}

macro_rules! branch_methods {
    ($($name:ident => $op:ident),+ $(,)?) => {
        $(
            #[doc = concat!("Emits `", stringify!($name),
                " ra,target` (target is a label or absolute index).")]
            pub fn $name(&mut self, ra: Reg, target: impl Into<Target>) -> &mut Self {
                let t = self.resolve_or_fixup(target.into());
                self.push(Inst::branch(Opcode::$op, ra, t))
            }
        )+
    };
}

/// A builder-style assembler.
///
/// Labels may be referenced before they are defined; [`Asm::finish`]
/// resolves all fix-ups and produces a [`Program`].
///
/// ```
/// use mg_isa::{Asm, reg};
/// # fn main() -> Result<(), mg_isa::AsmError> {
/// let mut a = Asm::new();
/// a.li(reg(1), 3);
/// a.label("top");
/// a.subq(reg(1), 1, reg(1));
/// a.bne(reg(1), "top");
/// a.halt();
/// let p = a.finish()?;
/// assert_eq!(p.label("top"), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
    base_addr: u64,
}

impl Asm {
    /// Creates an empty assembler at the default base address.
    pub fn new() -> Asm {
        Asm { base_addr: DEFAULT_BASE_ADDR, ..Asm::default() }
    }

    /// Index the next emitted instruction will occupy.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.insts.len()).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn resolve_or_fixup(&mut self, t: Target) -> i64 {
        match t {
            Target::Abs(i) => i as i64,
            Target::Label(l) => {
                self.fixups.push((self.insts.len(), l));
                0
            }
        }
    }

    operate_methods! {
        addl => Addl, addq => Addq, subl => Subl, subq => Subq,
        s4addl => S4addl, s8addl => S8addl, s4addq => S4addq, s8addq => S8addq,
        mull => Mull, mulq => Mulq,
        and => And, bis => Bis, xor => Xor, bic => Bic, ornot => Ornot, eqv => Eqv,
        sll => Sll, srl => Srl, sra => Sra,
        cmpeq => Cmpeq, cmplt => Cmplt, cmple => Cmple, cmpult => Cmpult, cmpule => Cmpule,
        zapnot => Zapnot, extbl => Extbl, sextb => Sextb, sextw => Sextw,
    }

    /// Emits `lda ra,imm,rc` (`rc = ra + imm`).
    pub fn lda(&mut self, ra: Reg, imm: i64, rc: Reg) -> &mut Self {
        self.push(Inst::op3(Opcode::Lda, ra, imm, rc))
    }

    /// Loads an arbitrary 64-bit immediate into `rc` (single `lda` from the
    /// zero register; this simulator permits wide immediates).
    pub fn li(&mut self, rc: Reg, value: i64) -> &mut Self {
        self.lda(Reg::ZERO, value, rc)
    }

    /// Emits `mov ra -> rc` as `bis r31,ra,rc`.
    pub fn mov(&mut self, ra: Reg, rc: Reg) -> &mut Self {
        self.push(Inst::op3(Opcode::Bis, Reg::ZERO, ra, rc))
    }

    load_methods! { ldq => Ldq, ldl => Ldl, ldwu => Ldwu, ldbu => Ldbu }
    store_methods! { stq => Stq, stl => Stl, stw => Stw, stb => Stb }
    branch_methods! { beq => Beq, bne => Bne, blt => Blt, ble => Ble, bgt => Bgt, bge => Bge }

    /// Emits an unconditional `br target`.
    pub fn br(&mut self, target: impl Into<Target>) -> &mut Self {
        let t = self.resolve_or_fixup(target.into());
        self.push(Inst::ubranch(Opcode::Br, Reg::ZERO, t))
    }

    /// Emits `bsr rc,target` (call; return address in `rc`).
    pub fn bsr(&mut self, rc: Reg, target: impl Into<Target>) -> &mut Self {
        let t = self.resolve_or_fixup(target.into());
        self.push(Inst::ubranch(Opcode::Bsr, rc, t))
    }

    /// Emits an indirect `jmp (ra)`.
    pub fn jmp(&mut self, ra: Reg) -> &mut Self {
        self.push(Inst::jump(Opcode::Jmp, ra, Reg::ZERO))
    }

    /// Emits `jsr rc,(ra)` (indirect call).
    pub fn jsr(&mut self, rc: Reg, ra: Reg) -> &mut Self {
        self.push(Inst::jump(Opcode::Jsr, ra, rc))
    }

    /// Emits `ret (ra)`.
    pub fn ret(&mut self, ra: Reg) -> &mut Self {
        self.push(Inst::jump(Opcode::Ret, ra, Reg::ZERO))
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::nop())
    }

    /// Emits a `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::halt())
    }

    /// Resolves all fix-ups and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a referenced label was never
    /// defined, or [`AsmError::DuplicateLabel`] if a label was defined more
    /// than once.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(d) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(d));
        }
        for (at, label) in std::mem::take(&mut self.fixups) {
            let Some(&idx) = self.labels.get(&label) else {
                return Err(AsmError::UndefinedLabel(label));
            };
            self.insts[at].disp = idx as i64;
        }
        Ok(Program {
            insts: self.insts,
            entry: 0,
            labels: self.labels,
            base_addr: self.base_addr,
        })
    }

    /// Like [`Asm::finish`], but sets the program entry point to `entry`
    /// (a label or absolute index) instead of instruction 0. This lets a
    /// code generator lay out procedures in any order and still start
    /// execution at `main`.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if `entry` (or any referenced
    /// label) was never defined, or [`AsmError::DuplicateLabel`] on a
    /// doubly-defined label.
    pub fn finish_at(self, entry: impl Into<Target>) -> Result<Program, AsmError> {
        let entry = entry.into();
        let mut p = self.finish()?;
        p.entry = match entry {
            Target::Abs(i) => i,
            Target::Label(l) => match p.labels.get(&l) {
                Some(&idx) => idx,
                None => return Err(AsmError::UndefinedLabel(l)),
            },
        };
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::reg;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        a.beq(reg(1), "end"); // forward reference
        a.label("top");
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top"); // backward reference
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.insts[0].disp, 3, "forward label resolves past the loop");
        assert_eq!(p.insts[2].disp, 1, "backward label resolves to loop head");
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.br("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.finish().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn chained_building() {
        let mut a = Asm::new();
        a.li(reg(1), 5).addq(reg(1), 1, reg(2)).halt();
        let p = a.finish().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.insts[1].to_string(), "addq r1,1,r2");
    }

    #[test]
    fn finish_at_sets_entry() {
        let mut a = Asm::new();
        a.label("helper");
        a.nop();
        a.label("main");
        a.halt();
        let p = a.finish_at("main").unwrap();
        assert_eq!(p.entry, 1);

        let mut a = Asm::new();
        a.halt();
        assert_eq!(
            a.finish_at("missing").unwrap_err(),
            AsmError::UndefinedLabel("missing".into())
        );
    }

    #[test]
    fn absolute_targets() {
        let mut a = Asm::new();
        a.nop();
        a.br(0usize);
        let p = a.finish().unwrap();
        assert_eq!(p.insts[1].static_target(), Some(0));
    }
}
