//! Minimal little-endian byte codec for on-disk artifact serialization.
//!
//! The experiment harness persists memoized preparation artifacts
//! (selections, rewritten images, trace prefixes) under `target/mg-cache/`
//! (see `mg-harness::prep_cache`). The workspace deliberately carries no
//! serialization dependency, so this module provides the small, totally
//! explicit codec those artifacts use: fixed-width little-endian scalars,
//! length-prefixed sequences, and one-byte tags for enums.
//!
//! Compatibility is handled a level up: cache files embed a fingerprint
//! of everything the artifact depends on (format version, opcode set,
//! program image, workload registry version), and any mismatch or decode
//! error is treated as a cache miss. The codec therefore never needs to
//! be backward compatible — it only needs to be deterministic and to fail
//! loudly ([`WireError`]) on foreign bytes.
//!
//! [`Opcode`]s are encoded as their declaration index in [`Opcode::ALL`];
//! the opcode-set fingerprint ([`opcode_fingerprint`]) keyed into every
//! cache file invalidates stale indices when the instruction set changes.

use crate::exec::{BrRec, MemRef};
use crate::handle::{HandleCatalog, MgTemplate, TmplInst, TmplOperand};
use crate::inst::{Inst, Operand};
use crate::opcode::Opcode;
use crate::program::Program;
use crate::reg::{reg, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// A decode failure: the bytes are not a valid encoding of the requested
/// type. Cache readers treat any `WireError` as a miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A scalar was out of its legal range (e.g. an opcode index past
    /// [`Opcode::ALL`], a register index ≥ 32, or an oversized length).
    BadValue,
    /// A string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated input"),
            WireError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            WireError::BadValue => f.write_str("value out of range"),
            WireError::BadUtf8 => f.write_str("invalid UTF-8 in string"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sequence lengths above this are rejected as corrupt rather than
/// allocated (a damaged length prefix must not trigger a huge reserve).
const MAX_SEQ_LEN: u64 = 1 << 32;

/// An append-only byte sink for encoding.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over encoded bytes for decoding.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a sequence length written by [`Writer::u64`], bounds-checked.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > MAX_SEQ_LEN {
            return Err(WireError::BadValue);
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.seq_len()?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

/// A type with a deterministic byte encoding.
///
/// Encodings are self-delimiting (fixed width or length-prefixed), so
/// values compose by concatenation: `Vec<T>`, `Option<T>`, and product
/// types need no framing of their own.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn put(&self, w: &mut Writer);

    /// Decodes one value from `r`, advancing it.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] if the bytes are not a valid encoding.
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes `value` into a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.put(&mut w);
    w.into_bytes()
}

/// Decodes a `T` from `bytes`, requiring every byte to be consumed.
///
/// # Errors
///
/// Any [`WireError`], including [`WireError::BadValue`] for trailing
/// garbage.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::take(&mut r)?;
    if !r.is_exhausted() {
        return Err(WireError::BadValue);
    }
    Ok(v)
}

impl Wire for u8 {
    fn put(&self, w: &mut Writer) {
        w.u8(*self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn put(&self, w: &mut Writer) {
        w.u32(*self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn put(&self, w: &mut Writer) {
        w.u64(*self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for i64 {
    fn put(&self, w: &mut Writer) {
        w.i64(*self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.i64()
    }
}

impl Wire for usize {
    fn put(&self, w: &mut Writer) {
        w.u64(*self as u64);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadValue)
    }
}

impl Wire for bool {
    fn put(&self, w: &mut Writer) {
        w.u8(*self as u8);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn put(&self, w: &mut Writer) {
        w.str(self);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.put(w);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.put(w);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        // Reserve conservatively: a corrupt length fails on read, not on
        // allocation.
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::take(r)?, B::take(r)?))
    }
}

impl Wire for Reg {
    fn put(&self, w: &mut Writer) {
        w.u8(self.index() as u8);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let i = r.u8()?;
        if i >= 32 {
            return Err(WireError::BadValue);
        }
        Ok(reg(i))
    }
}

impl Wire for Opcode {
    fn put(&self, w: &mut Writer) {
        let idx =
            Opcode::ALL.iter().position(|&o| o == *self).expect("opcode in declaration list");
        w.u8(idx as u8);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let i = r.u8()? as usize;
        Opcode::ALL.get(i).copied().ok_or(WireError::BadValue)
    }
}

impl Wire for Operand {
    fn put(&self, w: &mut Writer) {
        match self {
            Operand::Reg(r) => {
                w.u8(0);
                r.put(w);
            }
            Operand::Imm(v) => {
                w.u8(1);
                w.i64(*v);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Operand::Reg(Reg::take(r)?)),
            1 => Ok(Operand::Imm(r.i64()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Inst {
    fn put(&self, w: &mut Writer) {
        self.op.put(w);
        self.ra.put(w);
        self.rb.put(w);
        self.rc.put(w);
        w.i64(self.disp);
        w.i64(self.aux);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Inst {
            op: Opcode::take(r)?,
            ra: Reg::take(r)?,
            rb: Operand::take(r)?,
            rc: Reg::take(r)?,
            disp: r.i64()?,
            aux: r.i64()?,
        })
    }
}

impl Wire for Program {
    fn put(&self, w: &mut Writer) {
        self.insts.put(w);
        self.entry.put(w);
        w.u64(self.labels.len() as u64);
        for (name, &idx) in &self.labels {
            w.str(name);
            idx.put(w);
        }
        w.u64(self.base_addr);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let insts = Vec::<Inst>::take(r)?;
        let entry = usize::take(r)?;
        let n = r.seq_len()?;
        let mut labels = BTreeMap::new();
        for _ in 0..n {
            let name = r.str()?;
            let idx = usize::take(r)?;
            labels.insert(name, idx);
        }
        let base_addr = r.u64()?;
        Ok(Program { insts, entry, labels, base_addr })
    }
}

impl Wire for TmplOperand {
    fn put(&self, w: &mut Writer) {
        match self {
            TmplOperand::E0 => w.u8(0),
            TmplOperand::E1 => w.u8(1),
            TmplOperand::M(i) => {
                w.u8(2);
                w.u8(*i);
            }
            TmplOperand::Imm(v) => {
                w.u8(3);
                w.i64(*v);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(TmplOperand::E0),
            1 => Ok(TmplOperand::E1),
            2 => Ok(TmplOperand::M(r.u8()?)),
            3 => Ok(TmplOperand::Imm(r.i64()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for TmplInst {
    fn put(&self, w: &mut Writer) {
        self.op.put(w);
        self.a.put(w);
        self.b.put(w);
        w.i64(self.disp);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TmplInst {
            op: Opcode::take(r)?,
            a: TmplOperand::take(r)?,
            b: TmplOperand::take(r)?,
            disp: r.i64()?,
        })
    }
}

impl Wire for MgTemplate {
    fn put(&self, w: &mut Writer) {
        self.ops.put(w);
        self.out.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MgTemplate { ops: Vec::take(r)?, out: Wire::take(r)? })
    }
}

impl Wire for HandleCatalog {
    fn put(&self, w: &mut Writer) {
        let templates: Vec<MgTemplate> = self.iter().map(|(_, t)| t.clone()).collect();
        templates.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let templates = Vec::<MgTemplate>::take(r)?;
        let mut c = HandleCatalog::new();
        for t in templates {
            c.add(t);
        }
        Ok(c)
    }
}

impl Wire for MemRef {
    fn put(&self, w: &mut Writer) {
        w.u64(self.addr);
        w.u8(self.width);
        self.store.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MemRef { addr: r.u64()?, width: r.u8()?, store: bool::take(r)? })
    }
}

impl Wire for BrRec {
    fn put(&self, w: &mut Writer) {
        self.taken.put(w);
        self.target.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BrRec { taken: bool::take(r)?, target: usize::take(r)? })
    }
}

/// Magic bytes opening every stream frame (see [`write_frame`]).
pub const FRAME_MAGIC: &[u8; 4] = b"MGF\x01";

/// Frames longer than this are rejected as corrupt rather than read (a
/// damaged or hostile length prefix must not trigger a huge allocation).
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// Writes one length-delimited frame to a byte stream: [`FRAME_MAGIC`],
/// a little-endian `u32` payload length, then the [`Wire`] encoding of
/// `value`. Frames are self-delimiting, so a stream of frames needs no
/// other synchronization; `mg-serve` uses them as its request/response
/// transport.
///
/// # Errors
///
/// [`std::io::ErrorKind::InvalidData`] if the encoded payload exceeds
/// [`MAX_FRAME_LEN`] (nothing is written to the stream in that case),
/// plus any I/O error from the underlying stream.
pub fn write_frame<T: Wire>(out: &mut impl std::io::Write, value: &T) -> std::io::Result<()> {
    let payload = to_bytes(value);
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame payload of {} bytes exceeds {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    out.write_all(FRAME_MAGIC)?;
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&payload)?;
    out.flush()
}

/// Reads one frame written by [`write_frame`] and decodes its payload.
///
/// # Errors
///
/// * [`std::io::ErrorKind::UnexpectedEof`] if the stream ends mid-frame;
/// * [`std::io::ErrorKind::InvalidData`] on bad magic, an oversized
///   length, or a payload that is not a valid [`Wire`] encoding of `T`
///   (including trailing bytes).
pub fn read_frame<T: Wire>(input: &mut impl std::io::Read) -> std::io::Result<T> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut head = [0u8; 8];
    input.read_exact(&mut head)?;
    if &head[..4] != FRAME_MAGIC {
        return Err(bad(format!("bad frame magic {:02x?}", &head[..4])));
    }
    let len = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(bad(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let mut payload = vec![0u8; len as usize];
    input.read_exact(&mut payload)?;
    from_bytes(&payload).map_err(|e| bad(format!("bad frame payload: {e}")))
}

/// The FNV-1a 64-bit offset basis (the hash of the empty string).
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit hash — the workspace's stand-in for a content hash in
/// cache keys and fingerprints (not cryptographic; collisions are guarded
/// by storing the full key in each cache file).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET_BASIS, bytes)
}

/// Folds `bytes` into a running FNV-1a state (`fnv1a(x) ==
/// fnv1a_extend(FNV_OFFSET_BASIS, x)`); lets large inputs hash
/// incrementally without concatenation.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fingerprint of the instruction set: hashes every mnemonic in
/// declaration order, so any opcode addition, removal, or reorder changes
/// it (and with it every cache key that embeds it).
pub fn opcode_fingerprint() -> u64 {
    let mut w = Writer::new();
    for op in Opcode::ALL {
        w.str(op.mnemonic());
    }
    fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&0u8);
        round_trip(&u32::MAX);
        round_trip(&u64::MAX);
        round_trip(&i64::MIN);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&String::from("mg-cache"));
        round_trip(&Some(42u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u32, 2, 3]);
    }

    #[test]
    fn isa_types_round_trip() {
        round_trip(&reg(17));
        for &op in Opcode::ALL {
            round_trip(&op);
        }
        round_trip(&Operand::Reg(reg(4)));
        round_trip(&Operand::Imm(-12345));
        round_trip(&Inst::handle(reg(1), reg(2), reg(3), 99, Some(7)));
        round_trip(&MemRef { addr: 0x8000, width: 8, store: true });
        round_trip(&BrRec { taken: false, target: 12 });
    }

    #[test]
    fn program_round_trips_with_labels() {
        let mut a = Asm::new();
        a.li(reg(1), 5);
        a.label("loop");
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "loop");
        a.halt();
        let p = a.finish().unwrap();
        let bytes = to_bytes(&p);
        let back: Program = from_bytes(&bytes).expect("program decodes");
        assert_eq!(back.insts, p.insts);
        assert_eq!(back.entry, p.entry);
        assert_eq!(back.labels, p.labels);
        assert_eq!(back.base_addr, p.base_addr);
    }

    #[test]
    fn template_and_catalog_round_trip() {
        let t = MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addl,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(2),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Cmplt,
                    a: TmplOperand::M(0),
                    b: TmplOperand::E1,
                    disp: 0,
                },
            ],
            out: Some(1),
        };
        round_trip(&t);
        let mut c = HandleCatalog::new();
        c.add(t.clone());
        c.add(MgTemplate { ops: vec![], out: None });
        let bytes = to_bytes(&c);
        let back: HandleCatalog = from_bytes(&bytes).expect("catalog decodes");
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(0), Some(&t));
    }

    #[test]
    fn corrupt_bytes_fail_loudly() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        assert_eq!(
            from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
        assert!(from_bytes::<Opcode>(&[250]).is_err());
        assert_eq!(from_bytes::<bool>(&[9]), Err(WireError::BadTag(9)));
        // Trailing garbage is an error, not silently ignored.
        let mut long = to_bytes(&7u64);
        long.push(0);
        assert_eq!(from_bytes::<u64>(&long), Err(WireError::BadValue));
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &String::from("hello")).unwrap();
        write_frame(&mut buf, &vec![1u64, 2, 3]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame::<String>(&mut r).unwrap(), "hello");
        assert_eq!(read_frame::<Vec<u64>>(&mut r).unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty(), "frames are self-delimiting");
    }

    #[test]
    fn corrupt_frames_fail_loudly() {
        use std::io::ErrorKind;
        let mut buf = Vec::new();
        write_frame(&mut buf, &7u64).unwrap();
        // Truncated mid-payload.
        let mut r = &buf[..buf.len() - 1];
        assert_eq!(read_frame::<u64>(&mut r).unwrap_err().kind(), ErrorKind::UnexpectedEof);
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        let mut r = &bad[..];
        assert_eq!(read_frame::<u64>(&mut r).unwrap_err().kind(), ErrorKind::InvalidData);
        // Oversized length prefix fails before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(FRAME_MAGIC);
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &huge[..];
        assert_eq!(read_frame::<u64>(&mut r).unwrap_err().kind(), ErrorKind::InvalidData);
        // An oversized payload is refused before anything hits the
        // stream (an error, not a panic: runner-provided payloads reach
        // this path in mg-serve).
        let mut out = Vec::new();
        let oversized = vec![0u8; MAX_FRAME_LEN as usize + 1];
        assert_eq!(
            write_frame(&mut out, &oversized).unwrap_err().kind(),
            ErrorKind::InvalidData
        );
        assert!(out.is_empty(), "nothing written for a refused frame");
        // A payload with trailing bytes is not a valid frame of u8.
        let mut trailing = Vec::new();
        write_frame(&mut trailing, &vec![0u8; 4]).unwrap();
        let mut r = &trailing[..];
        assert_eq!(read_frame::<u8>(&mut r).unwrap_err().kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn fingerprints_are_stable_within_a_build() {
        assert_eq!(opcode_fingerprint(), opcode_fingerprint());
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
