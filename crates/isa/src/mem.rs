//! Sparse paged byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, little-endian, byte-addressable memory.
///
/// Pages are allocated on first touch; reads of untouched memory return
/// zero. Accesses may straddle page boundaries.
///
/// ```
/// use mg_isa::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0xffe, 0x1122_3344_5566_7788); // crosses a page boundary
/// assert_eq!(m.read_u64(0xffe), 0x1122_3344_5566_7788);
/// assert_eq!(m.read_u8(0x1000), 0x66);
/// assert_eq!(m.read_u32(0x5000), 0, "untouched memory reads zero");
/// ```
#[derive(Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = val;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        for (i, &b) in buf.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, val: u16) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// A deterministic FNV-1a hash of the memory *contents*: resident
    /// pages in ascending address order, all-zero pages skipped (so a
    /// touched-but-zero page hashes identically to an untouched one).
    /// The artifact cache folds this into a workload's fingerprint to
    /// invalidate cached selections/traces when only the initial data
    /// image changes.
    pub fn content_hash(&self) -> u64 {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        let mut h = crate::wire::FNV_OFFSET_BASIS;
        for idx in indices {
            let page = &self.pages[&idx];
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            h = crate::wire::fnv1a_extend(h, &idx.to_le_bytes());
            h = crate::wire::fnv1a_extend(h, &page[..]);
        }
        h
    }

    /// Reads `width` bytes (1, 2, 4, or 8) zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn read_uint(&self, addr: u64, width: u8) -> u64 {
        match width {
            1 => self.read_u8(addr) as u64,
            2 => self.read_u16(addr) as u64,
            4 => self.read_u32(addr) as u64,
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Writes the low `width` bytes (1, 2, 4, or 8) of `val`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn write_uint(&mut self, addr: u64, width: u8, val: u64) {
        match width {
            1 => self.write_u8(addr, val as u8),
            2 => self.write_u16(addr, val as u16),
            4 => self.write_u32(addr, val as u32),
            8 => self.write_u64(addr, val),
            _ => panic!("unsupported access width {width}"),
        }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("resident_pages", &self.pages.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_tracks_data_not_residency() {
        let empty = Memory::new();
        let mut zeroed = Memory::new();
        zeroed.write_u64(0x1000, 0); // touched but still all-zero
        assert_eq!(empty.content_hash(), zeroed.content_hash());

        let mut a = Memory::new();
        a.write_u64(0x2000, 7);
        let mut b = Memory::new();
        b.write_u64(0x2000, 8);
        assert_ne!(a.content_hash(), b.content_hash(), "data keys the hash");
        assert_ne!(a.content_hash(), empty.content_hash());
        let mut moved = Memory::new();
        moved.write_u64(0x3000, 7); // same value, different page
        assert_ne!(a.content_hash(), moved.content_hash(), "address keys the hash");
        assert_eq!(a.content_hash(), a.clone().content_hash(), "deterministic");
    }

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trip_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 3;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn generic_width_accessors() {
        let mut m = Memory::new();
        m.write_uint(0, 2, 0xffff_abcd);
        assert_eq!(m.read_uint(0, 2), 0xabcd);
        assert_eq!(m.read_uint(0, 4), 0xabcd);
        m.write_uint(8, 8, u64::MAX);
        assert_eq!(m.read_uint(8, 1), 0xff);
    }
}
