//! Functional (architectural) execution semantics.
//!
//! [`step`] executes one *fetched* instruction — which for an `mg` handle
//! means the entire mini-graph, evaluated via its [`MgTemplate`](crate::MgTemplate) — and
//! reports the architectural events (memory access, control transfer) the
//! timing and profiling layers need.

use crate::handle::{HandleCatalog, TmplInst, TmplOperand};
use crate::inst::{Inst, Operand};
use crate::mem::Memory;
use crate::opcode::{OpClass, Opcode};
use crate::program::Program;
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Architectural CPU state: the register file and program counter.
#[derive(Clone, Debug)]
pub struct CpuState {
    /// Integer register values; `regs[31]` is maintained at zero.
    pub regs: [u64; 32],
    /// Current instruction index.
    pub pc: usize,
    /// Whether a `halt` has been executed.
    pub halted: bool,
}

impl CpuState {
    /// Creates a zeroed CPU state starting at `entry`.
    pub fn new(entry: usize) -> CpuState {
        CpuState { regs: [0; 32], pc: entry, halted: false }
    }

    /// Reads a register (the zero register always reads 0).
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to the zero register are discarded).
    pub fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// A memory reference performed by one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// Whether the access is a store.
    pub store: bool,
}

/// A control transfer performed by one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrRec {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The target instruction index (meaningful when taken).
    pub target: usize,
}

/// The result of executing one fetched instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// The memory reference, if any (mini-graphs perform at most one).
    pub mem: Option<MemRef>,
    /// The control transfer, if the instruction was a branch/jump (or a
    /// mini-graph terminating in one).
    pub br: Option<BrRec>,
    /// How many original program instructions this step represents: 1 for a
    /// singleton, the template length for a handle.
    pub represents: u32,
    /// Whether this step executed `halt`.
    pub halted: bool,
}

/// Errors produced by functional execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the code image.
    PcOutOfRange(usize),
    /// A handle referenced an MGID with no catalog entry.
    UnknownMgid(u32),
    /// A handle was executed but no catalog was supplied.
    MissingCatalog,
    /// `run_to_halt` exceeded its instruction budget.
    StepLimit(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "program counter {pc} out of range"),
            ExecError::UnknownMgid(id) => write!(f, "unknown MGID {id}"),
            ExecError::MissingCatalog => {
                f.write_str("handle executed without a handle catalog")
            }
            ExecError::StepLimit(n) => write!(f, "exceeded step limit of {n} instructions"),
        }
    }
}

impl Error for ExecError {}

/// Evaluates an operate-format ALU operation.
pub fn alu_eval(op: Opcode, a: u64, b: u64) -> u64 {
    let sext32 = |x: u64| x as u32 as i32 as i64 as u64;
    match op {
        Opcode::Addl => sext32(a.wrapping_add(b)),
        Opcode::Addq | Opcode::Lda => a.wrapping_add(b),
        Opcode::Subl => sext32(a.wrapping_sub(b)),
        Opcode::Subq => a.wrapping_sub(b),
        Opcode::S4addl => sext32(a.wrapping_mul(4).wrapping_add(b)),
        Opcode::S8addl => sext32(a.wrapping_mul(8).wrapping_add(b)),
        Opcode::S4addq => a.wrapping_mul(4).wrapping_add(b),
        Opcode::S8addq => a.wrapping_mul(8).wrapping_add(b),
        Opcode::Mull => sext32(a.wrapping_mul(b)),
        Opcode::Mulq => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Bis => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Bic => a & !b,
        Opcode::Ornot => a | !b,
        Opcode::Eqv => a ^ !b,
        Opcode::Sll => a.wrapping_shl((b & 63) as u32),
        Opcode::Srl => a.wrapping_shr((b & 63) as u32),
        Opcode::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Opcode::Cmpeq => (a == b) as u64,
        Opcode::Cmplt => ((a as i64) < (b as i64)) as u64,
        Opcode::Cmple => ((a as i64) <= (b as i64)) as u64,
        Opcode::Cmpult => (a < b) as u64,
        Opcode::Cmpule => (a <= b) as u64,
        Opcode::Zapnot => {
            let mut out = 0u64;
            for i in 0..8 {
                if (b >> i) & 1 == 1 {
                    out |= a & (0xffu64 << (8 * i));
                }
            }
            out
        }
        Opcode::Extbl => (a >> (8 * (b & 7))) & 0xff,
        Opcode::Sextb => a as u8 as i8 as i64 as u64,
        Opcode::Sextw => a as u16 as i16 as i64 as u64,
        _ => panic!("alu_eval called on non-ALU opcode {op}"),
    }
}

/// Evaluates a conditional-branch test against zero.
pub fn branch_taken(op: Opcode, a: u64) -> bool {
    match op {
        Opcode::Beq => a == 0,
        Opcode::Bne => a != 0,
        Opcode::Blt => (a as i64) < 0,
        Opcode::Ble => (a as i64) <= 0,
        Opcode::Bgt => (a as i64) > 0,
        Opcode::Bge => (a as i64) >= 0,
        _ => panic!("branch_taken called on non-branch opcode {op}"),
    }
}

fn load_value(op: Opcode, mem: &Memory, addr: u64) -> u64 {
    match op {
        Opcode::Ldq => mem.read_u64(addr),
        Opcode::Ldl => mem.read_u32(addr) as i32 as i64 as u64,
        Opcode::Ldwu => mem.read_u16(addr) as u64,
        Opcode::Ldbu => mem.read_u8(addr) as u64,
        _ => panic!("load_value called on non-load opcode {op}"),
    }
}

fn operand_value(state: &CpuState, o: Operand) -> u64 {
    match o {
        Operand::Reg(r) => state.read(r),
        Operand::Imm(i) => i as u64,
    }
}

/// Executes the handle `inst` (whose template is `tmpl`) against
/// architectural state, returning the step events.
fn exec_handle(
    inst: &Inst,
    tmpl: &[TmplInst],
    out: Option<u8>,
    state: &mut CpuState,
    mem: &mut Memory,
) -> StepInfo {
    let e0 = state.read(inst.ra);
    let e1 = operand_value(state, inst.rb);
    let mut interior = [0u64; 16];
    let mut mem_ref = None;
    let mut br = None;
    let mut next_pc = state.pc + 1;

    let val = |interior: &[u64; 16], o: TmplOperand| -> u64 {
        match o {
            TmplOperand::E0 => e0,
            TmplOperand::E1 => e1,
            TmplOperand::M(i) => interior[i as usize],
            TmplOperand::Imm(v) => v as u64,
        }
    };

    for (i, t) in tmpl.iter().enumerate() {
        match t.op.class() {
            OpClass::IntAlu | OpClass::IntMul => {
                interior[i] = alu_eval(t.op, val(&interior, t.a), val(&interior, t.b));
            }
            OpClass::Load => {
                let addr = val(&interior, t.a).wrapping_add(t.disp as u64);
                let width = t.op.mem_width().expect("load has a width");
                interior[i] = load_value(t.op, mem, addr);
                mem_ref = Some(MemRef { addr, width, store: false });
            }
            OpClass::Store => {
                let addr = val(&interior, t.b).wrapping_add(t.disp as u64);
                let width = t.op.mem_width().expect("store has a width");
                mem.write_uint(addr, width, val(&interior, t.a));
                mem_ref = Some(MemRef { addr, width, store: true });
            }
            OpClass::CondBranch => {
                let taken = branch_taken(t.op, val(&interior, t.a));
                let target = inst.aux as usize;
                br = Some(BrRec { taken, target });
                if taken {
                    next_pc = target;
                }
            }
            OpClass::UncondBranch => {
                let target = inst.aux as usize;
                br = Some(BrRec { taken: true, target });
                next_pc = target;
            }
            OpClass::Jump | OpClass::Handle | OpClass::Nop | OpClass::Pad | OpClass::Halt => {
                unreachable!("illegal opcode {op} inside a mini-graph template", op = t.op)
            }
        }
    }

    if let Some(o) = out {
        state.write(inst.rc, interior[o as usize]);
    }
    state.pc = next_pc;
    StepInfo { mem: mem_ref, br, represents: tmpl.len() as u32, halted: false }
}

/// Executes one fetched instruction at `state.pc`.
///
/// Handles are expanded via `catalog`; passing `None` is fine for programs
/// with no handles.
///
/// # Errors
///
/// * [`ExecError::PcOutOfRange`] if `state.pc` is outside the program.
/// * [`ExecError::MissingCatalog`] / [`ExecError::UnknownMgid`] for handle
///   lookups that cannot be satisfied.
pub fn step(
    prog: &Program,
    state: &mut CpuState,
    mem: &mut Memory,
    catalog: Option<&HandleCatalog>,
) -> Result<StepInfo, ExecError> {
    let pc = state.pc;
    let inst = prog.insts.get(pc).ok_or(ExecError::PcOutOfRange(pc))?;
    let mut info = StepInfo { mem: None, br: None, represents: 1, halted: false };

    match inst.op.class() {
        OpClass::IntAlu | OpClass::IntMul => {
            let a = state.read(inst.ra);
            let b = operand_value(state, inst.rb);
            state.write(inst.rc, alu_eval(inst.op, a, b));
            state.pc = pc + 1;
        }
        OpClass::Load => {
            let addr = state.read(inst.ra).wrapping_add(inst.disp as u64);
            let width = inst.op.mem_width().expect("load has a width");
            state.write(inst.rc, load_value(inst.op, mem, addr));
            info.mem = Some(MemRef { addr, width, store: false });
            state.pc = pc + 1;
        }
        OpClass::Store => {
            let addr = state.read(inst.ra).wrapping_add(inst.disp as u64);
            let width = inst.op.mem_width().expect("store has a width");
            mem.write_uint(addr, width, operand_value(state, inst.rb));
            info.mem = Some(MemRef { addr, width, store: true });
            state.pc = pc + 1;
        }
        OpClass::CondBranch => {
            let taken = branch_taken(inst.op, state.read(inst.ra));
            let target = inst.disp as usize;
            info.br = Some(BrRec { taken, target });
            state.pc = if taken { target } else { pc + 1 };
        }
        OpClass::UncondBranch => {
            state.write(inst.rc, (pc + 1) as u64);
            let target = inst.disp as usize;
            info.br = Some(BrRec { taken: true, target });
            state.pc = target;
        }
        OpClass::Jump => {
            let target = state.read(inst.ra) as usize;
            state.write(inst.rc, (pc + 1) as u64);
            info.br = Some(BrRec { taken: true, target });
            state.pc = target;
        }
        OpClass::Handle => {
            let catalog = catalog.ok_or(ExecError::MissingCatalog)?;
            let mgid = inst.mgid().expect("handle has an MGID");
            let tmpl = catalog.get(mgid).ok_or(ExecError::UnknownMgid(mgid))?;
            info = exec_handle(inst, &tmpl.ops, tmpl.out, state, mem);
        }
        OpClass::Nop => {
            state.pc = pc + 1;
        }
        OpClass::Pad => {
            // Rewriter padding: squashed at fetch, represents nothing.
            info.represents = 0;
            state.pc = pc + 1;
        }
        OpClass::Halt => {
            info.halted = true;
            state.halted = true;
        }
    }
    Ok(info)
}

/// Runs until `halt`, returning the number of *original* instructions
/// executed (handles count as their template length).
///
/// # Errors
///
/// Propagates [`step`] errors, and returns [`ExecError::StepLimit`] if more
/// than `max_steps` fetched instructions execute without halting.
pub fn run_to_halt(
    prog: &Program,
    state: &mut CpuState,
    mem: &mut Memory,
    catalog: Option<&HandleCatalog>,
    max_steps: u64,
) -> Result<u64, ExecError> {
    let mut executed = 0u64;
    for _ in 0..max_steps {
        let info = step(prog, state, mem, catalog)?;
        executed += info.represents as u64;
        if info.halted {
            return Ok(executed);
        }
    }
    Err(ExecError::StepLimit(max_steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::handle::MgTemplate;
    use crate::reg::reg;

    fn run(asm: Asm) -> (CpuState, Memory) {
        let p = asm.finish().unwrap();
        let mut cpu = CpuState::new(p.entry);
        let mut mem = Memory::new();
        run_to_halt(&p, &mut cpu, &mut mem, None, 100_000).unwrap();
        (cpu, mem)
    }

    #[test]
    fn alu_32_bit_sign_extension() {
        assert_eq!(alu_eval(Opcode::Addl, 0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(alu_eval(Opcode::Addq, 0x7fff_ffff, 1), 0x8000_0000);
        assert_eq!(alu_eval(Opcode::Subl, 0, 1), u64::MAX);
    }

    #[test]
    fn scaled_adds() {
        assert_eq!(alu_eval(Opcode::S4addl, 3, 5), 17);
        assert_eq!(alu_eval(Opcode::S8addq, 2, 1), 17);
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(alu_eval(Opcode::Bic, 0b1111, 0b0101), 0b1010);
        assert_eq!(alu_eval(Opcode::Ornot, 0, 0), u64::MAX);
        assert_eq!(alu_eval(Opcode::Eqv, 5, 5), u64::MAX);
        assert_eq!(alu_eval(Opcode::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(alu_eval(Opcode::Srl, (-8i64) as u64, 60), 15);
    }

    #[test]
    fn comparisons_signed_and_unsigned() {
        assert_eq!(alu_eval(Opcode::Cmplt, u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(alu_eval(Opcode::Cmpult, u64::MAX, 0), 0, "MAX !< 0 unsigned");
        assert_eq!(alu_eval(Opcode::Cmple, 5, 5), 1);
        assert_eq!(alu_eval(Opcode::Cmpule, 6, 5), 0);
    }

    #[test]
    fn byte_ops() {
        assert_eq!(alu_eval(Opcode::Zapnot, 0x1122_3344_5566_7788, 0x0f), 0x5566_7788);
        assert_eq!(alu_eval(Opcode::Extbl, 0x1122_3344_5566_7788, 2), 0x66);
        assert_eq!(alu_eval(Opcode::Sextb, 0x80, 0), (-128i64) as u64);
        assert_eq!(alu_eval(Opcode::Sextw, 0x8000, 0), (-32768i64) as u64);
    }

    #[test]
    fn loads_extend_correctly() {
        let mut a = Asm::new();
        a.li(reg(1), 0x2000);
        a.ldl(reg(2), 0, reg(1));
        a.ldbu(reg(3), 3, reg(1));
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        mem.write_u32(0x2000, 0x8000_0001);
        run_to_halt(&p, &mut cpu, &mut mem, None, 100).unwrap();
        assert_eq!(cpu.regs[2], 0xffff_ffff_8000_0001, "ldl sign-extends");
        assert_eq!(cpu.regs[3], 0x80, "ldbu zero-extends");
    }

    #[test]
    fn store_width() {
        let mut a = Asm::new();
        a.li(reg(1), 0x3000);
        a.li(reg(2), -1);
        a.stw(reg(2), 4, reg(1));
        a.halt();
        let (_, mem) = run(a);
        assert_eq!(mem.read_u64(0x3000), 0xffff_0000_0000);
    }

    #[test]
    fn loop_with_branches() {
        let mut a = Asm::new();
        a.li(reg(1), 5);
        a.li(reg(2), 0);
        a.label("top");
        a.addq(reg(2), reg(1), reg(2));
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let (cpu, _) = run(a);
        assert_eq!(cpu.regs[2], 15);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.bsr(reg(26), "func");
        a.halt();
        a.label("func");
        a.li(reg(1), 99);
        a.ret(reg(26));
        let (cpu, _) = run(a);
        assert_eq!(cpu.regs[1], 99);
    }

    #[test]
    fn zero_register_ignores_writes() {
        let mut a = Asm::new();
        a.li(Reg::ZERO, 42);
        a.halt();
        let (cpu, _) = run(a);
        assert_eq!(cpu.regs[31], 0);
    }

    #[test]
    fn step_limit_enforced() {
        let mut a = Asm::new();
        a.label("spin");
        a.br("spin");
        let p = a.finish().unwrap();
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let err = run_to_halt(&p, &mut cpu, &mut mem, None, 10).unwrap_err();
        assert_eq!(err, ExecError::StepLimit(10));
    }

    #[test]
    fn handle_executes_like_expansion() {
        // Handle for: addl E0,2 ; cmplt M0,E1 ; bne M1 -> taken jumps to aux.
        let mut cat = HandleCatalog::new();
        let mgid = cat.add(MgTemplate {
            ops: vec![
                TmplInst {
                    op: Opcode::Addl,
                    a: TmplOperand::E0,
                    b: TmplOperand::Imm(2),
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Cmplt,
                    a: TmplOperand::M(0),
                    b: TmplOperand::E1,
                    disp: 0,
                },
                TmplInst {
                    op: Opcode::Bne,
                    a: TmplOperand::M(1),
                    b: TmplOperand::Imm(0),
                    disp: 0,
                },
            ],
            out: Some(0),
        });
        // Program: r18 = 0, r5 = 10; handle adds 2 to r18 and loops while r18 < r5.
        let mut a = Asm::new();
        a.li(reg(18), 0);
        a.li(reg(5), 10);
        a.label("loop");
        a.push(Inst::handle(reg(18), reg(5), reg(18), mgid, Some(2)));
        a.halt();
        let p = a.finish().unwrap();
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let n = run_to_halt(&p, &mut cpu, &mut mem, Some(&cat), 1000).unwrap();
        assert_eq!(cpu.regs[18], 10);
        // 2 li's + 5 handle iterations * 3 represented + 1 halt.
        assert_eq!(n, 2 + 5 * 3 + 1);
    }

    #[test]
    fn handle_without_catalog_errors() {
        let mut a = Asm::new();
        a.push(Inst::handle(reg(1), reg(2), reg(3), 0, None));
        let p = a.finish().unwrap();
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        assert_eq!(step(&p, &mut cpu, &mut mem, None), Err(ExecError::MissingCatalog));
    }
}
