//! Architectural integer registers.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_REGS: usize = 32;

/// An architectural integer register, `r0` through `r31`.
///
/// Following the Alpha convention, `r31` ([`Reg::ZERO`]) always reads as
/// zero and writes to it are discarded.
///
/// ```
/// use mg_isa::Reg;
/// let r = Reg::new(7);
/// assert_eq!(r.to_string(), "r7");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register, `r31`.
    pub const ZERO: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Reg {
        assert!((index as usize) < NUM_REGS, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    pub fn try_new(index: u8) -> Option<Reg> {
        ((index as usize) < NUM_REGS).then_some(Reg(index))
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register `r31`.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// Iterates over all 32 architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

/// Shorthand constructor: `reg(5)` is `Reg::new(5)`.
///
/// # Panics
///
/// Panics if `index >= 32`.
pub const fn reg(index: u8) -> Reg {
    Reg::new(index)
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert_eq!(Reg::ZERO.index(), 31);
        assert!(!reg(0).is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(reg(0).to_string(), "r0");
        assert_eq!(reg(31).to_string(), "r31");
        assert_eq!(format!("{:?}", reg(12)), "r12");
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    fn all_covers_every_register() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        assert_eq!(v[31], Reg::ZERO);
    }

    #[test]
    #[should_panic]
    fn new_out_of_range_panics() {
        let _ = Reg::new(32);
    }
}
