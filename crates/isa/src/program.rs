//! Program images.

use crate::inst::Inst;
use std::collections::BTreeMap;
use std::fmt;

/// Default base byte address at which code images are laid out.
pub const DEFAULT_BASE_ADDR: u64 = 0x0010_0000;

/// Size of one encoded instruction in bytes (fixed-width ISA).
pub const INST_BYTES: u64 = 4;

/// A program: a code image plus labels and an entry point.
///
/// Instruction "addresses" at the architectural level are instruction
/// *indices*; the byte address seen by the instruction cache is
/// `base_addr + 4 * index`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The instructions, in layout order.
    pub insts: Vec<Inst>,
    /// Entry instruction index.
    pub entry: usize,
    /// Label name → instruction index.
    pub labels: BTreeMap<String, usize>,
    /// Base byte address of the image.
    pub base_addr: u64,
}

impl Program {
    /// Creates a program from raw instructions with entry point 0.
    pub fn from_insts(insts: Vec<Inst>) -> Program {
        Program { insts, entry: 0, labels: BTreeMap::new(), base_addr: DEFAULT_BASE_ADDR }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Byte address of the instruction at `index`.
    pub fn byte_addr(&self, index: usize) -> u64 {
        self.base_addr + INST_BYTES * index as u64
    }

    /// Index of the label, if defined.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// A textual disassembly listing.
    pub fn listing(&self) -> String {
        let mut rev: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, &idx) in &self.labels {
            rev.entry(idx).or_default().push(name);
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(names) = rev.get(&i) {
                for n in names {
                    out.push_str(n);
                    out.push_str(":\n");
                }
            }
            out.push_str(&format!("{i:6}  {inst}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::reg::reg;

    #[test]
    fn byte_addresses() {
        let p = Program::from_insts(vec![Inst::nop(), Inst::nop()]);
        assert_eq!(p.byte_addr(0), DEFAULT_BASE_ADDR);
        assert_eq!(p.byte_addr(1), DEFAULT_BASE_ADDR + 4);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn listing_includes_labels() {
        let mut p = Program::from_insts(vec![
            Inst::op3(Opcode::Addl, reg(1), 2i64, reg(1)),
            Inst::halt(),
        ]);
        p.labels.insert("start".into(), 0);
        let l = p.listing();
        assert!(l.contains("start:"));
        assert!(l.contains("addl r1,2,r1"));
    }
}
