//! Decoded instructions.

use crate::opcode::{OpClass, Opcode};
use crate::reg::Reg;
use std::fmt;

/// The second operand of an operate-format instruction: a register or an
/// immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate value, if this operand is one.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(i) => Some(i),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

impl From<i32> for Operand {
    fn from(i: i32) -> Operand {
        Operand::Imm(i as i64)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// A decoded instruction.
///
/// All instructions share one uniform layout; which fields are meaningful
/// depends on the opcode's [`OpClass`]:
///
/// | class           | `ra`          | `rb`            | `rc`        | `disp`             |
/// |-----------------|---------------|-----------------|-------------|--------------------|
/// | operate         | source 1      | source 2 / imm  | destination | —                  |
/// | load            | base address  | —               | destination | displacement       |
/// | store           | base address  | data source     | —           | displacement       |
/// | cond. branch    | test source   | —               | —           | target inst index  |
/// | `br`/`bsr`      | —             | —               | return addr | target inst index  |
/// | `jmp`/`jsr`/`ret` | target reg  | —               | return addr | —                  |
/// | `mg` handle     | interface E0  | interface E1    | interface out | MGID             |
///
/// Branch targets are absolute instruction indices (the assembler resolves
/// labels); byte addresses are derived as `base + 4 * index` for the cache
/// models. For `mg` handles whose mini-graph terminates in a branch, `aux`
/// holds the absolute branch-target index of this static instance (in real
/// hardware this displacement lives in the MGT immediate field; templates
/// are still identified by their *relative* displacement — see
/// `mg-core::template`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation code.
    pub op: Opcode,
    /// First register field (see table above).
    pub ra: Reg,
    /// Second operand (register or immediate).
    pub rb: Operand,
    /// Destination / third register field.
    pub rc: Reg,
    /// Displacement / branch target / MGID.
    pub disp: i64,
    /// Terminal-branch target for `mg` handles; unused otherwise.
    pub aux: i64,
}

impl Inst {
    /// Creates an operate-format instruction: `rc = ra op rb`.
    pub fn op3(op: Opcode, ra: Reg, rb: impl Into<Operand>, rc: Reg) -> Inst {
        debug_assert!(matches!(op.class(), OpClass::IntAlu | OpClass::IntMul));
        Inst { op, ra, rb: rb.into(), rc, disp: 0, aux: 0 }
    }

    /// Creates a load: `rc = MEM[ra + disp]`.
    pub fn load(op: Opcode, rc: Reg, disp: i64, base: Reg) -> Inst {
        debug_assert_eq!(op.class(), OpClass::Load);
        Inst { op, ra: base, rb: Operand::Imm(0), rc, disp, aux: 0 }
    }

    /// Creates a store: `MEM[base + disp] = data`.
    pub fn store(op: Opcode, data: Reg, disp: i64, base: Reg) -> Inst {
        debug_assert_eq!(op.class(), OpClass::Store);
        Inst { op, ra: base, rb: Operand::Reg(data), rc: Reg::ZERO, disp, aux: 0 }
    }

    /// Creates a conditional branch testing `ra` with absolute target
    /// instruction index `target`.
    pub fn branch(op: Opcode, ra: Reg, target: i64) -> Inst {
        debug_assert_eq!(op.class(), OpClass::CondBranch);
        Inst { op, ra, rb: Operand::Imm(0), rc: Reg::ZERO, disp: target, aux: 0 }
    }

    /// Creates a direct unconditional branch; `rc` receives the return
    /// address (use [`Reg::ZERO`] for a plain goto).
    pub fn ubranch(op: Opcode, rc: Reg, target: i64) -> Inst {
        debug_assert_eq!(op.class(), OpClass::UncondBranch);
        Inst { op, ra: Reg::ZERO, rb: Operand::Imm(0), rc, disp: target, aux: 0 }
    }

    /// Creates an indirect jump through `ra`; `rc` receives the return
    /// address (for `jsr`).
    pub fn jump(op: Opcode, ra: Reg, rc: Reg) -> Inst {
        debug_assert_eq!(op.class(), OpClass::Jump);
        Inst { op, ra, rb: Operand::Imm(0), rc, disp: 0, aux: 0 }
    }

    /// Creates a mini-graph handle with interface registers `(e0, e1, out)`
    /// and MGT index `mgid`. `branch_target` is the absolute target index of
    /// the mini-graph's terminal branch, if it has one.
    pub fn handle(e0: Reg, e1: Reg, out: Reg, mgid: u32, branch_target: Option<i64>) -> Inst {
        Inst {
            op: Opcode::Mg,
            ra: e0,
            rb: Operand::Reg(e1),
            rc: out,
            disp: mgid as i64,
            aux: branch_target.unwrap_or(-1),
        }
    }

    /// The terminal-branch target of a handle, if its mini-graph ends in a
    /// control transfer.
    pub fn handle_branch_target(&self) -> Option<usize> {
        (self.op == Opcode::Mg && self.aux >= 0).then_some(self.aux as usize)
    }

    /// Creates a `nop`.
    pub fn nop() -> Inst {
        Inst {
            op: Opcode::Nop,
            ra: Reg::ZERO,
            rb: Operand::Imm(0),
            rc: Reg::ZERO,
            disp: 0,
            aux: 0,
        }
    }

    /// Creates a `pad` (rewriter padding; squashed at fetch, represents no
    /// original instruction).
    pub fn pad() -> Inst {
        Inst {
            op: Opcode::Pad,
            ra: Reg::ZERO,
            rb: Operand::Imm(0),
            rc: Reg::ZERO,
            disp: 0,
            aux: 0,
        }
    }

    /// Creates a `halt`.
    pub fn halt() -> Inst {
        Inst {
            op: Opcode::Halt,
            ra: Reg::ZERO,
            rb: Operand::Imm(0),
            rc: Reg::ZERO,
            disp: 0,
            aux: 0,
        }
    }

    /// Source registers, excluding the zero register.
    ///
    /// At most two entries are ever populated, matching the singleton
    /// interface that the paper's pipeline machinery assumes.
    pub fn src_regs(&self) -> [Option<Reg>; 2] {
        let keep = |r: Reg| (!r.is_zero()).then_some(r);
        match self.op.class() {
            OpClass::IntAlu | OpClass::IntMul => {
                [keep(self.ra), self.rb.as_reg().and_then(keep)]
            }
            OpClass::Load => [keep(self.ra), None],
            OpClass::Store => [keep(self.ra), self.rb.as_reg().and_then(keep)],
            OpClass::CondBranch => [keep(self.ra), None],
            OpClass::UncondBranch => [None, None],
            OpClass::Jump => [keep(self.ra), None],
            OpClass::Handle => [keep(self.ra), self.rb.as_reg().and_then(keep)],
            OpClass::Nop | OpClass::Pad | OpClass::Halt => [None, None],
        }
    }

    /// Destination register, if any (writes to `r31` report `None`).
    pub fn dest_reg(&self) -> Option<Reg> {
        let keep = |r: Reg| (!r.is_zero()).then_some(r);
        match self.op.class() {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Load | OpClass::Handle => {
                keep(self.rc)
            }
            OpClass::UncondBranch | OpClass::Jump => keep(self.rc),
            OpClass::Store
            | OpClass::CondBranch
            | OpClass::Nop
            | OpClass::Pad
            | OpClass::Halt => None,
        }
    }

    /// The MGID, if this is a handle.
    pub fn mgid(&self) -> Option<u32> {
        (self.op == Opcode::Mg).then_some(self.disp as u32)
    }

    /// Whether this instruction has a statically known control target
    /// (conditional or direct unconditional branch).
    pub fn static_target(&self) -> Option<usize> {
        match self.op.class() {
            OpClass::CondBranch | OpClass::UncondBranch => Some(self.disp as usize),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.class() {
            OpClass::IntAlu | OpClass::IntMul => {
                write!(f, "{m} {},{},{}", self.ra, self.rb, self.rc)
            }
            OpClass::Load => write!(f, "{m} {},{}({})", self.rc, self.disp, self.ra),
            OpClass::Store => write!(f, "{m} {},{}({})", self.rb, self.disp, self.ra),
            OpClass::CondBranch => write!(f, "{m} {},@{}", self.ra, self.disp),
            OpClass::UncondBranch => {
                if self.rc.is_zero() {
                    write!(f, "{m} @{}", self.disp)
                } else {
                    write!(f, "{m} {},@{}", self.rc, self.disp)
                }
            }
            OpClass::Jump => {
                if self.rc.is_zero() {
                    write!(f, "{m} ({})", self.ra)
                } else {
                    write!(f, "{m} {},({})", self.rc, self.ra)
                }
            }
            OpClass::Handle => {
                write!(f, "{m} {},{},{},{}", self.ra, self.rb, self.rc, self.disp)
            }
            OpClass::Nop | OpClass::Pad | OpClass::Halt => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::reg;

    #[test]
    fn operate_srcs_and_dest() {
        let i = Inst::op3(Opcode::Addl, reg(18), 2i64, reg(18));
        assert_eq!(i.src_regs(), [Some(reg(18)), None]);
        assert_eq!(i.dest_reg(), Some(reg(18)));

        let i = Inst::op3(Opcode::Cmplt, reg(18), reg(5), reg(7));
        assert_eq!(i.src_regs(), [Some(reg(18)), Some(reg(5))]);
        assert_eq!(i.dest_reg(), Some(reg(7)));
    }

    #[test]
    fn zero_register_suppressed() {
        let i = Inst::op3(Opcode::Bis, Reg::ZERO, reg(18), Reg::ZERO);
        assert_eq!(i.src_regs(), [None, Some(reg(18))]);
        assert_eq!(i.dest_reg(), None);
    }

    #[test]
    fn load_store_layout() {
        let ld = Inst::load(Opcode::Ldq, reg(2), 16, reg(4));
        assert_eq!(ld.src_regs(), [Some(reg(4)), None]);
        assert_eq!(ld.dest_reg(), Some(reg(2)));
        assert_eq!(ld.to_string(), "ldq r2,16(r4)");

        let st = Inst::store(Opcode::Stl, reg(3), -8, reg(30));
        assert_eq!(st.src_regs(), [Some(reg(30)), Some(reg(3))]);
        assert_eq!(st.dest_reg(), None);
        assert_eq!(st.to_string(), "stl r3,-8(r30)");
    }

    #[test]
    fn branch_layout() {
        let b = Inst::branch(Opcode::Bne, reg(7), 10);
        assert_eq!(b.src_regs(), [Some(reg(7)), None]);
        assert_eq!(b.dest_reg(), None);
        assert_eq!(b.static_target(), Some(10));
        assert_eq!(b.to_string(), "bne r7,@10");
    }

    #[test]
    fn handle_layout() {
        let h = Inst::handle(reg(18), reg(5), reg(18), 12, Some(42));
        assert_eq!(h.mgid(), Some(12));
        assert_eq!(h.src_regs(), [Some(reg(18)), Some(reg(5))]);
        assert_eq!(h.dest_reg(), Some(reg(18)));
        assert_eq!(h.aux, 42);
        assert_eq!(h.to_string(), "mg r18,r5,r18,12");
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Inst::op3(Opcode::Addl, reg(18), 2i64, reg(18));
        assert_eq!(i.to_string(), "addl r18,2,r18");
        let i = Inst::op3(Opcode::S8addl, reg(7), reg(0), reg(7));
        assert_eq!(i.to_string(), "s8addl r7,r0,r7");
    }
}
