//! The shared client-soak harness behind `mg chaos` and `mg loadgen`.
//!
//! Both subcommands drive a server (a single fault-injected daemon for
//! chaos, a shard cluster for loadgen) with N concurrent retrying
//! clients and demand the same invariants:
//!
//! * **No hang** — every client reaches a terminal outcome before the
//!   soak deadline ([`drive`] enforces it with a channel watchdog, so
//!   the harness never joins a potentially-hung thread).
//! * **Byte-identity** — a job carrying an expected payload fails on
//!   the first delivered byte that differs from the fault-free `mg run`
//!   output for the same request.
//! * **Bounded recovery** — transport faults retry inside
//!   [`Client::request_with_retry`]; *terminal* errors the harness
//!   knows to be transient (injected panics, a shard answering its
//!   non-draining shutdown) retry through a small outer loop
//!   ([`OUTER_ATTEMPTS`]) because a fresh identical request starts a
//!   fresh batch.
//! * **Exactly-once delivery** — replayed streams (a retried
//!   connection, a failover successor re-emitting its prefix) must not
//!   double-count progress: [`ReplayDedup`] admits each stream position
//!   once, whatever mix of replays produced it.
//!
//! Everything here is deterministic given the caller's seed: retry
//! jitter derives from [`retry_policy`]'s per-client seed mix and the
//! request schedule is the caller's, so a failing soak replays.

use mg_serve::{Client, Request, Response, RetryPolicy, RunRequest};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock bound on a whole soak: a client that has not reached a
/// terminal outcome by then counts as hung and fails the run.
pub const SOAK_DEADLINE: Duration = Duration::from_secs(300);

/// Per-request transport attempt budget. Chosen above the worst
/// deterministic fault schedule `mg chaos` can arm (every I/O point is
/// a capped burst), so a client cannot deterministically run out of
/// retries.
pub const CLIENT_ATTEMPTS: u32 = 32;

/// Outer retries per job around *terminal* transient errors (injected
/// panics, shard shutdown answers) — each identical re-request starts a
/// fresh batch server-side.
pub const OUTER_ATTEMPTS: usize = 8;

/// The retry policy every soak client runs under: capped exponential
/// backoff with jitter seeded per client, so concurrent clients spread
/// out deterministically.
pub fn retry_policy(seed: u64, client: usize) -> RetryPolicy {
    RetryPolicy {
        attempts: CLIENT_ATTEMPTS,
        backoff_ms: 10,
        max_backoff_ms: 200,
        jitter_seed: seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

/// Whether a *terminal* `Error` frame is a transient condition the soak
/// recovers from by re-requesting: an injected worker/prep panic
/// (`mg chaos`), or work answered by a shard's non-draining shutdown
/// before the coordinator routes the retry around it (`mg loadgen
/// --kill-shard`). Anything else is a real failure and fails the job.
pub fn transient_terminal(message: &str) -> bool {
    message.contains("panicked")
        || message.contains("injected fault")
        || message.contains("shutting down")
}

/// One request a soak client issues, with the payload it must receive.
#[derive(Clone)]
pub struct SoakJob {
    /// Display label for failure messages (e.g. `"fig7/json"`).
    pub label: String,
    /// The run request.
    pub request: RunRequest,
    /// Expected `Done` payload — the fault-free `mg run` stdout for the
    /// same arguments. `None` accepts any successful payload (used by
    /// schedule probes, never by the shipped soaks).
    pub want: Option<Arc<String>>,
}

/// What one client's walk produced.
#[derive(Clone, Debug, Default)]
pub struct ClientOutcome {
    /// Transient terminal errors recovered by the outer retry loop.
    pub recovered: u64,
    /// Client-observed wall latency per job, in schedule order —
    /// including every retry the job needed.
    pub latencies: Vec<Duration>,
    /// Progress frames delivered exactly once across all replays
    /// (deduplicated by [`ReplayDedup`]).
    pub progress_frames: u64,
}

/// Exactly-once admission for replayed response streams.
///
/// A batch replays its already-emitted frames to a (re)attaching
/// client, and a failover successor re-emits the prefix the client
/// already has; either way the same stream *position* can arrive more
/// than once. The filter tracks a high-water mark: [`ReplayDedup::admit`]
/// returns `true` only the first time a position is reached, and
/// [`ReplayDedup::rewind`] restarts the position (not the mark) at each
/// replay. Unit-tested below; the soak counts progress through it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayDedup {
    delivered: usize,
    position: usize,
}

impl ReplayDedup {
    /// A fresh filter (nothing delivered).
    pub fn new() -> ReplayDedup {
        ReplayDedup::default()
    }

    /// Start of a replay: the stream restarts from position zero, but
    /// everything up to the high-water mark was already delivered.
    pub fn rewind(&mut self) {
        self.position = 0;
    }

    /// Accounts one incoming non-terminal frame; `true` iff this
    /// position has not been delivered before.
    pub fn admit(&mut self) -> bool {
        self.position += 1;
        if self.position > self.delivered {
            self.delivered = self.position;
            true
        } else {
            false
        }
    }

    /// Positions delivered so far (the high-water mark).
    pub fn delivered(&self) -> usize {
        self.delivered
    }
}

/// One client's soak: walk `jobs` in order, retrying transport faults
/// through [`Client::request_with_retry`] and transient terminal errors
/// through the outer loop. Fails fast on a payload mismatch, an
/// unexpected terminal frame, or an exhausted retry budget.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn client_soak(
    client: &Client,
    policy: &RetryPolicy,
    jobs: &[SoakJob],
) -> Result<ClientOutcome, String> {
    let mut outcome = ClientOutcome::default();
    for job in jobs {
        let req = Request::Run(job.request.clone());
        let started = Instant::now();
        let mut dedup = ReplayDedup::new();
        let mut done = false;
        for _ in 0..OUTER_ATTEMPTS {
            dedup.rewind();
            let mut fresh = 0u64;
            let reply = client.request_with_retry(&req, policy, |e| {
                if !e.is_terminal() && dedup.admit() {
                    fresh += 1;
                }
            });
            match reply {
                Ok(Response::Done { status: 0, payload }) => {
                    outcome.progress_frames += fresh;
                    if let Some(want) = &job.want {
                        if payload != **want {
                            return Err(format!(
                                "payload mismatch for {}: served {} bytes, reference {} bytes",
                                job.label,
                                payload.len(),
                                want.len()
                            ));
                        }
                    }
                    done = true;
                    break;
                }
                Ok(Response::Done { status, .. }) => {
                    return Err(format!("unexpected run status {status} for {}", job.label));
                }
                // An injected worker/prep panic (or a killed shard's
                // shutdown answer) surfaces as a terminal Error; the
                // next identical request starts a fresh batch.
                Ok(Response::Error { message }) if transient_terminal(&message) => {
                    if std::env::var_os("MG_CHAOS_DEBUG").is_some() {
                        eprintln!("mg soak[debug]: recovered terminal: {message}");
                    }
                    outcome.recovered += 1;
                }
                Ok(other) => {
                    return Err(format!(
                        "unexpected terminal frame {other:?} for {}",
                        job.label
                    ));
                }
                Err(e) => return Err(format!("retry budget exhausted: {e}")),
            }
        }
        if !done {
            return Err("injected panics outlasted the outer retry budget".into());
        }
        outcome.latencies.push(started.elapsed());
    }
    Ok(outcome)
}

/// What [`drive`] collects: each client's `(index, soak result)` in
/// completion order.
pub type DrivenResults = Vec<(usize, Result<ClientOutcome, String>)>;

/// Runs `clients` soak threads concurrently under `deadline`, invoking
/// `on_result` as each finishes (in completion order) and returning
/// every `(client index, result)`. Threads report through a channel and
/// the main thread enforces the deadline with `recv_timeout`, so a hung
/// client is reported — never joined.
///
/// # Errors
///
/// A hang: some client missed the deadline.
pub fn drive(
    clients: usize,
    deadline: Duration,
    mut make: impl FnMut(usize) -> Box<dyn FnOnce() -> Result<ClientOutcome, String> + Send>,
    mut on_result: impl FnMut(usize, &Result<ClientOutcome, String>),
) -> Result<DrivenResults, String> {
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<(usize, Result<ClientOutcome, String>)>();
    for idx in 0..clients {
        let tx = tx.clone();
        let work = make(idx);
        std::thread::spawn(move || {
            let _ = tx.send((idx, work()));
        });
    }
    drop(tx);
    let mut results = Vec::with_capacity(clients);
    for _ in 0..clients {
        let remaining = deadline.saturating_sub(started.elapsed());
        match rx.recv_timeout(remaining) {
            Ok((idx, result)) => {
                on_result(idx, &result);
                results.push((idx, result));
            }
            Err(_) => {
                return Err(format!(
                    "HANG — a client missed the {}s soak deadline",
                    deadline.as_secs()
                ));
            }
        }
    }
    Ok(results)
}

/// Looks up one counter in a `Stats` pair list (0 when absent —
/// consumers must ignore unknown names, and tolerate missing ones).
pub fn stat(pairs: &[(String, u64)], name: &str) -> u64 {
    pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

/// Requests a graceful drain shutdown, retrying a torn ack: a refused
/// connection means the endpoint is already down, which also counts as
/// drained. `false` when the ack never arrives.
pub fn drain_endpoint(client: &Client) -> bool {
    for _ in 0..20 {
        match client.request(&Request::Shutdown { drain: true }, |_| {}) {
            Ok(Response::Done { .. }) => return true,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => return true,
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exactly-once contract: however a stream is replayed, each
    /// position is admitted exactly once.
    #[test]
    fn replay_dedup_admits_each_position_exactly_once() {
        let mut dedup = ReplayDedup::new();
        // First attempt delivers three frames, all fresh.
        assert!(dedup.admit());
        assert!(dedup.admit());
        assert!(dedup.admit());
        assert_eq!(dedup.delivered(), 3);
        // The connection dies; the retry replays the prefix (positions
        // 1..=3 again) and then extends the stream by two.
        dedup.rewind();
        assert!(!dedup.admit());
        assert!(!dedup.admit());
        assert!(!dedup.admit());
        assert!(dedup.admit());
        assert!(dedup.admit());
        assert_eq!(dedup.delivered(), 5);
        // A second full replay (e.g. a failover successor) is entirely
        // suppressed until it passes the high-water mark.
        dedup.rewind();
        assert_eq!((0..5).filter(|_| dedup.admit()).count(), 0);
        assert!(dedup.admit(), "position 6 is new");
        assert_eq!(dedup.delivered(), 6);
    }

    #[test]
    fn transient_terminals_cover_panics_faults_and_shutdown_answers() {
        assert!(transient_terminal("exec: experiment \"fig7\" failed: worker panicked"));
        assert!(transient_terminal("injected fault at serve.write.torn"));
        assert!(transient_terminal("server is shutting down"));
        assert!(!transient_terminal("invalid-spec: unknown experiment \"fig99\""));
        assert!(!transient_terminal("no live shard could complete the request"));
    }

    #[test]
    fn retry_policies_share_the_budget_but_jitter_apart() {
        let a = retry_policy(7, 0);
        let b = retry_policy(7, 1);
        assert_eq!(a.attempts, CLIENT_ATTEMPTS);
        assert_eq!(a.attempts, b.attempts);
        assert_ne!(a.jitter_seed, b.jitter_seed, "per-client jitter seeds differ");
        assert_eq!(a.jitter_seed, retry_policy(7, 0).jitter_seed, "and are deterministic");
    }
}
