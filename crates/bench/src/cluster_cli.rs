//! The `mg cluster` subcommand: N registry shards behind one
//! consistent-hash coordinator.
//!
//! `mg cluster` is to `mg serve` what a fleet is to a daemon: it spawns
//! `--shards` in-process registry servers (each the exact server
//! `mg serve` runs, with its own worker pool and bounded queue), binds
//! one front socket speaking the ordinary wire protocol, and routes
//! each `Run` by its preparation key over the consistent-hash ring —
//! identical requests keep landing on (and coalescing inside) the same
//! shard, and idle shards steal queued batches from busy peers.
//!
//! Each shard persists preparation artifacts under its own root
//! (`<cache>/cluster-shard<i>`) that reads through to the ordinary
//! shared cache root, so a cell prepared anywhere is a byte-copy away
//! everywhere and a restarted shard starts warm.
//!
//! `mg client --addr <front>` works unchanged; `mg client shutdown`
//! drains the whole fleet. See `docs/ARCHITECTURE.md` for the request
//! lifecycle and `mg loadgen` for the load generator that soaks this
//! coordinator.

use crate::serve_cli;
use mg_api::Session;
use mg_cluster::{Cluster, ClusterConfig, ShardFactory};
use mg_harness::prep_cache::PrepCache;
use mg_serve::ServerConfig;
use std::sync::Arc;

/// Default TCP endpoint of `mg cluster` (one port up from `mg serve`,
/// so a daemon and a cluster can coexist on one host).
pub const DEFAULT_ADDR: &str = "127.0.0.1:4572";

/// `mg cluster`: run the shard coordinator until a client sends
/// `shutdown`.
pub fn cmd_cluster(argv: &[String]) -> i32 {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut shards = 3usize;
    let mut shard_cfg = ServerConfig::default();
    fn positive(flag: &str, v: String) -> Result<usize, String> {
        v.parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{flag} requires a positive integer"))
    }
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => addr = value("--addr")?,
                "--shards" => shards = positive(a, value(a)?)?,
                "--workers" => shard_cfg.workers = positive(a, value(a)?)?,
                "--max-queue" => shard_cfg.max_queue = positive(a, value(a)?)?,
                other => return Err(format!("unknown argument {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg cluster: {e}");
            return 2;
        }
    }

    // Shard cache layout: a private root per shard reading through to
    // the ordinary shared root, so warm artifacts flow between shards
    // (and into the cache `mg run` uses) without double preparation.
    let shared_root = PrepCache::default_root();
    let factory: ShardFactory = {
        let shared_root = shared_root.clone();
        let shard_cfg = shard_cfg.clone();
        Arc::new(move |shard| {
            let session = Session::builder()
                .cache_dir(shared_root.join(format!("cluster-shard{shard}")))
                .cache_fallback_dir(&shared_root)
                .build();
            serve_cli::bind_registry_server_with(
                "127.0.0.1:0",
                false,
                session,
                shard_cfg.clone(),
            )
        })
    };
    let cfg = ClusterConfig { shards, ..ClusterConfig::default() };
    let cluster = match Cluster::bind(addr.as_str(), factory, cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mg cluster: cannot bind {addr}: {e}");
            return 1;
        }
    };
    let shown = cluster.local_addr().map(|a| a.to_string()).unwrap_or_else(|| addr.clone());
    eprintln!(
        "mg cluster: coordinator on {shown} ({shards} shards, {} workers each, queue bound \
         {}); stop with `mg client shutdown`",
        shard_cfg.workers, shard_cfg.max_queue
    );
    match cluster.serve() {
        Ok(()) => {
            eprintln!("mg cluster: shut down cleanly");
            0
        }
        Err(e) => {
            eprintln!("mg cluster: {e}");
            1
        }
    }
}
