//! The mg-lang frontend in the CLI: the `lang` experiment (`mg run
//! lang`, also available through `mg serve` / `mg client run lang`) and
//! the `mg compile` subcommand.
//!
//! The experiment drives the built-in regression corpus — plus, for
//! one-off runs, any `--lang FILE.mgl` program — through the full
//! pipeline three times over: static compilation (stats table),
//! three-way verification (reference interpreter vs. compiled image vs.
//! rewritten image, both styles), and a (workload × run) simulation
//! matrix in which every compiled program is registered through the
//! [`WorkloadSource`] extension point exactly like an out-of-tree
//! embedder would, so preparation, the warm pool, and the artifact
//! cache all see content-hashed `mgl/...` identities.

use crate::cli::{parse_input, render, Format, Report, RunArgs, TableBlock};
use mg_api::WorkloadSource;
use mg_core::{extract, rewrite, Policy, RewriteStyle};
use mg_harness::{gmean, BuildError, ExtraSource, Run};
use mg_lang::codegen::observe;
use mg_lang::{corpus, interpret, LangWorkload};
use mg_profile::run_program;
use mg_uarch::SimConfig;
use mg_workloads::Input;
use std::path::Path;
use std::sync::Arc;

/// Step budget for the reference interpreter (AST nodes visited).
const INTERP_STEPS: u64 = 20_000_000;
/// Step budget for functional simulation of compiled images.
const SIM_STEPS: u64 = 200_000_000;

/// Loads the built-in corpus plus (optionally) the `--lang FILE`
/// program, which reports under its file stem. The error carries the
/// documented exit status (74 I/O, 65 parse).
fn load_programs(args: &RunArgs) -> Result<Vec<Arc<LangWorkload>>, (String, i32)> {
    let mut programs: Vec<Arc<LangWorkload>> = corpus::all()
        .into_iter()
        .map(|(name, src)| {
            Arc::new(LangWorkload::from_source(name, src).expect("corpus programs compile"))
        })
        .collect();
    if let Some(path) = &args.lang {
        let src = std::fs::read_to_string(path)
            .map_err(|e| (format!("cannot read {path}: {e}"), 74))?;
        let stem = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("program")
            .to_string();
        let wl =
            LangWorkload::from_source(stem, &src).map_err(|e| (format!("{path}: {e}"), 65))?;
        programs.push(Arc::new(wl));
    }
    Ok(programs)
}

/// Adapts a [`LangWorkload`] to the harness's [`ExtraSource`] shape —
/// the same adaptation `mg_api` applies to session-registered sources.
/// Engine-visible names get an `mgl.` prefix so served pool stats and
/// report rows are unambiguous next to registry kernels.
pub(crate) fn to_extra(wl: &Arc<LangWorkload>) -> ExtraSource {
    let owned = Arc::clone(wl);
    ExtraSource {
        name: format!("mgl.{}", wl.name()),
        suite: wl.suite(),
        stable_id: wl.stable_id(),
        build: Arc::new(move |input: &Input| {
            owned.build(input).map_err(|e| Box::new(e) as BuildError)
        }),
    }
}

/// The built-in corpus as engine-ready extra sources (`mgl.<name>`
/// identities) — shared with the `policy_lab` experiment, which runs
/// the compiled corpus through every selection policy alongside the
/// registry kernels.
pub(crate) fn corpus_extras() -> Vec<ExtraSource> {
    corpus::all()
        .into_iter()
        .map(|(name, src)| {
            let wl = Arc::new(
                LangWorkload::from_source(name, src).expect("corpus programs compile"),
            );
            to_extra(&wl)
        })
        .collect()
}

/// One program's three-way verification outcome (all cells `ok` on a
/// healthy build).
struct Verification {
    checksum: i64,
    outputs: usize,
    sim: &'static str,
    nop: &'static str,
    compressed: &'static str,
}

/// Runs `wl` three ways for `input` and compares the architectural
/// observables. `Err` carries a diagnostic (interpreter budget, a
/// non-halting image) — never a mismatch, which is reported per-cell.
fn verify(wl: &LangWorkload, input: &Input) -> Result<Verification, String> {
    let module = wl.module();
    let want = interpret(module, input, INTERP_STEPS).map_err(|e| e.to_string())?;
    let compiled = wl.compile(input).map_err(|e| e.to_string())?;

    let run = |prog: &mg_isa::Program,
               catalog: Option<&mg_isa::HandleCatalog>|
     -> Result<mg_lang::codegen::Observation, String> {
        let mut mem = compiled.memory();
        run_program(prog, &mut mem, catalog, SIM_STEPS)
            .map_err(|e| format!("image did not halt: {e:?}"))?;
        Ok(observe(module, &mem))
    };

    let expected = mg_lang::codegen::Observation {
        checksum: want.checksum,
        outputs: want.outputs,
        globals: want.globals,
        arrays: want.arrays,
    };
    let sim = if run(&compiled.program, None)? == expected { "ok" } else { "MISMATCH" };

    let ex = extract(
        &compiled.program,
        &mut compiled.memory(),
        &Policy::integer_memory(),
        SIM_STEPS,
    )
    .map_err(|e| format!("extraction failed: {e:?}"))?;
    let mut styled = ["ok"; 2];
    for (i, style) in
        [RewriteStyle::NopPadded, RewriteStyle::Compressed].into_iter().enumerate()
    {
        let rw = rewrite(&compiled.program, &ex.selection, style);
        if run(&rw.program, Some(&ex.selection.catalog))? != expected {
            styled[i] = "MISMATCH";
        }
    }
    Ok(Verification {
        checksum: want.checksum,
        outputs: expected.outputs.len(),
        sim,
        nop: styled[0],
        compressed: styled[1],
    })
}

/// `mg run lang` — the experiment registry's builder.
pub fn lang_report(args: &RunArgs) -> Report {
    let mut r = Report::new("lang");
    r.line("== mg-lang: compiled programs through the mini-graph pipeline ==");
    let programs = match load_programs(args) {
        Ok(p) => p,
        Err((msg, code)) => {
            r.line(format!("error: {msg}"));
            r.status = code;
            return r;
        }
    };

    r.blank_then("-- compilation --");
    let mut t = TableBlock::new(
        "lang.compile",
        &["program", "stable id", "procs", "insts", "vregs", "spills", "divmod"],
    );
    for wl in &programs {
        match wl.compile(&args.input) {
            Ok(c) => t.row(vec![
                wl.name().to_string(),
                wl.stable_id(),
                c.stats.procs.to_string(),
                c.stats.insts.to_string(),
                c.stats.vregs.to_string(),
                c.stats.spills.to_string(),
                if c.stats.uses_divmod { "yes" } else { "no" }.to_string(),
            ]),
            Err(e) => {
                r.line(format!("error: {}: {e}", wl.name()));
                r.status = 70;
                return r;
            }
        }
    }
    r.table(t);

    r.blank_then("-- three-way verification (interpreter / compiled / rewritten) --");
    let mut t = TableBlock::new(
        "lang.verify",
        &["program", "checksum", "outputs", "compiled", "nop-padded", "compressed"],
    );
    for wl in &programs {
        match verify(wl, &args.input) {
            Ok(v) => {
                if [v.sim, v.nop, v.compressed].contains(&"MISMATCH") {
                    r.status = 1;
                }
                t.row(vec![
                    wl.name().to_string(),
                    v.checksum.to_string(),
                    v.outputs.to_string(),
                    v.sim.to_string(),
                    v.nop.to_string(),
                    v.compressed.to_string(),
                ]);
            }
            Err(e) => {
                r.line(format!("error: {}: {e}", wl.name()));
                r.status = 70;
                return r;
            }
        }
    }
    r.table(t);

    r.blank_then("-- simulated matrix (registered via WorkloadSource) --");
    let names: Vec<String> = programs.iter().map(|w| format!("mgl.{}", w.name())).collect();
    let mut b = args.engine();
    for wl in &programs {
        b = b.extra_source(to_extra(wl));
    }
    let engine = match b.try_workloads(&names).and_then(|b| b.try_build()) {
        Ok(engine) => engine,
        Err(e) => {
            r.line(format!("error: {e}"));
            r.status = 70;
            return r;
        }
    };
    let runs = vec![
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        )
        .label("intmem"),
    ];
    let matrix = engine.run(&runs);
    let mut t = TableBlock::new("lang.matrix", &["program", "baseIPC", "intmem", "cov%"]);
    let mut speedups = Vec::new();
    for row in &matrix.rows {
        let x = row.speedup_over(0, 1);
        speedups.push(x);
        let cov = row.prep.select(&Policy::integer_memory()).coverage(row.prep.total_dyn);
        t.row(vec![
            row.prep.name.clone(),
            format!("{:.2}", row.stats[0].ipc()),
            format!("{x:.3}"),
            format!("{:.1}", 100.0 * cov),
        ]);
    }
    r.table(t);
    r.line(format!("gmean intmem speedup: {:.3}", gmean(&speedups)));
    r
}

/// `mg compile FILE.mgl` — compiles one source file and prints the
/// image: stats, memory-initialization footprint, and a disassembly
/// with labels. Exit codes follow the documented table (2 usage, 64
/// unknown input/format name, 65 parse/semantic error, 70 codegen
/// resource exhaustion, 74 I/O).
pub fn cmd_compile(argv: &[String]) -> i32 {
    let mut input = Input::reference();
    let mut format = Format::Text;
    let mut positional = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--input" => {
                let v = match value("--input") {
                    Ok(v) => v,
                    Err(msg) => {
                        eprintln!("mg compile: {msg}");
                        return 2;
                    }
                };
                input = match parse_input(&v) {
                    Some(i) => i,
                    None => {
                        eprintln!(
                            "mg compile: unknown input {v:?} (reference|alternative|tiny)"
                        );
                        return 64;
                    }
                };
            }
            "--format" => {
                let v = match value("--format") {
                    Ok(v) => v,
                    Err(msg) => {
                        eprintln!("mg compile: {msg}");
                        return 2;
                    }
                };
                format = match Format::parse(&v) {
                    Some(f) => f,
                    None => {
                        eprintln!("mg compile: unknown format {v:?} (text|json|csv|markdown)");
                        return 64;
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("mg compile: unknown flag {flag:?}");
                return 2;
            }
            pos => positional.push(pos.to_string()),
        }
    }
    let [path] = positional.as_slice() else {
        eprintln!("mg compile: expected exactly one source file (e.g. `mg compile prog.mgl`)");
        return 2;
    };

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mg compile: cannot read {path}: {e}");
            return 74;
        }
    };
    let stem = Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or("program");
    let wl = match LangWorkload::from_source(stem, &src) {
        Ok(wl) => wl,
        Err(e) => {
            eprintln!("mg compile: {path}: {e}");
            return 65;
        }
    };
    let compiled = match wl.compile(&input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mg compile: {path}: {e}");
            return 70;
        }
    };

    let mut r = Report::new("compile");
    r.line(format!("== {} ({}) ==", wl.name(), wl.stable_id()));
    let mut t = TableBlock::new("compile.stats", &["metric", "value"]);
    t.row(vec!["procedures".into(), compiled.stats.procs.to_string()]);
    t.row(vec!["instructions".into(), compiled.stats.insts.to_string()]);
    t.row(vec!["virtual registers".into(), compiled.stats.vregs.to_string()]);
    t.row(vec!["spilled vregs".into(), compiled.stats.spills.to_string()]);
    t.row(vec![
        "divmod routine".into(),
        if compiled.stats.uses_divmod { "yes" } else { "no" }.into(),
    ]);
    t.row(vec!["entry index".into(), compiled.program.entry.to_string()]);
    t.row(vec!["memory init words".into(), compiled.mem_init.len().to_string()]);
    r.table(t);

    // Labels, inverted to index order, for the disassembly below.
    let mut labels_at: std::collections::BTreeMap<usize, Vec<&str>> = Default::default();
    for (name, &idx) in &compiled.program.labels {
        labels_at.entry(idx).or_default().push(name);
    }
    r.blank_then("-- disassembly --");
    let mut t = TableBlock::new("compile.disasm", &["idx", "label", "instruction"]);
    for (i, inst) in compiled.program.insts.iter().enumerate() {
        let label = labels_at.get(&i).map(|ls| ls.join(", ")).unwrap_or_default();
        t.row(vec![i.to_string(), label, inst.to_string()]);
    }
    r.table(t);
    print!("{}", render(&r, format));
    0
}
