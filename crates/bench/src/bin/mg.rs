//! The unified `mg` experiment CLI: `run`, `list`, `report`, `cache`.
//! See [`mg_bench::cli`] for the architecture and `DESIGN.md` §5.

fn main() {
    std::process::exit(mg_bench::cli::mg_main());
}
