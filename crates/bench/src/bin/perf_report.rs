//! Deprecated alias for `mg run perf` (same behaviour: times the sweeps,
//! writes `BENCH_pipeline.json`, gates on `--baseline`); kept for one
//! release. See [`mg_bench::figures::perf`].

fn main() {
    mg_bench::cli::legacy_main("perf");
}
