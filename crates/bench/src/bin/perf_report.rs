//! Simulator performance trajectory: times the per-figure experiments
//! and a selection stress case, and writes `BENCH_pipeline.json`.
//!
//! Each experiment is measured the way its binary runs it — a fresh
//! [`Engine`] (preparation included, timed separately) plus the shared
//! run matrix from [`mg_bench::experiments`] — so the recorded wall
//! clock tracks what `cargo run --bin fig6_performance -- --quick`
//! actually costs. Simulation throughput (`mcycles_per_s`, simulated
//! megacycles per second of run time) is the hot-loop health metric:
//! it is what the event wheel, idle-cycle skipping, and trace-storage
//! work optimise.
//!
//! ```text
//! perf_report [--quick|--full] [--threads N] [--out PATH]
//!             [--baseline PATH] [--max-regression X]
//! ```
//!
//! Defaults: quick mode, `--out BENCH_pipeline.json`. With `--baseline`,
//! compares each experiment's wall clock against the named report and
//! exits non-zero if any regressed by more than `--max-regression`
//! (default 3.0) — a loose bound that catches wedges, not noise. CI runs
//! this against the committed `BENCH_pipeline.json`.

use mg_bench::experiments::{
    fig5_selection_sweep, fig6_runs, fig7_runs, fig8_bandwidth_runs, fig8_regfile_runs,
    icache_runs, iq_capacity_runs, FIG7_FOCUS,
};
use mg_bench::{Engine, EngineBuilder, Run};
use mg_core::{select, MiniGraph, Policy};
use mg_isa::{MgTemplate, Opcode, TmplInst, TmplOperand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Args {
    quick: bool,
    threads: Option<usize>,
    out: String,
    baseline: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: true,
        threads: None,
        out: "BENCH_pipeline.json".into(),
        baseline: None,
        max_regression: 3.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} requires a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.quick = false,
            "--threads" => {
                args.threads =
                    Some(value("--threads").parse().expect("--threads requires an integer"))
            }
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--max-regression" => {
                args.max_regression = value("--max-regression")
                    .parse()
                    .expect("--max-regression requires a number")
            }
            other => panic!(
                "unknown argument {other:?} (expected --quick, --full, --threads N, \
                 --out PATH, --baseline PATH, or --max-regression X)"
            ),
        }
    }
    args
}

/// One timed experiment row of the report.
struct Measurement {
    name: &'static str,
    prep_ms: f64,
    run_ms: f64,
    sim_cycles: u64,
    sim_ops: u64,
}

impl Measurement {
    fn wall_ms(&self) -> f64 {
        self.prep_ms + self.run_ms
    }

    fn to_json(&self) -> String {
        let rate = |n: u64| {
            if self.run_ms > 0.0 {
                n as f64 / 1e6 / (self.run_ms / 1e3)
            } else {
                0.0
            }
        };
        format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.1}, \"prep_ms\": {:.1}, \
             \"run_ms\": {:.1}, \"sim_cycles\": {}, \"sim_ops\": {}, \
             \"mcycles_per_s\": {:.2}, \"mops_per_s\": {:.2}}}",
            self.name,
            self.wall_ms(),
            self.prep_ms,
            self.run_ms,
            self.sim_cycles,
            self.sim_ops,
            rate(self.sim_cycles),
            rate(self.sim_ops),
        )
    }
}

fn engine(args: &Args, workloads: Option<&[&str]>) -> (Engine, f64) {
    let mut b: EngineBuilder = Engine::builder().quick(args.quick);
    if let Some(t) = args.threads {
        b = b.threads(t);
    }
    if let Some(w) = workloads {
        b = b.workloads(w);
    }
    let t = Instant::now();
    let engine = b.build();
    (engine, t.elapsed().as_secs_f64() * 1e3)
}

fn sim_experiment(
    name: &'static str,
    args: &Args,
    workloads: Option<&[&str]>,
    runs: &[Run],
) -> Measurement {
    let (engine, prep_ms) = engine(args, workloads);
    let t = Instant::now();
    let matrix = engine.run(runs);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = matrix.rows.iter().flat_map(|r| r.stats.iter());
    let (sim_cycles, sim_ops) = stats.fold((0, 0), |(c, o), s| (c + s.cycles, o + s.ops));
    eprintln!("{name:14} prep {prep_ms:8.1} ms  run {run_ms:8.1} ms  {sim_cycles:>10} cycles");
    Measurement { name, prep_ms, run_ms, sim_cycles, sim_ops }
}

/// A synthetic selection workload far past the real candidate pools: many
/// heavily-overlapping instances of many templates with tied benefits,
/// selected at a large MGT capacity. This is the O(rounds × instances ×
/// members) worst case the incremental greedy picker exists for.
fn select_stress(args: &Args) -> Measurement {
    let template = |k: i64| MgTemplate {
        ops: (0..3)
            .map(|_| TmplInst {
                op: Opcode::Addq,
                a: TmplOperand::E0,
                b: TmplOperand::Imm(k),
                disp: 0,
            })
            .collect(),
        out: Some(2),
    };
    let (n_templates, per_template) = if args.quick { (1500, 12) } else { (4000, 16) };
    let mut rng = StdRng::seed_from_u64(0x5eed_ca5e);
    let mut candidates = Vec::with_capacity(n_templates * per_template);
    for k in 0..n_templates {
        for _ in 0..per_template {
            let start = rng.gen_range(0..n_templates * 4);
            candidates.push(MiniGraph {
                members: vec![start, start + 1, start + 2],
                anchor: start + 2,
                inputs: vec![],
                output: None,
                template: template(k as i64),
                freq: rng.gen_range(1u64..=3),
                branch_target: None,
            });
        }
    }
    let policy = Policy::default().with_capacity(n_templates / 2);
    let t = Instant::now();
    let sel = select(&candidates, &policy);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "select_stress  prep      0.0 ms  run {run_ms:8.1} ms  {} instances chosen",
        sel.chosen.len()
    );
    Measurement {
        name: "select_stress",
        prep_ms: 0.0,
        run_ms,
        sim_cycles: 0,
        sim_ops: sel.chosen.len() as u64,
    }
}

fn fig5_experiment(args: &Args) -> Measurement {
    let (engine, prep_ms) = engine(args, None);
    let t = Instant::now();
    let selected = fig5_selection_sweep(&engine);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "fig5_coverage  prep {prep_ms:8.1} ms  run {run_ms:8.1} ms  {selected} instances chosen"
    );
    Measurement { name: "fig5_coverage", prep_ms, run_ms, sim_cycles: 0, sim_ops: selected }
}

/// Extracts the recorded mode and `(name, wall_ms)` pairs from a report
/// previously written by this binary (line-oriented scan; not a general
/// JSON parser).
fn read_baseline(path: &str) -> (String, Vec<(String, f64)>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut mode = String::new();
    let mut rows = Vec::new();
    for line in text.lines() {
        if let Some(at) = line.find("\"mode\": \"") {
            if let Some(end) = line[at + 9..].find('"') {
                mode = line[at + 9..at + 9 + end].to_string();
            }
            continue;
        }
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = rest[..name_end].to_string();
        let Some(wall_at) = rest.find("\"wall_ms\": ") else { continue };
        let wall = rest[wall_at + 11..]
            .split([',', '}'])
            .next()
            .and_then(|v| v.trim().parse::<f64>().ok());
        if let Some(wall) = wall {
            rows.push((name, wall));
        }
    }
    (mode, rows)
}

fn main() {
    let args = parse_args();
    let mode = if args.quick { "quick" } else { "full" };
    eprintln!("perf_report: mode {mode}");

    let measurements = vec![
        fig5_experiment(&args),
        sim_experiment("fig6", &args, None, &fig6_runs()),
        sim_experiment("fig7", &args, Some(&FIG7_FOCUS), &fig7_runs()),
        sim_experiment("fig8_regfile", &args, None, &fig8_regfile_runs()),
        sim_experiment("fig8_bandwidth", &args, None, &fig8_bandwidth_runs()),
        sim_experiment("icache", &args, None, &icache_runs()),
        sim_experiment("iq_capacity", &args, None, &iq_capacity_runs()),
        select_stress(&args),
    ];

    let rows: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    let report = format!(
        "{{\n  \"schema\": \"mg-perf-report-v1\",\n  \"mode\": \"{mode}\",\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&args.out, &report)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    if let Some(path) = &args.baseline {
        let (base_mode, baseline) = read_baseline(path);
        // Quick and full wall clocks differ by an order of magnitude:
        // comparing across modes is either a vacuous pass or a spurious
        // failure, so refuse outright.
        assert_eq!(
            base_mode, mode,
            "baseline {path} was recorded in {base_mode:?} mode but this run is {mode:?}; \
             regenerate the baseline in the same mode"
        );
        let mut regressed = false;
        for m in &measurements {
            let Some((_, old)) = baseline.iter().find(|(n, _)| n == m.name) else {
                eprintln!("note: {} absent from baseline {path}", m.name);
                continue;
            };
            let ratio = if *old > 0.0 { m.wall_ms() / old } else { 0.0 };
            if ratio > args.max_regression {
                eprintln!(
                    "REGRESSION: {} took {:.1} ms vs baseline {:.1} ms ({ratio:.2}x > {:.2}x)",
                    m.name,
                    m.wall_ms(),
                    old,
                    args.max_regression
                );
                regressed = true;
            }
        }
        if regressed {
            std::process::exit(1);
        }
        eprintln!("all experiments within {:.1}x of baseline {path}", args.max_regression);
    }
}
