//! Deprecated alias for `mg run iq_capacity` (byte-identical output);
//! kept for one release. See [`mg_bench::figures::iq_capacity`].

fn main() {
    mg_bench::cli::legacy_main("iq_capacity");
}
