//! §6.3 — scheduler (issue queue) capacity.
//!
//! The paper states (without a figure) that "mini-graph processing can
//! similarly deal with reductions in the number of scheduler entries";
//! this experiment quantifies it: baseline and integer-memory mini-graph
//! configurations at 50/40/30/20 issue-queue entries, relative to the
//! 50-entry baseline.

use mg_bench::experiments::{iq_capacity_runs, IQ_SIZES as SIZES};
use mg_bench::{gmean, CliArgs, Table};

fn main() {
    let engine = CliArgs::parse().engine().build();

    let matrix = engine.run(&iq_capacity_runs());

    println!("== §6.3: performance vs issue-queue size (relative to 50-entry baseline) ==");
    for (suite, members) in matrix.by_suite() {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "iq", "baseline", "intmem"]);
        let mut means: Vec<(usize, Vec<f64>, Vec<f64>)> =
            SIZES.iter().map(|&s| (s, Vec::new(), Vec::new())).collect();
        for row in &members {
            for (si, &iq) in SIZES.iter().enumerate() {
                let b = row.speedup_over(0, 1 + 2 * si);
                let m = row.speedup_over(0, 2 + 2 * si);
                means[si].1.push(b);
                means[si].2.push(m);
                t.row(vec![
                    row.prep.name.clone(),
                    iq.to_string(),
                    format!("{b:.3}"),
                    format!("{m:.3}"),
                ]);
            }
        }
        print!("{}", t.render());
        for (iq, b, m) in &means {
            println!("gmean @{iq}: baseline {:.3}  intmem {:.3}", gmean(b), gmean(m));
        }
    }
}
