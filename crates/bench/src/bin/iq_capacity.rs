//! §6.3 — scheduler (issue queue) capacity.
//!
//! The paper states (without a figure) that "mini-graph processing can
//! similarly deal with reductions in the number of scheduler entries";
//! this experiment quantifies it: baseline and integer-memory mini-graph
//! configurations at 50/40/30/20 issue-queue entries, relative to the
//! 50-entry baseline.

use mg_bench::{apply_quick, by_suite, gmean, quick_mode, speedup, Prep, Table};
use mg_core::{Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

const SIZES: [usize; 4] = [50, 40, 30, 20];

fn main() {
    let quick = quick_mode();
    let preps = Prep::all(&Input::reference());
    let mut ref_cfg = SimConfig::baseline();
    apply_quick(&mut ref_cfg, quick);

    println!("== §6.3: performance vs issue-queue size (relative to 50-entry baseline) ==");
    for (suite, members) in by_suite(&preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "iq", "baseline", "intmem"]);
        let mut means: Vec<(usize, Vec<f64>, Vec<f64>)> =
            SIZES.iter().map(|&s| (s, Vec::new(), Vec::new())).collect();
        for p in &members {
            let reference = p.run_baseline(&ref_cfg);
            let sel = p.select(&Policy::integer_memory());
            for (si, &iq) in SIZES.iter().enumerate() {
                let mut b_cfg = SimConfig::baseline();
                b_cfg.iq_size = iq;
                let mut m_cfg = SimConfig::mg_integer_memory();
                m_cfg.iq_size = iq;
                apply_quick(&mut b_cfg, quick);
                apply_quick(&mut m_cfg, quick);
                let b = speedup(&reference, &p.run_baseline(&b_cfg));
                let m = speedup(
                    &reference,
                    &p.run_selection(&sel, RewriteStyle::NopPadded, &m_cfg),
                );
                means[si].1.push(b);
                means[si].2.push(m);
                t.row(vec![
                    p.name.to_string(),
                    iq.to_string(),
                    format!("{b:.3}"),
                    format!("{m:.3}"),
                ]);
            }
        }
        print!("{}", t.render());
        for (iq, b, m) in &means {
            println!("gmean @{iq}: baseline {:.3}  intmem {:.3}", gmean(b), gmean(m));
        }
    }
}
