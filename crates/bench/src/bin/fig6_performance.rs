//! Figure 6 — performance of mini-graph processing.
//!
//! For every benchmark: baseline IPC, then speedups of the four
//! mini-graph configurations over the baseline — integer mini-graphs on
//! ALU pipelines, integer-memory mini-graphs with a sliding-window
//! scheduler, each with plain and pair-wise collapsing ALU pipelines
//! (the solid and striped bars of the paper's Figure 6). The MGT holds
//! 512 application-specific mini-graphs of up to 4 instructions (§6.1).

use mg_bench::{apply_quick, by_suite, gmean, quick_mode, speedup, Prep, Table};
use mg_core::{Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

fn main() {
    let quick = quick_mode();
    let preps = Prep::all(&Input::reference());
    let mut base_cfg = SimConfig::baseline();
    apply_quick(&mut base_cfg, quick);

    println!("== Figure 6: speedup over 6-wide baseline (512-entry MGT, max size 4) ==");
    for (suite, members) in by_suite(&preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&[
            "benchmark", "baseIPC", "int", "int+coll", "intmem", "intmem+coll", "cov%",
        ]);
        let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for p in &members {
            let base = p.run_baseline(&base_cfg);
            let sel_int = p.select(&Policy::integer());
            let sel_mem = p.select(&Policy::integer_memory());

            let configs = [
                (SimConfig::mg_integer(), &sel_int),
                (SimConfig::mg_integer().with_collapsing(), &sel_int),
                (SimConfig::mg_integer_memory(), &sel_mem),
                (SimConfig::mg_integer_memory().with_collapsing(), &sel_mem),
            ];
            let mut cells =
                vec![p.name.to_string(), format!("{:.2}", base.ipc())];
            for (i, (cfg, sel)) in configs.iter().enumerate() {
                let mut cfg = cfg.clone();
                apply_quick(&mut cfg, quick);
                let s = p.run_selection(sel, RewriteStyle::NopPadded, &cfg);
                let x = speedup(&base, &s);
                sp[i].push(x);
                cells.push(format!("{x:.3}"));
            }
            cells.push(format!("{:.1}", 100.0 * sel_mem.coverage(p.total_dyn)));
            t.row(cells);
        }
        print!("{}", t.render());
        println!(
            "gmean speedups: int {:.3}  int+coll {:.3}  intmem {:.3}  intmem+coll {:.3}",
            gmean(&sp[0]),
            gmean(&sp[1]),
            gmean(&sp[2]),
            gmean(&sp[3]),
        );
    }
}
