//! Figure 6 — performance of mini-graph processing.
//!
//! For every benchmark: baseline IPC, then speedups of the four
//! mini-graph configurations over the baseline — integer mini-graphs on
//! ALU pipelines, integer-memory mini-graphs with a sliding-window
//! scheduler, each with plain and pair-wise collapsing ALU pipelines
//! (the solid and striped bars of the paper's Figure 6). The MGT holds
//! 512 application-specific mini-graphs of up to 4 instructions (§6.1).

use mg_bench::experiments::fig6_runs;
use mg_bench::{gmean, CliArgs, Table};
use mg_core::Policy;

fn main() {
    let engine = CliArgs::parse().engine().build();

    let matrix = engine.run(&fig6_runs());

    println!("== Figure 6: speedup over 6-wide baseline (512-entry MGT, max size 4) ==");
    for (suite, members) in matrix.by_suite() {
        println!("\n-- {suite} --");
        let mut t = Table::new(&[
            "benchmark",
            "baseIPC",
            "int",
            "int+coll",
            "intmem",
            "intmem+coll",
            "cov%",
        ]);
        let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for row in &members {
            let p = &row.prep;
            let mut cells = vec![p.name.clone(), format!("{:.2}", row.stats[0].ipc())];
            for (i, sink) in sp.iter_mut().enumerate() {
                let x = row.speedup_over(0, i + 1);
                sink.push(x);
                cells.push(format!("{x:.3}"));
            }
            let cov = p.select(&Policy::integer_memory()).coverage(p.total_dyn);
            cells.push(format!("{:.1}", 100.0 * cov));
            t.row(cells);
        }
        print!("{}", t.render());
        println!(
            "gmean speedups: int {:.3}  int+coll {:.3}  intmem {:.3}  intmem+coll {:.3}",
            gmean(&sp[0]),
            gmean(&sp[1]),
            gmean(&sp[2]),
            gmean(&sp[3]),
        );
    }
}
