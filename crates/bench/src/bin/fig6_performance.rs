//! Deprecated alias for `mg run fig6` (byte-identical output); kept for
//! one release. See [`mg_bench::figures::fig6`].

fn main() {
    mg_bench::cli::legacy_main("fig6");
}
