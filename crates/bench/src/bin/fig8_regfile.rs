//! Figure 8 (top) — capacity: physical register file size.
//!
//! Baseline, integer, and integer-memory mini-graph configurations at
//! 164/144/124/104 physical registers, all relative to the 164-register
//! baseline. The paper's claim: mini-graphs compensate — and often
//! over-compensate — for a 40% reduction in in-flight registers.

use mg_bench::{apply_quick, by_suite, gmean, quick_mode, speedup, Prep, Table};
use mg_core::{Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

const REGS: [usize; 4] = [164, 144, 124, 104];

fn main() {
    let quick = quick_mode();
    let preps = Prep::all(&Input::reference());
    let mut ref_cfg = SimConfig::baseline();
    apply_quick(&mut ref_cfg, quick);

    println!("== Figure 8 (top): performance vs physical register file size ==");
    println!("   (all numbers relative to the 164-register baseline)");
    for (suite, members) in by_suite(&preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&[
            "benchmark", "regs", "baseline", "int", "intmem",
        ]);
        let mut means: Vec<(usize, Vec<f64>, Vec<f64>, Vec<f64>)> =
            REGS.iter().map(|&r| (r, Vec::new(), Vec::new(), Vec::new())).collect();
        for p in &members {
            let reference = p.run_baseline(&ref_cfg);
            let sel_int = p.select(&Policy::integer());
            let sel_mem = p.select(&Policy::integer_memory());
            for (ri, &regs) in REGS.iter().enumerate() {
                let mut b_cfg = SimConfig::baseline().with_phys_regs(regs);
                let mut i_cfg = SimConfig::mg_integer().with_phys_regs(regs);
                let mut m_cfg = SimConfig::mg_integer_memory().with_phys_regs(regs);
                apply_quick(&mut b_cfg, quick);
                apply_quick(&mut i_cfg, quick);
                apply_quick(&mut m_cfg, quick);
                let b = speedup(&reference, &p.run_baseline(&b_cfg));
                let i = speedup(
                    &reference,
                    &p.run_selection(&sel_int, RewriteStyle::NopPadded, &i_cfg),
                );
                let m = speedup(
                    &reference,
                    &p.run_selection(&sel_mem, RewriteStyle::NopPadded, &m_cfg),
                );
                means[ri].1.push(b);
                means[ri].2.push(i);
                means[ri].3.push(m);
                t.row(vec![
                    p.name.to_string(),
                    regs.to_string(),
                    format!("{b:.3}"),
                    format!("{i:.3}"),
                    format!("{m:.3}"),
                ]);
            }
        }
        print!("{}", t.render());
        for (regs, b, i, m) in &means {
            println!(
                "gmean @{regs}: baseline {:.3}  int {:.3}  intmem {:.3}",
                gmean(b),
                gmean(i),
                gmean(m)
            );
        }
    }
}
