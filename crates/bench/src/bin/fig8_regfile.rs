//! Figure 8 (top) — capacity: physical register file size.
//!
//! Baseline, integer, and integer-memory mini-graph configurations at
//! 164/144/124/104 physical registers, all relative to the 164-register
//! baseline. The paper's claim: mini-graphs compensate — and often
//! over-compensate — for a 40% reduction in in-flight registers.

use mg_bench::experiments::{fig8_regfile_runs, REGFILE_SIZES as REGS};
use mg_bench::{gmean, CliArgs, Table};

/// Per-size accumulators: (regs, baseline, int, intmem speedups).
type SizeMeans = (usize, Vec<f64>, Vec<f64>, Vec<f64>);

fn main() {
    let engine = CliArgs::parse().engine().build();

    // Column 0 is the reference; then (baseline, int, intmem) per size.
    let matrix = engine.run(&fig8_regfile_runs());

    println!("== Figure 8 (top): performance vs physical register file size ==");
    println!("   (all numbers relative to the 164-register baseline)");
    for (suite, members) in matrix.by_suite() {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "regs", "baseline", "int", "intmem"]);
        let mut means: Vec<SizeMeans> =
            REGS.iter().map(|&r| (r, Vec::new(), Vec::new(), Vec::new())).collect();
        for row in &members {
            for (ri, &regs) in REGS.iter().enumerate() {
                let b = row.speedup_over(0, 1 + 3 * ri);
                let i = row.speedup_over(0, 2 + 3 * ri);
                let m = row.speedup_over(0, 3 + 3 * ri);
                means[ri].1.push(b);
                means[ri].2.push(i);
                means[ri].3.push(m);
                t.row(vec![
                    row.prep.name.clone(),
                    regs.to_string(),
                    format!("{b:.3}"),
                    format!("{i:.3}"),
                    format!("{m:.3}"),
                ]);
            }
        }
        print!("{}", t.render());
        for (regs, b, i, m) in &means {
            println!(
                "gmean @{regs}: baseline {:.3}  int {:.3}  intmem {:.3}",
                gmean(b),
                gmean(i),
                gmean(m)
            );
        }
    }
}
