//! Deprecated alias for `mg run fig8_regfile` (byte-identical output);
//! kept for one release. See [`mg_bench::figures::fig8_regfile`].

fn main() {
    mg_bench::cli::legacy_main("fig8_regfile");
}
