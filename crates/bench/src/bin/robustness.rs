//! §6.1 — intra-application input-data robustness.
//!
//! Selects mini-graphs using basic-block profiles from one input set and
//! evaluates realized coverage on another (the paper reports an average
//! relative coverage loss of ~15%, with most programs within 15% of their
//! same-input coverage).

use mg_bench::{by_suite, gmean, Prep, Table};
use mg_core::Policy;
use mg_workloads::{Input, Workload};

/// Realized coverage of a selection trained on `train` when the program
/// runs on `test`: re-profile on `test` and credit each chosen instance
/// with its anchor block's new frequency.
fn cross_coverage(w: &Workload, train: &Input, test: &Input) -> (f64, f64) {
    let policy = Policy::integer_memory();
    let trained = Prep::new(w, train);
    let sel = trained.select(&policy);

    // Re-profile on the test input (same code, different data).
    let (prog, mut mem) = w.build(test);
    let cfg = mg_profile::build_cfg(&prog);
    let prof = mg_profile::profile_program(&prog, &mut mem, None, mg_bench::STEP_BUDGET)
        .expect("workload halts");

    let mut realized = 0u64;
    for c in &sel.chosen {
        let block = cfg.block_of(c.graph.anchor).expect("anchor is in a block");
        realized += (c.graph.size() as u64 - 1) * prof.block_count(block);
    }
    let cross = realized as f64 / prof.total as f64;

    // Native coverage on the test input (selection trained on test).
    let native_prep = Prep::new(w, test);
    let native = native_prep.select(&policy).coverage(native_prep.total_dyn);
    (cross, native)
}

fn main() {
    println!("== §6.1: coverage robustness across input data sets ==");
    println!("   (trained on reference input, evaluated on alternative input)");
    let workloads = mg_workloads::all();
    let preps = Prep::all(&Input::reference());
    for (suite, members) in by_suite(&preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "native%", "cross%", "relative"]);
        let mut rels = Vec::new();
        for p in &members {
            let w = workloads.iter().find(|w| w.name == p.name).expect("registered");
            let (cross, native) = cross_coverage(w, &Input::reference(), &Input::alternative());
            let rel = if native > 0.0 { cross / native } else { 1.0 };
            rels.push(rel.max(1e-9));
            t.row(vec![
                p.name.to_string(),
                format!("{:.1}", 100.0 * native),
                format!("{:.1}", 100.0 * cross),
                format!("{rel:.2}"),
            ]);
        }
        print!("{}", t.render());
        println!("suite gmean retention: {:.2}", gmean(&rels));
    }
}
