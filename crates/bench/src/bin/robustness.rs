//! Deprecated alias for `mg run robustness` (byte-identical output);
//! kept for one release. See [`mg_bench::figures::robustness`].

fn main() {
    mg_bench::cli::legacy_main("robustness");
}
