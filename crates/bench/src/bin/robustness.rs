//! §6.1 — intra-application input-data robustness.
//!
//! Selects mini-graphs using basic-block profiles from one input set and
//! evaluates realized coverage on another (the paper reports an average
//! relative coverage loss of ~15%, with most programs within 15% of their
//! same-input coverage).

use mg_bench::{gmean, CliArgs, Prep, Table};
use mg_core::Policy;
use mg_workloads::Input;

/// Realized coverage on the test input of a selection trained on the
/// training input: credit each chosen instance with its anchor block's
/// frequency in the test profile (both preps carry their profiles).
fn cross_coverage(trained: &Prep, test: &Prep, policy: &Policy) -> (f64, f64) {
    let sel = trained.select(policy);
    let mut realized = 0u64;
    for c in &sel.chosen {
        let block = test.cfg.block_of(c.graph.anchor).expect("anchor is in a block");
        realized += (c.graph.size() as u64 - 1) * test.prof.block_count(block);
    }
    let cross = realized as f64 / test.prof.total as f64;
    // Native coverage on the test input (selection trained on test).
    let native = test.select(policy).coverage(test.total_dyn);
    (cross, native)
}

fn main() {
    let args = CliArgs::parse();
    println!("== §6.1: coverage robustness across input data sets ==");
    println!("   (trained on reference input, evaluated on alternative input)");
    // Two engines: identical workload order, different inputs.
    let trained = args.engine().input(Input::reference()).build();
    let test = args.engine().input(Input::alternative()).build();
    let policy = Policy::integer_memory();

    for ((suite, trained_members), (_, test_members)) in
        trained.by_suite().into_iter().zip(test.by_suite())
    {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "native%", "cross%", "relative"]);
        let mut rels = Vec::new();
        for (tr, te) in trained_members.iter().zip(&test_members) {
            assert_eq!(tr.name, te.name, "engines registered in the same order");
            let (cross, native) = cross_coverage(tr, te, &policy);
            let rel = if native > 0.0 { cross / native } else { 1.0 };
            rels.push(rel.max(1e-9));
            t.row(vec![
                tr.name.clone(),
                format!("{:.1}", 100.0 * native),
                format!("{:.1}", 100.0 * cross),
                format!("{rel:.2}"),
            ]);
        }
        print!("{}", t.render());
        println!("suite gmean retention: {:.2}", gmean(&rels));
    }
}
