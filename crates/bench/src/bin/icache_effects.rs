//! Deprecated alias for `mg run icache` (byte-identical output); kept
//! for one release. See [`mg_bench::figures::icache`].

fn main() {
    mg_bench::cli::legacy_main("icache");
}
