//! §6.2 — instruction-cache effects of code compression.
//!
//! The paper isolates mini-graph benefits from code-compression benefits
//! by padding collapsed slots with nops; this experiment measures what
//! the compression adds back: the nop-padded image vs the compressed
//! image (static size reduction and speedup), per suite. The paper reports
//! that SPECint — with the largest instruction footprints — is the only
//! suite with a noticeable additional gain.

use mg_bench::experiments::{icache_policy, icache_runs};
use mg_bench::{gmean, CliArgs, Table};
use mg_core::RewriteStyle;

fn main() {
    let engine = CliArgs::parse().engine().build();

    let policy = icache_policy();
    let matrix = engine.run(&icache_runs());

    println!("== §6.2: instruction-cache effects (nop-padded vs compressed images) ==");
    for (suite, members) in matrix.by_suite() {
        println!("\n-- {suite} --");
        let mut t =
            Table::new(&["benchmark", "static", "compressed", "padded-x", "compressed-x"]);
        let mut pad = Vec::new();
        let mut comp = Vec::new();
        for row in &members {
            let p = &row.prep;
            let px = row.speedup_over(0, 1);
            let cx = row.speedup_over(0, 2);
            pad.push(px);
            comp.push(cx);
            // The compressed image is already cached from the matrix run.
            let compressed_len = p.image(&policy, RewriteStyle::Compressed).program.len();
            t.row(vec![
                p.name.clone(),
                p.prog.len().to_string(),
                compressed_len.to_string(),
                format!("{px:.3}"),
                format!("{cx:.3}"),
            ]);
        }
        print!("{}", t.render());
        println!("gmean: padded {:.3}  compressed {:.3}", gmean(&pad), gmean(&comp));
    }
}
