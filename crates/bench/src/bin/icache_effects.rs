//! §6.2 — instruction-cache effects of code compression.
//!
//! The paper isolates mini-graph benefits from code-compression benefits
//! by padding collapsed slots with nops; this experiment measures what
//! the compression adds back: the nop-padded image vs the compressed
//! image (static size reduction and speedup), per suite. The paper reports
//! that SPECint — with the largest instruction footprints — is the only
//! suite with a noticeable additional gain.

use mg_bench::{apply_quick, by_suite, gmean, quick_mode, speedup, Prep, Table};
use mg_core::{rewrite, Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

fn main() {
    let quick = quick_mode();
    let preps = Prep::all(&Input::reference());
    let mut base_cfg = SimConfig::baseline();
    apply_quick(&mut base_cfg, quick);

    println!("== §6.2: instruction-cache effects (nop-padded vs compressed images) ==");
    for (suite, members) in by_suite(&preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&[
            "benchmark", "static", "compressed", "padded-x", "compressed-x",
        ]);
        let mut pad = Vec::new();
        let mut comp = Vec::new();
        for p in &members {
            let base = p.run_baseline(&base_cfg);
            let sel = p.select(&Policy::integer_memory());
            let rw = rewrite(&p.prog, &sel, RewriteStyle::Compressed);

            let mut cfg = SimConfig::mg_integer_memory();
            apply_quick(&mut cfg, quick);
            let padded = p.run_selection(&sel, RewriteStyle::NopPadded, &cfg);
            let compressed = p.run_selection(&sel, RewriteStyle::Compressed, &cfg);
            let px = speedup(&base, &padded);
            let cx = speedup(&base, &compressed);
            pad.push(px);
            comp.push(cx);
            t.row(vec![
                p.name.to_string(),
                p.prog.len().to_string(),
                rw.program.len().to_string(),
                format!("{px:.3}"),
                format!("{cx:.3}"),
            ]);
        }
        print!("{}", t.render());
        println!("gmean: padded {:.3}  compressed {:.3}", gmean(&pad), gmean(&comp));
    }
}
