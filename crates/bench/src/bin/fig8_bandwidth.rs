//! Figure 8 (bottom) — bandwidth and scheduling-loop latency.
//!
//! Compares, relative to the 6-wide/1-cycle-scheduler baseline:
//! the 6-wide machine with integer-memory mini-graphs; a 4-wide machine
//! (fetch/rename/retire and execute all narrowed, 1 load port) with and
//! without mini-graphs; a 4-wide front end with 6-wide execution (2 load
//! ports) with and without mini-graphs; and a 2-cycle (pipelined)
//! scheduler with and without mini-graphs.

use mg_bench::experiments::fig8_bandwidth_runs;
use mg_bench::{gmean, CliArgs, Table};

fn main() {
    let engine = CliArgs::parse().engine().build();

    let runs = fig8_bandwidth_runs();
    let matrix = engine.run(&runs);

    println!("== Figure 8 (bottom): bandwidth / scheduler-latency reductions ==");
    println!("   (all numbers relative to the 6-wide, 1-cycle-scheduler baseline)");
    for (suite, members) in matrix.by_suite() {
        println!("\n-- {suite} --");
        let mut header = vec!["benchmark"];
        header.extend(matrix.labels.iter().map(String::as_str));
        let mut t = Table::new(&header);
        let mut means = vec![Vec::new(); runs.len()];
        for row in &members {
            let mut cells = vec![row.prep.name.clone()];
            for (vi, sink) in means.iter_mut().enumerate() {
                let x = row.speedup_over(0, vi);
                sink.push(x);
                cells.push(format!("{x:.3}"));
            }
            t.row(cells);
        }
        print!("{}", t.render());
        let summary: Vec<String> = matrix
            .labels
            .iter()
            .zip(&means)
            .map(|(n, xs)| format!("{n} {:.3}", gmean(xs)))
            .collect();
        println!("gmean: {}", summary.join("  "));
    }
}
